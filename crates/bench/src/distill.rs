//! Perf-trajectory snapshots: the `BENCH_<name>.json` schema, its
//! distillers, and the regression comparator.
//!
//! A snapshot is a small stable JSON document recording the tracked
//! medians of one benchmark family:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "name": "end_to_end",
//!   "kind": "sim",
//!   "unit": "ns",
//!   "entries": {
//!     "vqe_8_spsa": {"median_ns": 123456, "mean_ns": 123456}
//!   }
//! }
//! ```
//!
//! Three distillers feed it:
//!
//! - [`distill_sim`] runs a pinned workload suite and records
//!   **sim-time** totals — bitwise deterministic, so committed snapshots
//!   are reproducible on any machine and a drift is a real modelling
//!   change, not noise;
//! - [`distill_metrics`] extracts the `profile.*` namespace from a
//!   [`MetricsSnapshot::to_json`] dump (also deterministic sim time);
//! - [`distill_criterion`] harvests wall-clock medians from criterion's
//!   `estimates.json` tree for machines that track real latency.
//!
//! [`compare`] diffs two snapshots and flags entries whose median grew
//! beyond a threshold (default 15%); the CI gate runs it warn-only until
//! `QTENON_BENCH_ENFORCE=1` arms the hard failure.
//!
//! [`MetricsSnapshot::to_json`]: qtenon_sim_engine::MetricsSnapshot::to_json

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use qtenon_core::config::{CoreModel, QtenonConfig};
use qtenon_core::vqa::VqaRunner;
use qtenon_workloads::{Workload, WorkloadKind};

use crate::experiments::OptimizerKind;
use crate::json::{self, format_ns, JsonValue};

/// Schema version stamped into every snapshot.
pub const SCHEMA_VERSION: u64 = 1;

/// Default regression threshold: medians may grow at most 15%.
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// One tracked measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchEntry {
    /// Median latency in nanoseconds.
    pub median_ns: f64,
    /// Mean latency in nanoseconds.
    pub mean_ns: f64,
}

/// A `BENCH_<name>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Snapshot family name (`end_to_end`, `profile_vqe`, ...).
    pub name: String,
    /// Measurement source: `sim`, `profile`, or `criterion`.
    pub kind: String,
    /// Entry id → measurement, sorted by id.
    pub entries: BTreeMap<String, BenchEntry>,
}

impl BenchSnapshot {
    /// An empty snapshot of the given family and source.
    pub fn new(name: &str, kind: &str) -> Self {
        BenchSnapshot {
            name: name.to_string(),
            kind: kind.to_string(),
            entries: BTreeMap::new(),
        }
    }

    /// Records one entry.
    pub fn record(&mut self, id: &str, median_ns: f64, mean_ns: f64) {
        self.entries
            .insert(id.to_string(), BenchEntry { median_ns, mean_ns });
    }

    /// Serialises the snapshot. Entries are id-sorted and number
    /// formatting is fixed, so equal snapshots are byte-equal files.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"name\": \"{}\",\n", json::escape(&self.name)));
        out.push_str(&format!("  \"kind\": \"{}\",\n", json::escape(&self.kind)));
        out.push_str("  \"unit\": \"ns\",\n");
        out.push_str("  \"entries\": {\n");
        for (i, (id, e)) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\"median_ns\": {}, \"mean_ns\": {}}}{}\n",
                json::escape(id),
                format_ns(e.median_ns),
                format_ns(e.mean_ns),
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a snapshot document.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, an unknown schema version,
    /// or missing fields.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_f64)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA_VERSION as f64 {
            return Err(format!("unsupported schema version {schema}"));
        }
        let name = doc
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"name\"")?
            .to_string();
        let kind = doc
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"kind\"")?
            .to_string();
        let mut entries = BTreeMap::new();
        for (id, entry) in doc
            .get("entries")
            .and_then(JsonValue::as_object)
            .ok_or("missing \"entries\"")?
        {
            let median_ns = entry
                .get("median_ns")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("entry {id:?} missing \"median_ns\""))?;
            let mean_ns = entry
                .get("mean_ns")
                .and_then(JsonValue::as_f64)
                .unwrap_or(median_ns);
            entries.insert(id.clone(), BenchEntry { median_ns, mean_ns });
        }
        Ok(BenchSnapshot {
            name,
            kind,
            entries,
        })
    }
}

/// The pinned deterministic suites [`distill_sim`] knows how to run.
pub const SIM_SUITES: &[&str] = &["end_to_end", "profile_vqe"];

// The suites pin their own scale instead of borrowing
// `ExperimentScale::quick()`: retuning the quick experiments must never
// silently shift the committed perf trajectory.
const PIN_ITERATIONS: usize = 2;
const PIN_SHOTS: u64 = 100;
const PIN_SEED: u64 = 42;

fn pinned_run(kind: WorkloadKind, n: u32, opt: OptimizerKind) -> qtenon_core::report::RunReport {
    let config = QtenonConfig::table4(n, CoreModel::Rocket)
        .expect("valid config")
        .with_seed(PIN_SEED);
    let workload = Workload::benchmark(kind, n, PIN_SEED).expect("valid workload");
    let mut runner = VqaRunner::new(config, workload).expect("runner builds");
    let mut optimizer = opt.build(PIN_SEED);
    runner
        .run(optimizer.as_mut(), PIN_ITERATIONS, PIN_SHOTS)
        .expect("pinned run succeeds")
}

/// Runs a pinned simulation suite and distils its deterministic
/// sim-time measurements. Returns `None` for an unknown suite name
/// (see [`SIM_SUITES`]).
pub fn distill_sim(suite: &str) -> Option<BenchSnapshot> {
    match suite {
        "end_to_end" => {
            // Hybrid-loop total latency across the workload mix. A single
            // deterministic run has no distribution: median == mean.
            let mut snap = BenchSnapshot::new("end_to_end", "sim");
            for (id, kind, n, opt) in [
                ("vqe_8_spsa", WorkloadKind::Vqe, 8, OptimizerKind::Spsa),
                ("qaoa_8_spsa", WorkloadKind::Qaoa, 8, OptimizerKind::Spsa),
                ("qnn_8_spsa", WorkloadKind::Qnn, 8, OptimizerKind::Spsa),
                ("vqe_16_gd", WorkloadKind::Vqe, 16, OptimizerKind::Gd),
            ] {
                let report = pinned_run(kind, n, opt);
                let total_ns = (report.total.as_ps() / 1_000) as f64;
                snap.record(id, total_ns, total_ns);
            }
            Some(snap)
        }
        "profile_vqe" => {
            // Per-phase attribution of the representative VQE: median is
            // the phase histogram's p50, mean is total/count.
            let report = pinned_run(WorkloadKind::Vqe, 8, OptimizerKind::Spsa);
            let mut snap = BenchSnapshot::new("profile_vqe", "profile");
            for row in &report.phases.rows {
                if row.count == 0 {
                    continue;
                }
                let median = row.hist.p50().unwrap_or(0) as f64;
                let mean = row.total_ns as f64 / row.count as f64;
                snap.record(&row.name, median, mean);
            }
            Some(snap)
        }
        _ => None,
    }
}

/// Distils the `profile.*` namespace of a [`MetricsSnapshot::to_json`]
/// dump: histograms contribute their p50/mean, counters their value.
///
/// # Errors
///
/// Returns a message for malformed JSON or a missing `metrics` object.
///
/// [`MetricsSnapshot::to_json`]: qtenon_sim_engine::MetricsSnapshot::to_json
pub fn distill_metrics(text: &str, name: &str, prefix: &str) -> Result<BenchSnapshot, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let metrics = doc
        .get("metrics")
        .and_then(JsonValue::as_object)
        .ok_or("missing \"metrics\" object")?;
    let mut snap = BenchSnapshot::new(name, "profile");
    for (path, value) in metrics {
        if !path.starts_with(prefix) {
            continue;
        }
        match value.get("type").and_then(JsonValue::as_str) {
            Some("histogram") => {
                let p50 = value.get("p50").and_then(JsonValue::as_f64).unwrap_or(0.0);
                let count = value
                    .get("count")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0);
                let sum = value.get("sum").and_then(JsonValue::as_f64).unwrap_or(0.0);
                let mean = if count > 0.0 { sum / count } else { 0.0 };
                snap.record(path, p50, mean);
            }
            Some("counter") | Some("gauge") => {
                let v = value
                    .get("value")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0);
                snap.record(path, v, v);
            }
            _ => return Err(format!("metric {path:?} has no recognised type")),
        }
    }
    Ok(snap)
}

/// Harvests wall-clock medians from a criterion output tree
/// (`target/criterion/`): every directory holding `new/estimates.json`
/// becomes an entry keyed by its path relative to the root.
///
/// # Errors
///
/// Returns I/O errors from the directory walk; individual malformed
/// estimate files are skipped.
pub fn distill_criterion(root: &Path, name: &str) -> io::Result<BenchSnapshot> {
    let mut snap = BenchSnapshot::new(name, "criterion");
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        if dir.file_name().is_some_and(|n| n == "report") {
            continue;
        }
        let estimates = dir.join("new").join("estimates.json");
        if estimates.is_file() {
            if let Some((median, mean)) = read_estimates(&estimates) {
                let id = dir
                    .strip_prefix(root)
                    .unwrap_or(&dir)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                snap.record(&id, median, mean);
            }
            continue;
        }
        let mut children: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        children.sort();
        stack.extend(children);
    }
    Ok(snap)
}

fn read_estimates(path: &Path) -> Option<(f64, f64)> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = json::parse(&text).ok()?;
    let point = |stat: &str| {
        doc.get(stat)
            .and_then(|s| s.get("point_estimate"))
            .and_then(JsonValue::as_f64)
    };
    let median = point("median")?;
    Some((median, point("mean").unwrap_or(median)))
}

/// One entry's baseline-to-current movement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Entry id.
    pub id: String,
    /// Baseline median in nanoseconds.
    pub baseline_ns: f64,
    /// Current median in nanoseconds.
    pub current_ns: f64,
    /// `current / baseline` (infinite when the baseline is zero).
    pub ratio: f64,
}

/// The outcome of comparing a current snapshot against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareReport {
    /// Entries whose median grew beyond the threshold.
    pub regressions: Vec<Delta>,
    /// Entries whose median shrank beyond the threshold.
    pub improvements: Vec<Delta>,
    /// Entries within the threshold band.
    pub stable: usize,
    /// Baseline entries absent from the current snapshot.
    pub missing: Vec<String>,
    /// Current entries absent from the baseline.
    pub added: Vec<String>,
}

impl CompareReport {
    /// Whether the gate should fail under enforcement: a regression or
    /// a tracked entry that disappeared.
    pub fn gate_failed(&self) -> bool {
        !self.regressions.is_empty() || !self.missing.is_empty()
    }

    /// Renders the comparison as a human-readable report.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        for d in &self.regressions {
            out.push_str(&format!(
                "REGRESSION  {}: median {} ns -> {} ns ({:+.1}%)\n",
                d.id,
                format_ns(d.baseline_ns),
                format_ns(d.current_ns),
                (d.ratio - 1.0) * 100.0
            ));
        }
        for id in &self.missing {
            out.push_str(&format!("MISSING     {id}: tracked entry disappeared\n"));
        }
        for d in &self.improvements {
            out.push_str(&format!(
                "improvement {}: median {} ns -> {} ns ({:+.1}%)\n",
                d.id,
                format_ns(d.baseline_ns),
                format_ns(d.current_ns),
                (d.ratio - 1.0) * 100.0
            ));
        }
        for id in &self.added {
            out.push_str(&format!("added       {id}\n"));
        }
        out.push_str(&format!(
            "{} regression(s), {} missing, {} improvement(s), {} stable, {} added (threshold {:.0}%)\n",
            self.regressions.len(),
            self.missing.len(),
            self.improvements.len(),
            self.stable,
            self.added.len(),
            threshold * 100.0
        ));
        out
    }
}

/// Compares tracked medians: an entry regresses when its current median
/// exceeds `baseline * (1 + threshold)`.
pub fn compare(baseline: &BenchSnapshot, current: &BenchSnapshot, threshold: f64) -> CompareReport {
    let mut report = CompareReport::default();
    for (id, base) in &baseline.entries {
        let Some(cur) = current.entries.get(id) else {
            report.missing.push(id.clone());
            continue;
        };
        let ratio = if base.median_ns > 0.0 {
            cur.median_ns / base.median_ns
        } else if cur.median_ns > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        let delta = Delta {
            id: id.clone(),
            baseline_ns: base.median_ns,
            current_ns: cur.median_ns,
            ratio,
        };
        if ratio > 1.0 + threshold {
            report.regressions.push(delta);
        } else if ratio < 1.0 - threshold {
            report.improvements.push(delta);
        } else {
            report.stable += 1;
        }
    }
    for id in current.entries.keys() {
        if !baseline.entries.contains_key(id) {
            report.added.push(id.clone());
        }
    }
    report
}

/// Whether a `compare` run should hard-fail instead of warn: `--enforce`
/// appears among the CLI args, or the value of `QTENON_BENCH_ENFORCE`
/// (read by the caller and passed in, so this stays testable without
/// mutating process state) is exactly `"1"`.
pub fn enforce_enabled(args: &[String], enforce_env: Option<&str>) -> bool {
    args.iter().any(|a| a == "--enforce") || enforce_env == Some("1")
}

/// Process exit code for a `compare` run: 1 when the gate failed under
/// enforcement, 0 otherwise (regressions downgrade to warnings).
pub fn compare_exit_code(report: &CompareReport, enforce: bool) -> i32 {
    i32::from(report.gate_failed() && enforce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtenon_sim_engine::MetricsRegistry;

    fn snap(entries: &[(&str, f64)]) -> BenchSnapshot {
        let mut s = BenchSnapshot::new("test", "sim");
        for (id, v) in entries {
            s.record(id, *v, *v);
        }
        s
    }

    #[test]
    fn snapshot_roundtrips_byte_stable() {
        let mut s = BenchSnapshot::new("end_to_end", "sim");
        s.record("b", 1234.5, 1300.25);
        s.record("a", 10.0, 10.0);
        let text = s.to_json();
        let parsed = BenchSnapshot::from_json(&text).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_json(), text);
        // id-sorted output regardless of insertion order
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        assert!(BenchSnapshot::from_json("{}").is_err());
        assert!(BenchSnapshot::from_json("not json").is_err());
        let wrong_schema = r#"{"schema": 2, "name": "x", "kind": "sim", "entries": {}}"#;
        assert!(BenchSnapshot::from_json(wrong_schema)
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn compare_classifies_movement() {
        let base = snap(&[
            ("slow", 100.0),
            ("fast", 100.0),
            ("same", 100.0),
            ("gone", 5.0),
        ]);
        let cur = snap(&[
            ("slow", 120.0),
            ("fast", 80.0),
            ("same", 105.0),
            ("new", 1.0),
        ]);
        let report = compare(&base, &cur, 0.15);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].id, "slow");
        assert!((report.regressions[0].ratio - 1.2).abs() < 1e-9);
        assert_eq!(report.improvements.len(), 1);
        assert_eq!(report.improvements[0].id, "fast");
        assert_eq!(report.stable, 1);
        assert_eq!(report.missing, vec!["gone".to_string()]);
        assert_eq!(report.added, vec!["new".to_string()]);
        assert!(report.gate_failed());
        let rendered = report.render(0.15);
        assert!(rendered.contains("REGRESSION  slow"));
        assert!(rendered.contains("1 regression(s), 1 missing"));
    }

    #[test]
    fn compare_within_threshold_passes() {
        let base = snap(&[("a", 100.0), ("zero", 0.0)]);
        let cur = snap(&[("a", 114.0), ("zero", 0.0)]);
        let report = compare(&base, &cur, 0.15);
        assert!(!report.gate_failed());
        assert_eq!(report.stable, 2);
    }

    #[test]
    fn zero_baseline_with_nonzero_current_regresses() {
        let report = compare(&snap(&[("a", 0.0)]), &snap(&[("a", 1.0)]), 0.15);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].ratio.is_infinite());
    }

    #[test]
    fn enforce_gate_exits_nonzero_on_synthetic_regression() {
        // A synthetic 2x regression must fail the gate, and the exit
        // code must flip to 1 exactly when enforcement is on — via
        // --enforce or QTENON_BENCH_ENFORCE=1, never otherwise.
        let baseline = snap(&[("suite.total", 100.0)]);
        let regressed = snap(&[("suite.total", 200.0)]);
        let report = compare(&baseline, &regressed, DEFAULT_THRESHOLD);
        assert!(report.gate_failed());
        assert!(enforce_enabled(&["--enforce".to_string()], None));
        assert!(enforce_enabled(&[], Some("1")));
        assert!(!enforce_enabled(&[], Some("0")));
        assert!(!enforce_enabled(&[], None));
        assert_eq!(compare_exit_code(&report, true), 1);
        assert_eq!(compare_exit_code(&report, false), 0);
        // A clean comparison exits 0 even under enforcement.
        let clean = compare(&baseline, &baseline, DEFAULT_THRESHOLD);
        assert!(!clean.gate_failed());
        assert_eq!(compare_exit_code(&clean, true), 0);
        // A disappeared tracked entry is a gate failure too.
        let shrunk = compare(&baseline, &snap(&[]), DEFAULT_THRESHOLD);
        assert_eq!(compare_exit_code(&shrunk, true), 1);
    }

    #[test]
    fn distills_profile_namespace_from_metrics_json() {
        let mut m = MetricsRegistry::new();
        m.counter("profile.chip.execute.count", 6);
        m.counter("profile.chip.execute.sim_total_ns", 600);
        m.observe("profile.chip.execute.sim_ns", 100);
        m.counter("core.vqa.iterations", 2); // outside the prefix
        let text = m.snapshot().to_json();
        let snap = distill_metrics(&text, "profile_vqe", "profile.").unwrap();
        assert_eq!(snap.entries.len(), 3);
        assert_eq!(snap.entries["profile.chip.execute.count"].median_ns, 6.0);
        assert_eq!(snap.entries["profile.chip.execute.sim_ns"].median_ns, 100.0);
        assert!(!snap.entries.contains_key("core.vqa.iterations"));
    }

    #[test]
    fn sim_suites_are_deterministic_and_known() {
        assert!(distill_sim("no_such_suite").is_none());
        let a = distill_sim("profile_vqe").unwrap();
        let b = distill_sim("profile_vqe").unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.entries.contains_key("vqa.quantum_execute"));
        assert!(a.entries.contains_key("chip.execute"));
    }

    #[test]
    fn end_to_end_suite_covers_workload_mix() {
        let snap = distill_sim("end_to_end").unwrap();
        assert_eq!(
            snap.entries.keys().collect::<Vec<_>>(),
            vec!["qaoa_8_spsa", "qnn_8_spsa", "vqe_16_gd", "vqe_8_spsa"]
        );
        for e in snap.entries.values() {
            assert!(e.median_ns > 0.0);
        }
    }
}
