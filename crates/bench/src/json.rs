//! A minimal JSON reader for the distiller.
//!
//! The workspace deliberately carries no general-purpose JSON crate, yet
//! the perf-trajectory distiller has to read three dialects: criterion's
//! `estimates.json`, [`MetricsSnapshot::to_json`] dumps, and committed
//! `BENCH_*.json` snapshots. This module implements the small strict
//! subset those files use: objects, arrays, strings with the standard
//! escapes, numbers, booleans, and null. Object member order is
//! preserved; duplicate keys keep their first occurrence on lookup.
//!
//! [`MetricsSnapshot::to_json`]: qtenon_sim_engine::MetricsSnapshot::to_json

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, widened to `f64`.
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as ordered `(key, value)` pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs are not needed by any of
                            // the dialects we read; reject them rather
                            // than silently mangling the text.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                        self.pos += 1;
                    }
                    // The input is a &str, so the span is valid UTF-8.
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a non-negative nanosecond quantity for a snapshot file:
/// integers stay integers, fractional values keep three decimals. The
/// fixed rule makes re-distilled snapshots byte-stable.
pub fn format_ns(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 9_007_199_254_740_992.0 {
        format!("{}", value as i64)
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Number(-1500.0));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": "x"}, null], "c": true}"#).unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(a[2], JsonValue::Null);
        assert_eq!(doc.get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn preserves_member_order_and_first_duplicate_wins() {
        let doc = parse(r#"{"z": 1, "a": 2, "z": 3}"#).unwrap();
        let members = doc.as_object().unwrap();
        assert_eq!(members[0].0, "z");
        assert_eq!(doc.get("z").and_then(JsonValue::as_f64), Some(1.0));
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(
            parse("\"\\u00e9\\u0041\"").unwrap(),
            JsonValue::String("éA".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "1 2", "tru", "nul!"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn reports_error_offsets() {
        let err = parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn roundtrips_metrics_snapshot_dialect() {
        let doc = parse(
            r#"{"metrics":{"profile.chip.execute.count":{"type":"counter","value":6},
                "profile.chip.execute.sim_ns":{"type":"histogram","count":6,"sum":600,
                "min":100,"max":100,"p50":100,"p90":100,"p99":100,"buckets":[[38,6]]}}}"#,
        )
        .unwrap();
        let metrics = doc.get("metrics").unwrap();
        let count = metrics.get("profile.chip.execute.count").unwrap();
        assert_eq!(count.get("value").and_then(JsonValue::as_f64), Some(6.0));
        let hist = metrics.get("profile.chip.execute.sim_ns").unwrap();
        assert_eq!(
            hist.get("type").and_then(JsonValue::as_str),
            Some("histogram")
        );
        assert_eq!(hist.get("p50").and_then(JsonValue::as_f64), Some(100.0));
    }

    #[test]
    fn format_ns_is_stable() {
        assert_eq!(format_ns(1500.0), "1500");
        assert_eq!(format_ns(0.0), "0");
        assert_eq!(format_ns(1234.5), "1234.500");
        assert_eq!(format_ns(0.03125), "0.031");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
