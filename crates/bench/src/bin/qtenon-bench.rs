//! Perf-trajectory tool: distils measurements into `BENCH_<name>.json`
//! snapshots and gates regressions against a committed baseline.
//!
//! Usage:
//!
//! ```text
//! qtenon-bench distill --sim <suite> [--out PATH]
//! qtenon-bench distill --metrics FILE --name NAME [--prefix profile.] [--out PATH]
//! qtenon-bench distill --criterion DIR --name NAME [--out PATH]
//! qtenon-bench compare --baseline FILE --current FILE
//!                      [--threshold 0.15] [--enforce]
//! ```
//!
//! `distill --sim` runs a pinned deterministic suite (`end_to_end` or
//! `profile_vqe`) and records sim-time medians — the committed-per-PR
//! path, reproducible bit-for-bit on any machine. `--metrics` distils a
//! `profile.*` metrics dump, `--criterion` harvests wall-clock medians
//! from a criterion output tree. `--out` defaults to
//! `BENCH_<name>.json` in the current directory.
//!
//! `compare` prints every tracked median's movement and exits non-zero
//! on a >threshold regression (or a disappeared entry) only when
//! `--enforce` is given or `QTENON_BENCH_ENFORCE=1` is set; otherwise
//! regressions are warnings, so the CI gate can land warn-only first.

use std::path::Path;
use std::process::exit;

use qtenon_bench::distill::{
    self, compare, compare_exit_code, distill_criterion, distill_metrics, distill_sim,
    enforce_enabled, BenchSnapshot,
};

fn main() {
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("distill") => run_distill(argv.collect()),
        Some("compare") => run_compare(argv.collect()),
        Some("--help" | "-h" | "help") | None => {
            eprintln!("usage: qtenon-bench <distill|compare> [options]");
            eprintln!("  distill --sim <{}>", distill::SIM_SUITES.join("|"));
            eprintln!("  distill --metrics FILE --name NAME [--prefix profile.]");
            eprintln!("  distill --criterion DIR --name NAME");
            eprintln!("          [--out PATH]   (default BENCH_<name>.json)");
            eprintln!("  compare --baseline FILE --current FILE [--threshold 0.15] [--enforce]");
            exit(if std::env::args().len() > 1 { 0 } else { 2 });
        }
        Some(other) => die(&format!("unknown command {other:?}")),
    }
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| match args.get(i + 1) {
            Some(v) => v.clone(),
            None => die(&format!("{flag} needs a value")),
        })
}

fn check_known_flags(args: &[String], known: &[&str]) {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            if !known.contains(&a.as_str()) {
                die(&format!("unknown flag {a:?}"));
            }
            // All known flags except --enforce consume a value.
            if a != "--enforce" {
                i += 1;
            }
        } else {
            die(&format!("unexpected argument {a:?}"));
        }
        i += 1;
    }
}

fn run_distill(args: Vec<String>) {
    check_known_flags(
        &args,
        &[
            "--sim",
            "--metrics",
            "--criterion",
            "--name",
            "--prefix",
            "--out",
        ],
    );
    let sim = flag_value(&args, "--sim");
    let metrics = flag_value(&args, "--metrics");
    let criterion = flag_value(&args, "--criterion");
    let sources = [&sim, &metrics, &criterion]
        .iter()
        .filter(|s| s.is_some())
        .count();
    if sources != 1 {
        die("distill needs exactly one of --sim, --metrics, --criterion");
    }

    let snapshot = if let Some(suite) = sim {
        distill_sim(&suite).unwrap_or_else(|| {
            die(&format!(
                "unknown sim suite {suite:?} (known: {})",
                distill::SIM_SUITES.join(", ")
            ))
        })
    } else if let Some(path) = metrics {
        let name =
            flag_value(&args, "--name").unwrap_or_else(|| die("--metrics distill needs --name"));
        let prefix = flag_value(&args, "--prefix").unwrap_or_else(|| "profile.".to_string());
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        distill_metrics(&text, &name, &prefix)
            .unwrap_or_else(|e| die(&format!("cannot distill {path}: {e}")))
    } else {
        let dir = criterion.unwrap();
        let name =
            flag_value(&args, "--name").unwrap_or_else(|| die("--criterion distill needs --name"));
        distill_criterion(Path::new(&dir), &name)
            .unwrap_or_else(|e| die(&format!("cannot walk {dir}: {e}")))
    };

    if snapshot.entries.is_empty() {
        die(&format!(
            "snapshot {:?} distilled zero entries",
            snapshot.name
        ));
    }
    let out = flag_value(&args, "--out").unwrap_or_else(|| format!("BENCH_{}.json", snapshot.name));
    if let Some(parent) = Path::new(&out)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
    {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out, snapshot.to_json())
        .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    println!(
        "wrote {out}: {} entries ({} {})",
        snapshot.entries.len(),
        snapshot.kind,
        snapshot.name
    );
}

fn run_compare(args: Vec<String>) {
    check_known_flags(
        &args,
        &["--baseline", "--current", "--threshold", "--enforce"],
    );
    let baseline_path =
        flag_value(&args, "--baseline").unwrap_or_else(|| die("compare needs --baseline"));
    let current_path =
        flag_value(&args, "--current").unwrap_or_else(|| die("compare needs --current"));
    let threshold = match flag_value(&args, "--threshold") {
        Some(t) => t
            .parse::<f64>()
            .ok()
            .filter(|t| t.is_finite() && *t >= 0.0)
            .unwrap_or_else(|| die("--threshold needs a non-negative number")),
        None => distill::DEFAULT_THRESHOLD,
    };
    let env = std::env::var("QTENON_BENCH_ENFORCE").ok();
    let enforce = enforce_enabled(&args, env.as_deref());

    let load = |path: &str| -> BenchSnapshot {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        BenchSnapshot::from_json(&text)
            .unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")))
    };
    let baseline = load(&baseline_path);
    let current = load(&current_path);
    if baseline.name != current.name {
        eprintln!(
            "warning: comparing different snapshot families ({:?} vs {:?})",
            baseline.name, current.name
        );
    }

    let report = compare(&baseline, &current, threshold);
    print!("{}", report.render(threshold));
    let code = compare_exit_code(&report, enforce);
    if report.gate_failed() {
        if code != 0 {
            eprintln!("perf gate FAILED ({} vs {})", current_path, baseline_path);
            exit(code);
        }
        println!(
            "perf gate: regressions found, but enforcement is off \
             (set QTENON_BENCH_ENFORCE=1 or pass --enforce)"
        );
    } else {
        println!("perf gate OK");
    }
}
