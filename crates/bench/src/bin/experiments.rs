//! Regenerates every table and figure of the paper as text tables.
//!
//! Usage:
//!
//! ```text
//! experiments [--full] [--threads N] [--metrics out.json] [ids...]
//! ```
//!
//! With no ids, all experiments run. `--full` uses the paper-scale setup
//! (500 shots × 10 iterations, 8–64 qubit sweeps); the default quick
//! scale preserves every ratio's shape at a fraction of the runtime.
//! `--threads N` shards shot sampling over `N` worker threads — wall
//! clock drops, every table stays bitwise identical. `--metrics PATH`
//! additionally runs the representative 64-qubit VQE and dumps its full
//! metric tree to `PATH` (JSON) and `PATH.prom` (Prometheus text format).
//! Valid ids: `fig1 table1 table2 table4 fig11 fig12 fig13 fig14 table5
//! fig15 fig16a fig16b fig17 ablation resilience parallel fleet
//! cachefleet breakdown critpath chaos kernels`. Every study is also mirrored to
//! `target/experiments/<id>.txt` (gitignored), with the path printed
//! after each table.

use qtenon_bench::experiments::{self, ExperimentScale, OptimizerKind};

fn main() {
    let mut full = false;
    let mut threads = 1usize;
    let mut metrics_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--threads" => match argv.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => threads = n,
                _ => {
                    eprintln!("error: --threads needs a number");
                    std::process::exit(2);
                }
            },
            "--metrics" => match argv.next() {
                Some(path) => metrics_path = Some(path),
                None => {
                    eprintln!("error: --metrics needs a path");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other:?}");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    let ids: Vec<&str> = ids.iter().map(String::as_str).collect();
    let scale = if full {
        ExperimentScale::paper()
    } else {
        ExperimentScale::quick()
    }
    .with_threads(threads);
    let all = ids.is_empty();
    let want = |id: &str| all || ids.contains(&id);
    println!(
        "# Qtenon experiment harness ({} scale: {} iterations, {} shots, {} thread{})\n",
        if full { "paper" } else { "quick" },
        scale.iterations,
        scale.shots,
        scale.threads,
        if scale.threads == 1 { "" } else { "s" }
    );

    if want("fig1") {
        section(
            "fig1",
            "Fig. 1 — baseline time shares (quantum execution is a minor fraction)",
            experiments::fig1(&scale).to_string(),
        );
    }
    if want("table1") {
        section(
            "table1",
            "Table 1 — decoupled vs tightly coupled systems",
            experiments::table1(&scale).to_string(),
        );
    }
    if want("table2") {
        section(
            "table2",
            "Table 2 — quantum controller cache design for 64 qubits",
            experiments::table2().to_string(),
        );
    }
    if want("table4") {
        section(
            "table4",
            "Table 4 — hardware configuration",
            experiments::table4().to_string(),
        );
    }
    if want("fig11") {
        section(
            "fig11",
            "Fig. 11 — speedups under Gradient Descent",
            experiments::fig11_12(&scale, OptimizerKind::Gd).to_string(),
        );
    }
    if want("fig12") {
        section(
            "fig12",
            "Fig. 12 — speedups under SPSA",
            experiments::fig11_12(&scale, OptimizerKind::Spsa).to_string(),
        );
    }
    if want("fig13") {
        section(
            "fig13",
            "Fig. 13 — 64-qubit VQE (SPSA) end-to-end breakdown",
            experiments::fig13(&scale).to_string(),
        );
    }
    if want("fig14") {
        section(
            "fig14_gd",
            "Fig. 14 — quantum-host communication (GD)",
            experiments::fig14(&scale, OptimizerKind::Gd).to_string(),
        );
        section(
            "fig14_spsa",
            "Fig. 14 — quantum-host communication (SPSA)",
            experiments::fig14(&scale, OptimizerKind::Spsa).to_string(),
        );
    }
    if want("table5") {
        section(
            "table5",
            "Table 5 — pulse generation speedup and computation reduction",
            experiments::table5(&scale).to_string(),
        );
    }
    if want("fig15") {
        section(
            "fig15",
            "Fig. 15 — host execution time",
            experiments::fig15(&scale).to_string(),
        );
    }
    if want("fig16a") {
        section(
            "fig16a",
            "Fig. 16a — FENCE vs fine-grained synchronisation",
            experiments::fig16a(&scale).to_string(),
        );
    }
    if want("fig16b") {
        section(
            "fig16b",
            "Fig. 16b — transmission scheduling (Algorithm 1)",
            experiments::fig16b(&scale).to_string(),
        );
    }
    if want("fig17") {
        section(
            "fig17",
            "Fig. 17 — scalability",
            experiments::fig17(&scale).to_string(),
        );
    }
    if want("ablation") {
        section(
            "ablation",
            "Ablation (beyond the paper) — PGU pool width × SLT reuse",
            experiments::ablation(&scale).to_string(),
        );
    }
    if want("resilience") {
        section(
            "resilience",
            "Resilience (beyond the paper) — 64-qubit VQE under fault injection",
            experiments::resilience(&scale).to_string(),
        );
    }
    if want("parallel") {
        section(
            "parallel",
            "Parallel (beyond the paper) — shot-sharded wall-clock vs serial, \
             bitwise-determinism checked",
            experiments::parallel(&scale).to_string(),
        );
    }
    if want("fleet") {
        section(
            "fleet",
            "Fleet (beyond the paper) — multi-job batch scheduler, jobs x threads sweep, \
             per-job artefacts checked against standalone runs",
            experiments::fleet(&scale).to_string(),
        );
    }
    if want("cachefleet") {
        section(
            "cachefleet",
            "Cache fleet (beyond the paper) — fleet compilation cache, duplication x \
             pool-width sweep, cold-vs-hit byte-equality checked live",
            experiments::cachefleet(&scale).to_string(),
        );
    }
    if want("breakdown") {
        section(
            "breakdown",
            "Breakdown (beyond the paper) — phase-level latency attribution \
             (deterministic sim time, same rows as `qtenon run --profile`)",
            experiments::breakdown(&scale).to_string(),
        );
    }
    if want("critpath") {
        section(
            "critpath",
            "Critical path (beyond the paper) — who-blocks-whom causal attribution, \
             Qtenon vs decoupled baseline (same rows as `qtenon run --critpath`)",
            experiments::critpath(&scale).to_string(),
        );
    }

    if want("chaos") {
        section(
            "chaos",
            "Chaos (beyond the paper) — fault-rate x retry-budget campaign over a \
             synthetic fleet; per-cell containment invariants checked \
             (same harness as `qtenon batch --chaos`)",
            experiments::chaos(&scale).to_string(),
        );
    }

    if want("kernels") {
        section(
            "kernels",
            "Kernels (beyond the paper) — reference vs unfused vs fused statevector \
             execution on transpiled QAOA, bitwise-identity checked per width",
            experiments::kernels(&scale).to_string(),
        );
    }

    if let Some(path) = metrics_path {
        let snapshot = experiments::telemetry_snapshot(&scale);
        let prom_path = format!("{path}.prom");
        if let Err(e) = std::fs::write(&path, snapshot.to_json())
            .and_then(|()| std::fs::write(&prom_path, snapshot.to_prometheus()))
        {
            eprintln!("error: cannot write telemetry: {e}");
            std::process::exit(1);
        }
        println!(
            "## Telemetry — {} metrics from the 64-qubit VQE written to {path} and {prom_path}\n",
            snapshot.len()
        );
    }
}

/// Prints a study and mirrors it to `target/experiments/<id>.txt`
/// (gitignored), announcing the path so runs leave no stray artefacts
/// in the repo root.
fn section(id: &str, title: &str, body: String) {
    println!("## {title}\n");
    println!("{body}");
    let dir = std::path::Path::new("target").join("experiments");
    let path = dir.join(format!("{id}.txt"));
    let contents = format!("## {title}\n\n{body}");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, contents)) {
        Ok(()) => println!("[wrote {}]\n", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
