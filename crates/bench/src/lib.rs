//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `fig*`/`table*` function runs the relevant systems and returns a
//! structured result; the `experiments` binary formats them as text
//! tables. [`ExperimentScale`] controls cost: [`ExperimentScale::quick`]
//! shrinks iterations/shots/sweeps for CI-class machines while keeping
//! every speedup ratio meaningful (both systems scale together);
//! [`ExperimentScale::paper`] reproduces the full Section 7.1 setup
//! (500 shots × 10 iterations, 8–64 qubits).

//!
//! The crate also carries the perf-trajectory tooling: [`distill`]
//! produces and compares the stable `BENCH_<name>.json` snapshots
//! (driven by the `qtenon-bench` binary), with [`json`] as its
//! dependency-free JSON reader.

pub mod distill;
pub mod experiments;
pub mod json;
pub mod table;

pub use distill::{BenchSnapshot, CompareReport};
pub use experiments::{ExperimentScale, OptimizerKind};
pub use table::TextTable;
