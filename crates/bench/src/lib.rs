//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `fig*`/`table*` function runs the relevant systems and returns a
//! structured result; the `experiments` binary formats them as text
//! tables. [`ExperimentScale`] controls cost: [`ExperimentScale::quick`]
//! shrinks iterations/shots/sweeps for CI-class machines while keeping
//! every speedup ratio meaningful (both systems scale together);
//! [`ExperimentScale::paper`] reproduces the full Section 7.1 setup
//! (500 shots × 10 iterations, 8–64 qubits).

pub mod experiments;
pub mod table;

pub use experiments::{ExperimentScale, OptimizerKind};
pub use table::TextTable;
