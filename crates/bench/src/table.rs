//! Minimal text-table formatting for experiment output.

use std::fmt;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use qtenon_bench::TextTable;
///
/// let mut t = TextTable::new(vec!["algo".into(), "speedup".into()]);
/// t.row(vec!["QAOA".into(), "14.7x".into()]);
/// let s = t.to_string();
/// assert!(s.contains("QAOA"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends one row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows (for assertions in tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = TextTable::new(vec!["a".into(), "long-header".into()]);
        t.row(vec!["wide-cell".into(), "x".into()]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        // Both columns padded to max width.
        assert!(lines[0].starts_with("a        "));
        assert!(lines[2].starts_with("wide-cell"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["1".into()]);
        assert_eq!(t.rows()[0].len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }
}
