//! The per-table/per-figure experiment implementations.

use qtenon_baseline::{BaselineConfig, BaselineRunner};
use qtenon_compiler::{BaselineCompiler, ParameterDiff, QtenonCompiler};
use qtenon_controller::{BusConfig, TileLinkBus};
use qtenon_core::config::{CoreModel, QtenonConfig, SyncMode, TransmissionPolicy};
use qtenon_core::jobs::{run_standalone, BatchScheduler, JobOptimizer, JobSpec};
use qtenon_core::report::RunReport;
use qtenon_core::vqa::VqaRunner;
use qtenon_isa::{QccLayout, Segment};
use qtenon_sim_engine::{MetricsRegistry, MetricsSnapshot, SimDuration, SimTime};
use qtenon_workloads::{
    GradientDescentOptimizer, Optimizer, SpsaOptimizer, Workload, WorkloadKind,
};

use crate::table::TextTable;

/// Which optimizer an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// Gradient descent via the parameter-shift rule.
    Gd,
    /// SPSA.
    Spsa,
}

impl OptimizerKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OptimizerKind::Gd => "GD",
            OptimizerKind::Spsa => "SPSA",
        }
    }

    /// Builds the optimizer.
    pub fn build(self, seed: u64) -> Box<dyn Optimizer> {
        match self {
            OptimizerKind::Gd => Box::new(GradientDescentOptimizer::new(0.05)),
            OptimizerKind::Spsa => Box::new(SpsaOptimizer::new(seed)),
        }
    }
}

/// Experiment sizing knobs.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Optimizer iterations per run (paper: 10).
    pub iterations: usize,
    /// Shots per circuit evaluation (paper: 500).
    pub shots: u64,
    /// Qubit sweep for Figs. 11/12 (paper: 8–64 step 8).
    pub qubit_sweep: Vec<u32>,
    /// Qubit sweep for the Fig. 17 scalability study (paper: 64–320).
    pub scaling_sweep: Vec<u32>,
    /// Workload/optimizer seeds.
    pub seed: u64,
    /// Worker threads for shot-sharded sampling. Results are bitwise
    /// identical at any value; only wall-clock changes.
    pub threads: usize,
}

impl ExperimentScale {
    /// A fast configuration preserving every speedup ratio's shape.
    pub fn quick() -> Self {
        ExperimentScale {
            iterations: 2,
            shots: 100,
            qubit_sweep: vec![8, 16, 32, 64],
            scaling_sweep: vec![64, 128, 192],
            seed: 42,
            threads: 1,
        }
    }

    /// The paper's full Section 7.1 setup.
    pub fn paper() -> Self {
        ExperimentScale {
            iterations: 10,
            shots: 500,
            qubit_sweep: (1..=8).map(|i| 8 * i).collect(),
            scaling_sweep: vec![64, 128, 192, 256, 320],
            seed: 42,
            threads: 1,
        }
    }

    /// Returns a copy with a different worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

fn fmt_dur(d: SimDuration) -> String {
    d.to_string()
}

fn fmt_x(r: f64) -> String {
    format!("{r:.1}x")
}

fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

fn ratio(a: SimDuration, b: SimDuration) -> f64 {
    if b.is_zero() {
        f64::INFINITY
    } else {
        a.as_ns() / b.as_ns()
    }
}

/// Runs a workload on Qtenon with the given policies.
///
/// # Panics
///
/// Panics if construction or execution fails (experiment configurations
/// are known-valid).
pub fn qtenon_run(
    kind: WorkloadKind,
    n: u32,
    core: CoreModel,
    opt: OptimizerKind,
    scale: &ExperimentScale,
    sync: SyncMode,
    policy: TransmissionPolicy,
) -> RunReport {
    let config = QtenonConfig::table4(n, core)
        .expect("valid config")
        .with_sync(sync)
        .with_transmission(policy)
        .with_seed(scale.seed)
        .with_threads(scale.threads);
    let workload = Workload::benchmark(kind, n, scale.seed).expect("valid workload");
    let mut runner = VqaRunner::new(config, workload).expect("runner builds");
    let mut optimizer = opt.build(scale.seed);
    runner
        .run(optimizer.as_mut(), scale.iterations, scale.shots)
        .expect("run succeeds")
}

/// Runs a workload on Qtenon with the paper-default policies.
pub fn qtenon_default(
    kind: WorkloadKind,
    n: u32,
    core: CoreModel,
    opt: OptimizerKind,
    scale: &ExperimentScale,
) -> RunReport {
    qtenon_run(
        kind,
        n,
        core,
        opt,
        scale,
        SyncMode::FineGrained,
        TransmissionPolicy::Batched,
    )
}

/// Runs a workload on the decoupled baseline.
///
/// # Panics
///
/// Panics if execution fails.
pub fn baseline_run(
    kind: WorkloadKind,
    n: u32,
    opt: OptimizerKind,
    scale: &ExperimentScale,
) -> RunReport {
    let workload = Workload::benchmark(kind, n, scale.seed).expect("valid workload");
    let mut runner = BaselineRunner::new(
        BaselineConfig {
            seed: scale.seed,
            ..BaselineConfig::default()
        },
        workload,
    );
    let mut optimizer = opt.build(scale.seed);
    runner
        .run(optimizer.as_mut(), scale.iterations, scale.shots)
        .expect("baseline run succeeds")
}

/// Fig. 1: quantum vs classical share on the baseline, plus the 64-qubit
/// VQE breakdown.
pub fn fig1(scale: &ExperimentScale) -> TextTable {
    let mut t = TextTable::new(vec![
        "workload".into(),
        "#qubits".into(),
        "quantum %".into(),
        "classical %".into(),
        "comm %".into(),
        "pulse %".into(),
        "host %".into(),
        "total".into(),
    ]);
    for (kind, n) in [
        (WorkloadKind::Qaoa, 48),
        (WorkloadKind::Vqe, 56),
        (WorkloadKind::Qnn, 64),
    ] {
        let r = baseline_run(kind, n, OptimizerKind::Spsa, scale);
        let shares = r.exposed_shares();
        t.row(vec![
            kind.to_string(),
            n.to_string(),
            fmt_pct(shares[0]),
            fmt_pct(1.0 - shares[0]),
            fmt_pct(shares[1]),
            fmt_pct(shares[2]),
            fmt_pct(shares[3]),
            fmt_dur(r.total),
        ]);
    }
    t
}

/// Table 1: decoupled vs tightly-coupled comparison, measured live.
pub fn table1(scale: &ExperimentScale) -> TextTable {
    let mut t = TextTable::new(vec![
        "metric".into(),
        "baseline (decoupled)".into(),
        "Qtenon (tightly coupled)".into(),
    ]);

    // Communication latency: one small transfer each way.
    let net = qtenon_baseline::NetworkModel::default();
    let mut bus = TileLinkBus::new(BusConfig::default());
    let qt = bus.schedule_transfer(SimTime::ZERO, 8);
    t.row(vec![
        "comm. latency".into(),
        fmt_dur(net.message_time(8)),
        fmt_dur(qt.complete.saturating_since(SimTime::ZERO)),
    ]);

    // Instruction counts: 64-qubit QAOA-5, GD, 10 iterations.
    let workload = Workload::qaoa(64, 5, scale.seed).expect("workload");
    let layout = QccLayout::for_qubits(64).expect("layout");
    let program = QtenonCompiler::new(layout)
        .compile(&workload.circuit)
        .expect("compiles");
    let bound = workload
        .circuit
        .bind(&workload.initial_params)
        .expect("binds");
    let baseline_per_compile = BaselineCompiler::default().compile(&bound);
    // Count the dedicated ISA's instructions from a real emitted stream.
    let eqasm = qtenon_compiler::EqasmProgram::emit(&bound).expect("within 128 qubits");
    let gd_evals = 2 * workload.num_params() as u64 * 10;
    let qtenon_static = program.load_instructions(0).len() as u64
        + program.slots().len() as u64
        + program.gen_instructions().len() as u64
        + program.slots().len() as u64
        + 3;
    t.row(vec![
        "instructions (64q QAOA-5, 10 GD iters)".into(),
        format!(
            "{} ({} per compile, re-emitted per eval)",
            eqasm.len() as u64 * gd_evals,
            eqasm.len()
        ),
        format!("{qtenon_static} (static program)"),
    ]);

    // Recompile overhead: one-parameter change.
    let mut shifted = workload.initial_params.clone();
    shifted[0] += 0.3;
    let diff = ParameterDiff::between(&program, &workload.initial_params, &shifted).expect("diff");
    let qtenon_recompile = SimDuration::from_ns(diff.changed_slots() as u64); // 1 cycle per q_update
    t.row(vec![
        "recompile overhead".into(),
        fmt_dur(baseline_per_compile.compile_time),
        fmt_dur(qtenon_recompile),
    ]);

    t.row(vec![
        "execution".into(),
        "sequential".into(),
        "interleaved (quantum/host overlap)".into(),
    ]);
    t
}

/// Table 2: quantum controller cache geometry for 64 qubits, computed
/// from the live layout.
pub fn table2() -> TextTable {
    let layout = QccLayout::for_qubits(64).expect("layout");
    let mut t = TextTable::new(vec![
        "segment".into(),
        "entries".into(),
        "size".into(),
        "public".into(),
    ]);
    for seg in Segment::ALL {
        t.row(vec![
            seg.to_string(),
            layout.segment_entries(seg).to_string(),
            format!("{:.2} KB", layout.segment_bytes(seg) as f64 / 1024.0),
            if seg.is_public() { "yes" } else { "no" }.into(),
        ]);
    }
    t.row(vec![
        "total".into(),
        String::new(),
        format!("{:.2} MB", layout.total_bytes() as f64 / (1024.0 * 1024.0)),
        String::new(),
    ]);
    t
}

/// Table 4: the hardware configuration in force.
pub fn table4() -> TextTable {
    let cfg = QtenonConfig::table4(64, CoreModel::Rocket).expect("config");
    let mut t = TextTable::new(vec!["part".into(), "configuration".into()]);
    t.row(vec![
        "Core".into(),
        "Rocket @ 1 GHz / Boom-L @ 1 GHz".into(),
    ]);
    t.row(vec![
        "L1".into(),
        format!(
            "{} KB {}-way I/D",
            cfg.hierarchy.l1.size_bytes / 1024,
            cfg.hierarchy.l1.ways
        ),
    ]);
    t.row(vec![
        "QCC".into(),
        format!(
            "{:.2} MB (Table 2 geometry)",
            cfg.layout.total_bytes() as f64 / (1024.0 * 1024.0)
        ),
    ]);
    t.row(vec![
        "QC".into(),
        format!("{} qubits, {} PGUs", cfg.n_qubits, cfg.pipeline.pgu.units),
    ]);
    t.row(vec![
        "L2".into(),
        format!(
            "{} KB {}-way",
            cfg.hierarchy.l2.size_bytes / 1024,
            cfg.hierarchy.l2.ways
        ),
    ]);
    t.row(vec![
        "Bus".into(),
        format!("TileLink {} bits/cycle @ 1 GHz", cfg.bus.width_bits),
    ]);
    t
}

/// Figs. 11/12: classical-time and end-to-end speedups vs the baseline
/// across the qubit sweep, for both cores.
pub fn fig11_12(scale: &ExperimentScale, opt: OptimizerKind) -> TextTable {
    let mut t = TextTable::new(vec![
        "workload".into(),
        "#qubits".into(),
        "classical speedup (Rocket)".into(),
        "classical speedup (Boom-L)".into(),
        "e2e speedup (Rocket)".into(),
        "e2e speedup (Boom-L)".into(),
    ]);
    for kind in WorkloadKind::ALL {
        for &n in &scale.qubit_sweep {
            let base = baseline_run(kind, n, opt, scale);
            let rocket = qtenon_default(kind, n, CoreModel::Rocket, opt, scale);
            let boom = qtenon_default(kind, n, CoreModel::BoomLarge, opt, scale);
            t.row(vec![
                kind.to_string(),
                n.to_string(),
                fmt_x(ratio(base.classical_time(), rocket.classical_time())),
                fmt_x(ratio(base.classical_time(), boom.classical_time())),
                fmt_x(ratio(base.total, rocket.total)),
                fmt_x(ratio(base.total, boom.total)),
            ]);
        }
    }
    t
}

/// Fig. 13: 64-qubit VQE (SPSA) breakdown across the three systems.
pub fn fig13(scale: &ExperimentScale) -> TextTable {
    let mut t = TextTable::new(vec![
        "system".into(),
        "total".into(),
        "quantum %".into(),
        "comm %".into(),
        "pulse %".into(),
        "host %".into(),
    ]);
    let kind = WorkloadKind::Vqe;
    let base = baseline_run(kind, 64, OptimizerKind::Spsa, scale);
    let hw_only = qtenon_run(
        kind,
        64,
        CoreModel::Rocket,
        OptimizerKind::Spsa,
        scale,
        SyncMode::Fence,
        TransmissionPolicy::Immediate,
    );
    let full = qtenon_default(kind, 64, CoreModel::Rocket, OptimizerKind::Spsa, scale);
    for (name, r) in [
        ("baseline", &base),
        ("Qtenon w/o software", &hw_only),
        ("Qtenon", &full),
    ] {
        let s = r.exposed_shares();
        t.row(vec![
            name.into(),
            fmt_dur(r.total),
            fmt_pct(s[0]),
            fmt_pct(s[1]),
            fmt_pct(s[2]),
            fmt_pct(s[3]),
        ]);
    }
    t
}

/// Fig. 14: quantum-host communication time and per-instruction split.
pub fn fig14(scale: &ExperimentScale, opt: OptimizerKind) -> TextTable {
    let mut t = TextTable::new(vec![
        "workload".into(),
        "baseline comm".into(),
        "Qtenon comm".into(),
        "speedup".into(),
        "q_set %".into(),
        "q_update %".into(),
        "q_acquire %".into(),
    ]);
    for kind in WorkloadKind::ALL {
        let base = baseline_run(kind, 64, opt, scale);
        let qt = qtenon_default(kind, 64, CoreModel::BoomLarge, opt, scale);
        let shares = qt.comm.shares();
        t.row(vec![
            kind.to_string(),
            fmt_dur(base.comm.total()),
            fmt_dur(qt.comm.total()),
            fmt_x(ratio(base.comm.total(), qt.comm.total())),
            fmt_pct(shares[0]),
            fmt_pct(shares[1]),
            fmt_pct(shares[2]),
        ]);
    }
    t
}

/// Table 5: pulse-generation speedup and computation-requirement
/// reduction.
pub fn table5(scale: &ExperimentScale) -> TextTable {
    let mut t = TextTable::new(vec![
        "optimizer".into(),
        "workload".into(),
        "pulse-gen speedup".into(),
        "computation reduction".into(),
    ]);
    for opt in [OptimizerKind::Gd, OptimizerKind::Spsa] {
        for kind in WorkloadKind::ALL {
            let base = baseline_run(kind, 64, opt, scale);
            let qt = qtenon_default(kind, 64, CoreModel::Rocket, opt, scale);
            t.row(vec![
                opt.name().into(),
                kind.to_string(),
                fmt_x(ratio(
                    base.breakdown.pulse_generation,
                    qt.breakdown.pulse_generation,
                )),
                fmt_pct(qt.pulse_reduction),
            ]);
        }
    }
    t
}

/// Fig. 15: host execution time across systems.
pub fn fig15(scale: &ExperimentScale) -> TextTable {
    let mut t = TextTable::new(vec![
        "optimizer".into(),
        "workload".into(),
        "baseline host".into(),
        "Qtenon-Boom host".into(),
        "Qtenon-Rocket host".into(),
        "speedup (Boom)".into(),
    ]);
    for opt in [OptimizerKind::Gd, OptimizerKind::Spsa] {
        for kind in WorkloadKind::ALL {
            let base = baseline_run(kind, 64, opt, scale);
            let boom = qtenon_default(kind, 64, CoreModel::BoomLarge, opt, scale);
            let rocket = qtenon_default(kind, 64, CoreModel::Rocket, opt, scale);
            t.row(vec![
                opt.name().into(),
                kind.to_string(),
                fmt_dur(base.breakdown.host),
                fmt_dur(boom.breakdown.host),
                fmt_dur(rocket.breakdown.host),
                fmt_x(ratio(base.breakdown.host, boom.breakdown.host)),
            ]);
        }
    }
    t
}

/// Fig. 16a: FENCE vs fine-grained synchronisation.
pub fn fig16a(scale: &ExperimentScale) -> TextTable {
    let mut t = TextTable::new(vec![
        "optimizer".into(),
        "workload".into(),
        "FENCE classical".into(),
        "fine-grained classical".into(),
        "speedup".into(),
    ]);
    for opt in [OptimizerKind::Gd, OptimizerKind::Spsa] {
        for kind in WorkloadKind::ALL {
            let fence = qtenon_run(
                kind,
                64,
                CoreModel::Rocket,
                opt,
                scale,
                SyncMode::Fence,
                TransmissionPolicy::Batched,
            );
            let fine = qtenon_default(kind, 64, CoreModel::Rocket, opt, scale);
            t.row(vec![
                opt.name().into(),
                kind.to_string(),
                fmt_dur(fence.classical_time()),
                fmt_dur(fine.classical_time()),
                fmt_x(ratio(fence.classical_time(), fine.classical_time())),
            ]);
        }
    }
    t
}

/// Fig. 16b: unscheduled (immediate) vs batched transmission.
pub fn fig16b(scale: &ExperimentScale) -> TextTable {
    let mut t = TextTable::new(vec![
        "optimizer".into(),
        "workload".into(),
        "w/o schedule classical".into(),
        "w/ schedule classical".into(),
        "speedup".into(),
    ]);
    for opt in [OptimizerKind::Gd, OptimizerKind::Spsa] {
        for kind in WorkloadKind::ALL {
            let unsched = qtenon_run(
                kind,
                64,
                CoreModel::Rocket,
                opt,
                scale,
                SyncMode::FineGrained,
                TransmissionPolicy::Immediate,
            );
            let sched = qtenon_default(kind, 64, CoreModel::Rocket, opt, scale);
            t.row(vec![
                opt.name().into(),
                kind.to_string(),
                fmt_dur(unsched.classical_time()),
                fmt_dur(sched.classical_time()),
                fmt_x(ratio(unsched.classical_time(), sched.classical_time())),
            ]);
        }
    }
    t
}

/// Fig. 17: scalability to 320 qubits (SPSA, QAOA & VQE).
pub fn fig17(scale: &ExperimentScale) -> TextTable {
    let mut t = TextTable::new(vec![
        "workload".into(),
        "#qubits".into(),
        "comm time".into(),
        "comm rel. to first".into(),
        "classical time".into(),
        "classical rel. to first".into(),
        "quantum %".into(),
    ]);
    for kind in [WorkloadKind::Qaoa, WorkloadKind::Vqe] {
        let mut first: Option<(SimDuration, SimDuration)> = None;
        for &n in &scale.scaling_sweep {
            let r = qtenon_default(kind, n, CoreModel::BoomLarge, OptimizerKind::Spsa, scale);
            let comm = r.comm.total();
            let classical = r.classical_time();
            let (c0, h0) = *first.get_or_insert((comm, classical));
            t.row(vec![
                kind.to_string(),
                n.to_string(),
                fmt_dur(comm),
                format!("{:.2}", ratio(comm, c0)),
                fmt_dur(classical),
                format!("{:.2}", ratio(classical, h0)),
                fmt_pct(r.exposed_shares()[0]),
            ]);
        }
    }
    t
}

/// Runs the representative workload (64-qubit VQE, SPSA, Rocket core,
/// paper-default policies) and captures the full metric tree — what the
/// `experiments` binary dumps with `--metrics`.
///
/// # Panics
///
/// Panics if construction or execution fails (the configuration is
/// known-valid).
pub fn telemetry_snapshot(scale: &ExperimentScale) -> MetricsSnapshot {
    let config = QtenonConfig::table4(64, CoreModel::Rocket)
        .expect("valid config")
        .with_seed(scale.seed)
        .with_threads(scale.threads);
    let workload = Workload::benchmark(WorkloadKind::Vqe, 64, scale.seed).expect("valid workload");
    let mut runner = VqaRunner::new(config, workload).expect("runner builds");
    let mut optimizer = OptimizerKind::Spsa.build(scale.seed);
    runner
        .run(optimizer.as_mut(), scale.iterations, scale.shots)
        .expect("run succeeds");
    let mut registry = MetricsRegistry::new();
    runner.export_metrics(&mut registry);
    registry.snapshot()
}

/// Like [`telemetry_snapshot`] but running 8-qubit QAOA, where the exact
/// statevector backend — and therefore the kernel/fusion layer — is on
/// the execution path, with gate fusion toggleable. QAOA (rather than
/// VQE) because its transpiled circuit has real same-qubit runs for the
/// planner to fuse: every `H` lowers to `RZ(π)·RY(π/2)` and each
/// `CX·RZ·CX` cost term leaves a five-rotation run on the target qubit.
/// Returns the metric tree together with the run report so callers can
/// check that fusion is artefact-invariant: everything except the
/// `quantum.fuse.*` accounting counters must be byte-identical across
/// `fuse` settings (DESIGN.md §13).
///
/// # Panics
///
/// Panics if construction or execution fails (the configuration is
/// known-valid).
pub fn telemetry_snapshot_exact(
    scale: &ExperimentScale,
    fuse: bool,
) -> (MetricsSnapshot, RunReport) {
    let config = QtenonConfig::table4(8, CoreModel::Rocket)
        .expect("valid config")
        .with_seed(scale.seed)
        .with_threads(scale.threads)
        .with_fuse(fuse);
    let workload = Workload::benchmark(WorkloadKind::Qaoa, 8, scale.seed).expect("valid workload");
    let mut runner = VqaRunner::new(config, workload).expect("runner builds");
    let mut optimizer = OptimizerKind::Spsa.build(scale.seed);
    let report = runner
        .run(optimizer.as_mut(), scale.iterations, scale.shots)
        .expect("run succeeds");
    let mut registry = MetricsRegistry::new();
    runner.export_metrics(&mut registry);
    (registry.snapshot(), report)
}

/// Statevector kernel study (beyond the paper): naive-reference vs
/// unfused-kernel vs fused-kernel wall-clock for the transpiled QAOA
/// circuit at exact widths, with the fusion plan's gate accounting and a
/// live bitwise-identity check per row — `fused` and `unfused` amplitudes
/// are compared bit-for-bit (zero signs included), the reference after
/// canonicalizing IEEE signed zeros (DESIGN.md §13).
///
/// # Panics
///
/// Panics if construction or execution fails (the configurations are
/// known-valid).
pub fn kernels(scale: &ExperimentScale) -> TextTable {
    use qtenon_quantum::fuse::plan;
    use qtenon_quantum::kernels::{mat_rx, mat_ry, mat_rz};
    use qtenon_quantum::{Angle, Gate, StateVector};
    use std::time::Instant;

    let canonical_bits = |sv: &StateVector| -> Vec<(u64, u64)> {
        let canon = |x: f64| {
            if x == 0.0 {
                0.0f64.to_bits()
            } else {
                x.to_bits()
            }
        };
        (0..1usize << sv.n_qubits())
            .map(|i| {
                let a = sv.amplitude(i);
                (canon(a.re), canon(a.im))
            })
            .collect()
    };
    let raw_bits = |sv: &StateVector| -> Vec<(u64, u64)> {
        (0..1usize << sv.n_qubits())
            .map(|i| {
                let a = sv.amplitude(i);
                (a.re.to_bits(), a.im.to_bits())
            })
            .collect()
    };

    let mut t = TextTable::new(vec![
        "qubits".into(),
        "native gates".into(),
        "runs".into(),
        "fused runs".into(),
        "reference wall".into(),
        "unfused wall".into(),
        "fused wall".into(),
        "fused speedup".into(),
        "bitwise identical".into(),
    ]);
    for n in [8u32, 12, 16] {
        let workload = Workload::benchmark(WorkloadKind::Qaoa, n, scale.seed).expect("workload");
        let circuit = workload
            .circuit
            .bind(&workload.initial_params)
            .expect("bound circuit");

        let start = Instant::now();
        let mut reference = StateVector::new(n).expect("state");
        for op in circuit.operations() {
            match op.gate {
                Gate::Rx(Angle::Value(v)) => reference.apply_matrix2_reference(op.qubit, mat_rx(v)),
                Gate::Ry(Angle::Value(v)) => reference.apply_matrix2_reference(op.qubit, mat_ry(v)),
                Gate::Rz(Angle::Value(v)) => reference.apply_matrix2_reference(op.qubit, mat_rz(v)),
                Gate::Cz => reference.apply_cz_reference(op.qubit, op.qubit2.expect("CZ operands")),
                Gate::Measure => {}
                ref g => panic!("non-native gate {g:?} after transpile"),
            }
        }
        let reference_wall = start.elapsed();

        let unfused_plan = plan(&circuit, false).expect("plan");
        let start = Instant::now();
        let mut unfused = StateVector::new(n).expect("state");
        unfused.apply_plan(&unfused_plan);
        let unfused_wall = start.elapsed();

        let fused_plan = plan(&circuit, true).expect("plan");
        let start = Instant::now();
        let mut fused = StateVector::new(n).expect("state");
        fused.apply_plan(&fused_plan);
        let fused_wall = start.elapsed();

        let identical = raw_bits(&fused) == raw_bits(&unfused)
            && canonical_bits(&reference) == canonical_bits(&fused);
        let speedup = unfused_wall.as_secs_f64() / fused_wall.as_secs_f64().max(1e-12);
        t.row(vec![
            n.to_string(),
            fused_plan.stats.gates_in.to_string(),
            fused_plan.stats.runs.to_string(),
            fused_plan.stats.fused_runs.to_string(),
            format!("{reference_wall:.2?}"),
            format!("{unfused_wall:.2?}"),
            format!("{fused_wall:.2?}"),
            format!("{speedup:.2}x"),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// Shot-sharded parallel execution study (beyond the paper): serial vs
/// multi-threaded wall-clock on the largest qubit-sweep size across the
/// three VQA workloads, with a live bitwise-determinism check per cell —
/// the `bitwise identical` column compares the threaded run's full
/// metrics JSON and [`RunReport`] byte-for-byte against the serial run.
/// The final row re-dispatches the three threaded runs concurrently under
/// [`std::thread::scope`] (each worker owns its whole system) and also
/// checks that the [`RunReport::merge`] reduction of the threaded reports
/// matches the reduction of the serial ones.
///
/// # Panics
///
/// Panics if construction or execution fails (the configurations are
/// known-valid).
pub fn parallel(scale: &ExperimentScale) -> TextTable {
    use std::time::{Duration, Instant};

    let n = scale.qubit_sweep.last().copied().unwrap_or(64);
    let threads = scale.threads.max(4);
    let kinds = [WorkloadKind::Vqe, WorkloadKind::Qaoa, WorkloadKind::Qnn];

    let timed_run = |threads: usize, kind: WorkloadKind| -> (Duration, RunReport, String) {
        let config = QtenonConfig::table4(n, CoreModel::Rocket)
            .expect("valid config")
            .with_seed(scale.seed)
            .with_threads(threads);
        let workload = Workload::benchmark(kind, n, scale.seed).expect("valid workload");
        let mut runner = VqaRunner::new(config, workload).expect("runner builds");
        let mut optimizer = OptimizerKind::Spsa.build(scale.seed);
        let start = Instant::now();
        let report = runner
            .run(optimizer.as_mut(), scale.iterations, scale.shots)
            .expect("run succeeds");
        let wall = start.elapsed();
        let mut registry = MetricsRegistry::new();
        runner.export_metrics(&mut registry);
        (wall, report, registry.snapshot().to_json())
    };

    let mut t = TextTable::new(vec![
        "workload".into(),
        "serial wall".into(),
        format!("{threads}-thread wall"),
        "speedup".into(),
        "bitwise identical".into(),
    ]);
    let mut serial_wall = Duration::ZERO;
    let mut merged_serial: Option<RunReport> = None;
    let mut merged_sharded: Option<RunReport> = None;
    let mut all_identical = true;
    for kind in kinds {
        let (ws, serial_report, serial_json) = timed_run(1, kind);
        let (wt, sharded_report, sharded_json) = timed_run(threads, kind);
        let identical = serial_report == sharded_report && serial_json == sharded_json;
        all_identical &= identical;
        serial_wall += ws;
        match merged_serial.as_mut() {
            Some(m) => m.merge(&serial_report),
            None => merged_serial = Some(serial_report),
        }
        match merged_sharded.as_mut() {
            Some(m) => m.merge(&sharded_report),
            None => merged_sharded = Some(sharded_report),
        }
        t.row(vec![
            format!("{kind:?}-{n}"),
            format!("{ws:.2?}"),
            format!("{wt:.2?}"),
            fmt_x(ws.as_secs_f64() / wt.as_secs_f64().max(f64::MIN_POSITIVE)),
            if identical { "yes".into() } else { "NO".into() },
        ]);
    }

    // Fleet dispatch: the same three sharded runs, launched together.
    let timed_run = &timed_run;
    let fleet_start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = kinds
            .iter()
            .map(|&kind| scope.spawn(move || timed_run(threads, kind)))
            .collect();
        for h in handles {
            h.join().expect("fleet worker panicked");
        }
    });
    let fleet_wall = fleet_start.elapsed();
    let merges_match = merged_serial == merged_sharded;
    t.row(vec![
        "all (concurrent dispatch)".into(),
        format!("{serial_wall:.2?}"),
        format!("{fleet_wall:.2?}"),
        fmt_x(serial_wall.as_secs_f64() / fleet_wall.as_secs_f64().max(f64::MIN_POSITIVE)),
        if all_identical && merges_match {
            "yes".into()
        } else {
            "NO".into()
        },
    ]);
    t
}

/// The jobs the fleet study schedules: a mixed bag of workload kinds,
/// host cores, optimizers, and priorities, sized from the experiment
/// scale. One job carries an active fault plan so the determinism check
/// covers fault accounting too.
fn fleet_jobs(scale: &ExperimentScale) -> Vec<JobSpec> {
    use qtenon_sim_engine::FaultPlan;

    let n = scale.qubit_sweep.first().copied().unwrap_or(8);
    let kinds = [WorkloadKind::Vqe, WorkloadKind::Qaoa, WorkloadKind::Qnn];
    (0..6)
        .map(|i| {
            let kind = kinds[i % kinds.len()];
            let mut spec = JobSpec::new(&format!("{}-{i}", kind.name().to_lowercase()), kind, n)
                .with_iterations(scale.iterations)
                .with_shots(scale.shots)
                .with_priority((i % 3) as u8);
            if i == 1 {
                spec = spec.with_core(CoreModel::BoomLarge);
            }
            if i % 2 == 1 {
                spec = spec.with_optimizer(JobOptimizer::Gd);
            }
            if i == 4 {
                spec = spec.with_faults(FaultPlan::all(0.01).with_seed(scale.seed ^ 0xFA17));
            }
            spec
        })
        .collect()
}

/// Multi-job fleet study (beyond the paper): the same 6-job batch —
/// mixed workloads, cores, optimizers, priorities, one job under active
/// fault injection — dispatched through [`BatchScheduler`] at increasing
/// pool widths. The serial baseline is the identical batch on one
/// thread; the `bitwise identical` column compares every job's full
/// metrics JSON and [`RunReport`] byte-for-byte against a standalone
/// [`run_standalone`] execution of the same spec and seed.
///
/// # Panics
///
/// Panics if admission or execution fails (the fleet is known-valid).
pub fn fleet(scale: &ExperimentScale) -> TextTable {
    use std::time::Duration;

    let jobs = fleet_jobs(scale);
    let mut sched = BatchScheduler::new(scale.seed);
    for job in &jobs {
        sched.submit(job.clone()).expect("fleet fits the queue");
    }

    // Standalone reference artefacts, one isolated run per job.
    let references: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            let seed = sched
                .seed_of(qtenon_core::jobs::JobId::from_index(i))
                .expect("admitted job");
            run_standalone(job, seed, 1).expect("standalone run succeeds")
        })
        .collect();

    let mut t = TextTable::new(vec![
        "pool threads".into(),
        "pool shape".into(),
        "wall".into(),
        "jobs/s".into(),
        "shots/s".into(),
        "speedup".into(),
        "bitwise identical".into(),
    ]);
    let mut serial_wall = Duration::ZERO;
    for threads in [1usize, 2, 4, 8] {
        let batch = sched.run(threads).expect("batch run succeeds");
        if threads == 1 {
            serial_wall = batch.wall;
        }
        let identical = batch.results.iter().enumerate().all(|(i, r)| {
            let a = r.outcome.artifacts().expect("job completes");
            a.report == references[i].report && a.metrics_json == references[i].metrics_json
        });
        t.row(vec![
            threads.to_string(),
            format!(
                "{} jobs x {} shards",
                batch.pool.job_workers, batch.pool.shard_threads
            ),
            format!("{:.2?}", batch.wall),
            format!("{:.2}", batch.jobs_per_second()),
            format!("{:.0}", batch.shots_per_second()),
            fmt_x(serial_wall.as_secs_f64() / batch.wall.as_secs_f64().max(f64::MIN_POSITIVE)),
            if identical { "yes".into() } else { "NO".into() },
        ]);
    }
    t
}

/// Jobs for the fleet-cache study at a given duplication percentage:
/// `dup_pct` of the fleet replicate one canonical 128-qubit QAOA spec
/// (identical seed → identical circuit AND identical optimizer
/// trajectory, so duplicates hit at both cache levels), the rest are
/// structurally distinct workload/width combinations whose program keys
/// cannot collide with the duplicate's or each other's.
fn cachefleet_jobs(scale: &ExperimentScale, dup_pct: usize) -> Vec<JobSpec> {
    const FLEET: usize = 12;
    let distinct: [(WorkloadKind, u32); FLEET] = [
        (WorkloadKind::Vqe, 128),
        (WorkloadKind::Qnn, 128),
        (WorkloadKind::Qaoa, 120),
        (WorkloadKind::Vqe, 120),
        (WorkloadKind::Qnn, 120),
        (WorkloadKind::Qaoa, 112),
        (WorkloadKind::Vqe, 112),
        (WorkloadKind::Qnn, 112),
        (WorkloadKind::Qaoa, 104),
        (WorkloadKind::Vqe, 104),
        (WorkloadKind::Qnn, 104),
        (WorkloadKind::Vqe, 96),
    ];
    let dups = FLEET * dup_pct / 100;
    (0..FLEET)
        .map(|i| {
            let (name, kind, n, seed) = if i < dups {
                (
                    format!("dup-{i}"),
                    WorkloadKind::Qaoa,
                    128,
                    scale.seed ^ 0xCAC4E,
                )
            } else {
                let (kind, n) = distinct[i];
                (format!("uniq-{i}"), kind, n, scale.seed + i as u64)
            };
            // Two iterations at few shots: compilation and pulse
            // generation — what duplication amortises — stay a
            // meaningful share of each job, and the second iteration
            // exercises cross-job pulse reuse along the shared
            // optimizer trajectory.
            JobSpec::new(&name, kind, n)
                .with_iterations(2)
                .with_shots(scale.shots.min(4))
                .with_seed(seed)
        })
        .collect()
}

/// Fleet compilation-cache study (beyond the paper): the same 12-job
/// batch at increasing duplication rates — the fraction of jobs that
/// are byte-for-byte re-submissions of one canonical 128-qubit QAOA —
/// dispatched at two pool widths, each cell run cold (cache off) and
/// cached. Each mode is measured three times in alternating order and
/// scored by its best wall, so the uplift column reflects the cache and
/// not allocator warm-up. `uplift` is cached-over-cold jobs/s;
/// `cold=hit bytes` is a live check that every cached job's
/// [`RunReport`] and metrics JSON are byte-identical to the cache-free
/// run — the cache's core contract, at every width.
///
/// # Panics
///
/// Panics if admission or execution fails (the fleet is known-valid).
pub fn cachefleet(scale: &ExperimentScale) -> TextTable {
    // Container timers are noisy (the same batch varies tens of percent
    // run to run); min-of-N paired measurement recovers the true walls.
    const REPS: usize = 8;
    let mut t = TextTable::new(vec![
        "duplication".into(),
        "pool threads".into(),
        "cold wall".into(),
        "cached wall".into(),
        "jobs/s cold".into(),
        "jobs/s cached".into(),
        "uplift".into(),
        "hit rate".into(),
        "cold=hit bytes".into(),
    ]);
    for dup_pct in [0usize, 50, 100] {
        let jobs = cachefleet_jobs(scale, dup_pct);
        for threads in [1usize, 4] {
            let run = |cache: bool| {
                let mut sched = BatchScheduler::new(scale.seed).with_cache(cache);
                for job in &jobs {
                    sched.submit(job.clone()).expect("fleet fits the queue");
                }
                sched.run(threads).expect("batch run succeeds")
            };
            let mut cold = run(false);
            let mut cached = run(true);
            let identical = cold.results.iter().zip(&cached.results).all(|(a, b)| {
                match (a.outcome.artifacts(), b.outcome.artifacts()) {
                    (Some(x), Some(y)) => x.report == y.report && x.metrics_json == y.metrics_json,
                    _ => false,
                }
            });
            for _ in 1..REPS {
                let c = run(false);
                if c.wall < cold.wall {
                    cold = c;
                }
                let h = run(true);
                if h.wall < cached.wall {
                    cached = h;
                }
            }
            let stats = cached
                .cache_stats
                .clone()
                .expect("cached batch reports stats");
            t.row(vec![
                format!("{dup_pct}%"),
                threads.to_string(),
                format!("{:.2?}", cold.wall),
                format!("{:.2?}", cached.wall),
                format!("{:.2}", cold.jobs_per_second()),
                format!("{:.2}", cached.jobs_per_second()),
                format!(
                    "{:.2}x",
                    cached.jobs_per_second() / cold.jobs_per_second().max(f64::MIN_POSITIVE)
                ),
                fmt_pct(stats.hit_rate().unwrap_or(0.0)),
                if identical { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    t
}

/// Resilience sweep (beyond the paper): the 64-qubit VQE under rising
/// uniform fault rates. Every run completes — graceful degradation — and
/// the columns show how much recovery work and wall time each rate costs.
///
/// # Panics
///
/// Panics if construction or execution fails (the configuration is
/// known-valid and the retry budget covers the swept rates).
pub fn resilience(scale: &ExperimentScale) -> TextTable {
    use qtenon_sim_engine::FaultPlan;

    let mut t = TextTable::new(vec![
        "fault rate".into(),
        "total".into(),
        "vs fault-free".into(),
        "faults injected".into(),
        "recoveries".into(),
        "bus retries".into(),
        "slt invalidations".into(),
        "rbq reclaims".into(),
        "ecc corrections".into(),
    ]);
    let mut base: Option<SimDuration> = None;
    for rate in [0.0, 0.001, 0.01, 0.05] {
        let plan = FaultPlan::all(rate).with_seed(scale.seed);
        let config = QtenonConfig::table4(64, CoreModel::Rocket)
            .expect("valid config")
            .with_seed(scale.seed)
            .with_faults(plan);
        let workload =
            Workload::benchmark(WorkloadKind::Vqe, 64, scale.seed).expect("valid workload");
        let mut runner = VqaRunner::new(config, workload).expect("runner builds");
        let mut optimizer = OptimizerKind::Spsa.build(scale.seed);
        let r = runner
            .run(optimizer.as_mut(), scale.iterations, scale.shots)
            .expect("run survives faults");
        let b = *base.get_or_insert(r.total);
        let res = r.resilience;
        t.row(vec![
            format!("{rate}"),
            fmt_dur(r.total),
            fmt_x(ratio(r.total, b)),
            res.faults_injected.to_string(),
            res.total_retries().to_string(),
            res.bus_retries.to_string(),
            res.slt_invalidations.to_string(),
            res.rbq_reclaims.to_string(),
            res.ecc_corrections.to_string(),
        ]);
    }
    t
}

/// Ablation beyond the paper: simulated pulse-generation time versus the
/// PGU pool width, with and without the SLT, for the 64-qubit QAOA-5
/// program (cold pass = first iteration, warm pass = steady state).
pub fn ablation(scale: &ExperimentScale) -> TextTable {
    use qtenon_controller::pgu::PguConfig;
    use qtenon_controller::pipeline::{PipelineConfig, PulsePipeline, WorkItem};

    let layout = QccLayout::for_qubits(64).expect("layout");
    let workload = Workload::qaoa(64, 5, scale.seed).expect("workload");
    let program = QtenonCompiler::new(layout)
        .compile(&workload.circuit)
        .expect("compiles");
    let items: Vec<WorkItem> = program
        .work_items(&workload.initial_params)
        .expect("items")
        .into_iter()
        .map(|(qubit, gate, data27)| WorkItem {
            qubit,
            gate,
            data27,
        })
        .collect();

    let mut t = TextTable::new(vec![
        "PGUs".into(),
        "cold pulse-gen".into(),
        "warm pulse-gen (SLT)".into(),
        "warm, SLT disabled".into(),
        "SLT benefit".into(),
    ]);
    for units in [1usize, 2, 4, 8, 16, 32] {
        let config = PipelineConfig {
            pgu: PguConfig {
                units,
                ..PguConfig::default()
            },
            ..PipelineConfig::default()
        };
        let mut pipe = PulsePipeline::new(config, layout).expect("pipeline builds");
        let (cold, _) = pipe.process(SimTime::ZERO, &items).expect("pipeline run");
        let (warm, _) = pipe.process(SimTime::ZERO, &items).expect("pipeline run");
        let mut no_slt = PulsePipeline::new(config, layout).expect("pipeline builds");
        no_slt.process(SimTime::ZERO, &items).expect("pipeline run");
        no_slt.reset();
        let (cold_again, _) = no_slt.process(SimTime::ZERO, &items).expect("pipeline run");
        t.row(vec![
            units.to_string(),
            fmt_dur(cold.total_time),
            fmt_dur(warm.total_time),
            fmt_dur(cold_again.total_time),
            fmt_x(ratio(cold_again.total_time, warm.total_time)),
        ]);
    }
    t
}

/// Breakdown (beyond the paper): phase-level latency attribution from
/// the span profiler, per workload. Every column is deterministic sim
/// time — the same rows `qtenon run --profile` prints and the
/// `profile_vqe` BENCH suite snapshots.
pub fn breakdown(scale: &ExperimentScale) -> TextTable {
    let mut t = TextTable::new(vec![
        "workload".into(),
        "phase".into(),
        "count".into(),
        "total".into(),
        "p50".into(),
        "p99".into(),
        "share".into(),
    ]);
    let n = scale.qubit_sweep.first().copied().unwrap_or(8);
    for kind in WorkloadKind::ALL {
        let report = qtenon_default(kind, n, CoreModel::Rocket, OptimizerKind::Spsa, scale);
        let total = report.phases.total_ns().max(1);
        for row in &report.phases.rows {
            t.row(vec![
                kind.name().into(),
                row.name.clone(),
                row.count.to_string(),
                fmt_dur(SimDuration::from_ns(row.total_ns)),
                format!("{} ns", row.hist.p50().unwrap_or(0)),
                format!("{} ns", row.hist.p99().unwrap_or(0)),
                fmt_pct(row.total_ns as f64 / total as f64),
            ]);
        }
    }
    t
}

/// Critical path (beyond the paper): who-blocks-whom blocking-time
/// attribution along the causal chain, Qtenon vs the decoupled
/// baseline. Each row is one provenance edge with its share of the
/// end-to-end on-path time. The decoupled baseline's chain is dominated
/// by host<->device communication edges (`host->bus` binary uploads,
/// `chip->readout` result downloads); Qtenon's shifts on-chip
/// (`bus->slt`, `slt->pgu`, `pgu->pipeline`, `pipeline->chip`) — the
/// paper's integration argument restated as causal attribution.
pub fn critpath(scale: &ExperimentScale) -> TextTable {
    let mut t = TextTable::new(vec![
        "system".into(),
        "edge".into(),
        "count".into(),
        "total".into(),
        "share".into(),
    ]);
    let n = scale.qubit_sweep.first().copied().unwrap_or(8);
    let systems = [
        (
            "baseline",
            baseline_run(WorkloadKind::Vqe, n, OptimizerKind::Spsa, scale),
        ),
        (
            "qtenon",
            qtenon_default(
                WorkloadKind::Vqe,
                n,
                CoreModel::Rocket,
                OptimizerKind::Spsa,
                scale,
            ),
        ),
    ];
    for (name, report) in &systems {
        let total = report.critpath.total_ns().max(1);
        for row in &report.critpath.rows {
            t.row(vec![
                (*name).into(),
                row.name.clone(),
                row.count.to_string(),
                fmt_dur(SimDuration::from_ns(row.total_ns)),
                fmt_pct(row.total_ns as f64 / total as f64),
            ]);
        }
    }
    t
}

/// Chaos campaign (beyond the paper): fault-injection rates × retry
/// budgets swept over a synthetic fleet — healthy, fault-injected,
/// scripted-flaky, deadline-bounded, and deliberately-panicking jobs —
/// with the containment invariants checked per cell: width-invariant
/// ledgers, bounded retries, and survivor artefacts byte-identical to
/// standalone runs.
///
/// # Panics
///
/// Panics if the campaign harness itself fails to admit or run a fleet
/// (job failures are the point and land in the cells) or if any cell
/// violates an invariant.
pub fn chaos(scale: &ExperimentScale) -> TextTable {
    use qtenon_core::chaos::ChaosCampaign;

    let campaign = ChaosCampaign::quick()
        .with_scale(scale.iterations, scale.shots.min(64))
        .with_pool_widths(vec![1, scale.threads.max(2)]);
    let report = campaign.run().expect("campaign harness is well-formed");
    assert!(
        report.all_invariants_hold(),
        "chaos campaign violated a containment invariant:\n{}",
        report.to_table()
    );

    let widths = report
        .pool_widths
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join("/");
    let mut t = TextTable::new(vec![
        "fault rate".into(),
        "retry budget".into(),
        "completed".into(),
        "timed out".into(),
        "quarantined".into(),
        "failed".into(),
        "retries".into(),
        format!("invariants (widths {widths})"),
    ]);
    for cell in &report.cells {
        t.row(vec![
            format!("{:.2}", cell.rate),
            cell.retry_budget.to_string(),
            format!("{}/{}", cell.completed, cell.jobs),
            cell.timed_out.to_string(),
            cell.quarantined.to_string(),
            cell.failed.to_string(),
            cell.retries.to_string(),
            if cell.invariants_hold() {
                "ok".into()
            } else {
                "VIOLATED".into()
            },
        ]);
    }
    t
}

/// Share of a report's on-path time spent on host<->device
/// communication edges (uploads plus result downloads).
fn comm_edge_share(report: &RunReport) -> f64 {
    let comm = report.critpath.component_ns("bus") + report.critpath.component_ns("readout");
    comm as f64 / report.critpath.total_ns().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            iterations: 1,
            shots: 20,
            qubit_sweep: vec![8],
            scaling_sweep: vec![8, 16],
            seed: 3,
            threads: 1,
        }
    }

    #[test]
    fn fig1_shows_quantum_minority() {
        let t = fig1(&tiny());
        assert_eq!(t.len(), 3);
        for row in t.rows() {
            let q: f64 = row[2].trim_end_matches('%').parse().unwrap();
            assert!(q < 50.0, "quantum share {q}% should be a minority");
        }
    }

    #[test]
    fn table1_shows_order_of_magnitude_gaps() {
        let t = table1(&tiny());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn table2_matches_paper_total() {
        let t = table2();
        let total_row = t.rows().last().unwrap();
        assert!(total_row[2].contains("5.66 MB"));
    }

    #[test]
    fn speedup_table_has_expected_rows() {
        let t = fig11_12(&tiny(), OptimizerKind::Spsa);
        assert_eq!(t.len(), 3); // 3 workloads × 1 size
        for row in t.rows() {
            let e2e: f64 = row[4].trim_end_matches('x').parse().unwrap();
            assert!(e2e > 1.0, "Qtenon should win end-to-end: {e2e}");
        }
    }

    #[test]
    fn critpath_contrasts_comm_vs_onchip() {
        let scale = tiny();
        let baseline = baseline_run(WorkloadKind::Vqe, 8, OptimizerKind::Spsa, &scale);
        let qtenon = qtenon_default(
            WorkloadKind::Vqe,
            8,
            CoreModel::Rocket,
            OptimizerKind::Spsa,
            &scale,
        );
        let b = comm_edge_share(&baseline);
        let q = comm_edge_share(&qtenon);
        // The decoupled baseline's causal chain is dominated by
        // host<->device communication; Qtenon's shifts on-chip.
        assert!(b > 0.5, "baseline comm share {b}");
        assert!(q < b, "qtenon comm share {q} vs baseline {b}");
        assert!(
            qtenon.critpath.total_ns() > 0,
            "qtenon records a non-empty causal chain"
        );
    }

    #[test]
    fn critpath_table_lists_both_systems() {
        let t = critpath(&tiny());
        let systems: Vec<&str> = t.rows().iter().map(|r| r[0].as_str()).collect();
        assert!(systems.contains(&"baseline"));
        assert!(systems.contains(&"qtenon"));
        // Shares within one system sum to ~100%.
        for name in ["baseline", "qtenon"] {
            let sum: f64 = t
                .rows()
                .iter()
                .filter(|r| r[0] == name)
                .map(|r| r[4].trim_end_matches('%').parse::<f64>().unwrap())
                .sum();
            assert!((sum - 100.0).abs() < 1.0, "{name} shares sum to {sum}");
        }
    }

    #[test]
    fn fig13_orders_systems() {
        let mut scale = tiny();
        scale.shots = 50;
        // fig13 runs at 64 qubits regardless of sweep.
        let t = fig13(&scale);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn fig17_scales_monotonically() {
        let t = fig17(&tiny());
        assert_eq!(t.len(), 4); // 2 workloads × 2 sizes
    }

    #[test]
    fn chaos_campaign_table_reports_every_cell_clean() {
        let t = chaos(&tiny());
        assert_eq!(t.len(), 6); // 3 rates × 2 budgets
        for row in t.rows() {
            assert_eq!(row.last().unwrap(), "ok");
        }
    }

    #[test]
    fn resilience_sweep_completes_and_activity_rises_with_rate() {
        let t = resilience(&tiny());
        assert_eq!(t.len(), 4);
        let injected: Vec<u64> = t.rows().iter().map(|r| r[3].parse().unwrap()).collect();
        // Zero rate injects nothing; the top rate injects the most.
        assert_eq!(injected[0], 0);
        assert!(injected.last().unwrap() > &0);
        assert!(injected.last().unwrap() >= &injected[1]);
    }

    #[test]
    fn parallel_study_is_bitwise_identical_per_cell() {
        let mut scale = tiny();
        // Enough shots for genuinely multi-shard plans at 4 threads.
        scale.shots = 120;
        let t = parallel(&scale);
        assert_eq!(t.len(), 4); // 3 workloads + concurrent-dispatch row
        for row in t.rows() {
            assert_eq!(row[4], "yes", "determinism violated in {row:?}");
        }
    }

    #[test]
    fn experiments_honor_the_thread_knob_without_changing_results() {
        let mut serial = tiny();
        serial.shots = 100;
        let sharded = serial.clone().with_threads(4);
        let a = qtenon_default(
            WorkloadKind::Qaoa,
            8,
            CoreModel::Rocket,
            OptimizerKind::Spsa,
            &serial,
        );
        let b = qtenon_default(
            WorkloadKind::Qaoa,
            8,
            CoreModel::Rocket,
            OptimizerKind::Spsa,
            &sharded,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn telemetry_snapshot_spans_all_namespaces_and_parses() {
        let snapshot = telemetry_snapshot(&tiny());
        assert!(snapshot.len() >= 20, "only {} metrics", snapshot.len());
        for ns in ["mem.", "controller.", "core."] {
            assert!(
                snapshot.paths().iter().any(|p| p.starts_with(ns)),
                "no {ns}* metrics"
            );
        }
        // Every Prometheus line is `name value` with a numeric value.
        for line in snapshot.to_prometheus().lines() {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
        }
    }
}
