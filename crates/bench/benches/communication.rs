//! Benchmarks behind Fig. 14 and Table 1's communication rows: the raw
//! data paths (RoCC register path, TileLink bulk path, baseline Ethernet)
//! and the per-instruction communication mix of full runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qtenon_baseline::NetworkModel;
use qtenon_bench::experiments::{qtenon_default, ExperimentScale, OptimizerKind};
use qtenon_controller::{BusConfig, TileLinkBus};
use qtenon_core::config::CoreModel;
use qtenon_sim_engine::SimTime;
use qtenon_workloads::WorkloadKind;

fn raw_data_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_raw_paths");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for bytes in [8u64, 64, 1024, 65536] {
        group.bench_with_input(BenchmarkId::new("tilelink", bytes), &bytes, |b, &bytes| {
            b.iter(|| {
                let mut bus = TileLinkBus::new(BusConfig::default());
                black_box(bus.schedule_transfer(SimTime::ZERO, bytes))
            })
        });
        group.bench_with_input(BenchmarkId::new("ethernet", bytes), &bytes, |b, &bytes| {
            let net = NetworkModel::default();
            b.iter(|| black_box(net.message_time(bytes)))
        });
    }
    group.finish();
}

fn comm_mix_per_workload(c: &mut Criterion) {
    let scale = ExperimentScale {
        iterations: 1,
        shots: 50,
        qubit_sweep: vec![16],
        scaling_sweep: vec![16],
        seed: 42,
        threads: 1,
    };
    let mut group = c.benchmark_group("fig14_comm_mix");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for kind in WorkloadKind::ALL {
        for opt in [OptimizerKind::Gd, OptimizerKind::Spsa] {
            group.bench_function(format!("{kind}_{}", opt.name()), |b| {
                b.iter(|| {
                    let report = qtenon_default(kind, 16, CoreModel::BoomLarge, opt, &scale);
                    black_box((report.comm.shares(), report.comm.total()))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, raw_data_paths, comm_mix_per_workload);
criterion_main!(benches);
