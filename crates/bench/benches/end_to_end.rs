//! Benchmarks behind Figs. 11 and 12: end-to-end VQA execution on Qtenon
//! (both cores) and on the decoupled baseline, per workload.
//!
//! The *measured* quantity is simulator wall time, but each iteration
//! performs one complete system run whose reported `RunReport` carries the
//! simulated-time series the figures plot; the `experiments` binary prints
//! those. Here Criterion tracks the cost of regenerating each series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qtenon_bench::experiments::{baseline_run, qtenon_default, ExperimentScale, OptimizerKind};
use qtenon_core::config::CoreModel;
use qtenon_workloads::WorkloadKind;

fn bench_scale() -> ExperimentScale {
    ExperimentScale {
        iterations: 1,
        shots: 50,
        qubit_sweep: vec![8, 16],
        scaling_sweep: vec![8],
        seed: 42,
        threads: 1,
    }
}

fn fig11_12(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig11_12_end_to_end");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for kind in WorkloadKind::ALL {
        for &n in &scale.qubit_sweep {
            group.bench_with_input(
                BenchmarkId::new(format!("qtenon_rocket_{kind}"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        black_box(qtenon_default(
                            kind,
                            n,
                            CoreModel::Rocket,
                            OptimizerKind::Spsa,
                            &scale,
                        ))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("qtenon_boom_{kind}"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        black_box(qtenon_default(
                            kind,
                            n,
                            CoreModel::BoomLarge,
                            OptimizerKind::Spsa,
                            &scale,
                        ))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("baseline_{kind}"), n),
                &n,
                |b, &n| b.iter(|| black_box(baseline_run(kind, n, OptimizerKind::Spsa, &scale))),
            );
        }
    }
    group.finish();
}

fn gd_vs_spsa(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig11_vs_12_optimizers");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for opt in [OptimizerKind::Gd, OptimizerKind::Spsa] {
        group.bench_function(format!("qaoa16_{}", opt.name()), |b| {
            b.iter(|| {
                black_box(qtenon_default(
                    WorkloadKind::Qaoa,
                    16,
                    CoreModel::Rocket,
                    opt,
                    &scale,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig11_12, gd_vs_spsa);
criterion_main!(benches);
