//! Per-kernel-class wall-clock for the statevector kernel layer.
//!
//! Measures ns/amplitude-pair at 16 qubits (65 536 amplitudes, the
//! largest width `Simulator::auto` still runs exactly in a bench budget)
//! for each specialized kernel against its scanning reference, plus a
//! fused five-kernel run against the equivalent sequential sweeps — the
//! criterion comparison IS the fusion speedup, since fused and unfused
//! execution are bitwise identical (DESIGN.md §13).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qtenon_quantum::fuse::{plan, ExecPlan, PlanOp};
use qtenon_quantum::kernels::{mat_ry, mat_rz, Kernel1Q};
use qtenon_quantum::{Circuit, FuseStats, StateVector};

const N_QUBITS: u32 = 16;
const TARGET: u32 = 7; // mid-register qubit: strided, cache-unfriendly

/// A non-trivial normalized state to sweep: a layer of RY rotations.
fn loaded_state() -> StateVector {
    let mut c = Circuit::new(N_QUBITS);
    for q in 0..N_QUBITS {
        c.ry(q, 0.3 + 0.1 * f64::from(q));
    }
    let mut sv = StateVector::new(N_QUBITS).expect("state");
    sv.apply_circuit(&c).expect("native circuit");
    sv
}

fn single_kernels(c: &mut Criterion) {
    let base = loaded_state();
    let mut group = c.benchmark_group("gate_kernels");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.bench_function("diag_rz", |b| {
        b.iter(|| {
            let mut sv = base.clone();
            sv.apply_rz(TARGET, 0.7);
            black_box(sv.amplitude(1))
        })
    });
    group.bench_function("general_ry", |b| {
        b.iter(|| {
            let mut sv = base.clone();
            sv.apply_ry(TARGET, 0.7);
            black_box(sv.amplitude(1))
        })
    });
    group.bench_function("general_reference_ry", |b| {
        b.iter(|| {
            let mut sv = base.clone();
            sv.apply_matrix2_reference(TARGET, mat_ry(0.7));
            black_box(sv.amplitude(1))
        })
    });
    group.bench_function("cz", |b| {
        b.iter(|| {
            let mut sv = base.clone();
            sv.apply_cz(TARGET, TARGET + 1);
            black_box(sv.amplitude(1))
        })
    });
    group.bench_function("cz_reference", |b| {
        b.iter(|| {
            let mut sv = base.clone();
            sv.apply_cz_reference(TARGET, TARGET + 1);
            black_box(sv.amplitude(1))
        })
    });
    group.finish();
}

fn fused_runs(c: &mut Criterion) {
    // The shape QAOA leaves on a CX target between two CZs: five
    // same-qubit rotations, one memory sweep fused vs five unfused.
    let kernels: Vec<Kernel1Q> = [
        mat_rz(std::f64::consts::PI),
        mat_ry(std::f64::consts::FRAC_PI_2),
        mat_rz(0.37),
        mat_rz(std::f64::consts::PI),
        mat_ry(std::f64::consts::FRAC_PI_2),
    ]
    .iter()
    .map(|m| Kernel1Q::from_matrix(*m))
    .collect();
    let fused_plan = ExecPlan {
        ops: vec![PlanOp::Run {
            qubit: TARGET,
            kernels: kernels.clone(),
        }],
        stats: FuseStats::default(),
    };
    let sequential_plan = ExecPlan {
        ops: kernels
            .iter()
            .map(|k| PlanOp::Run {
                qubit: TARGET,
                kernels: vec![*k],
            })
            .collect(),
        stats: FuseStats::default(),
    };
    let base = loaded_state();
    let mut group = c.benchmark_group("gate_kernel_fusion");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.bench_function("five_rotation_run_fused", |b| {
        b.iter(|| {
            let mut sv = base.clone();
            sv.apply_plan(&fused_plan);
            black_box(sv.amplitude(1))
        })
    });
    group.bench_function("five_rotation_run_sequential", |b| {
        b.iter(|| {
            let mut sv = base.clone();
            sv.apply_plan(&sequential_plan);
            black_box(sv.amplitude(1))
        })
    });
    group.finish();
}

fn whole_circuit_fusion(c: &mut Criterion) {
    // End-to-end plan execution on the transpiled 16q QAOA ansatz,
    // fusion on vs off — the circuit the `experiments kernels` study
    // times.
    let workload =
        qtenon_workloads::Workload::benchmark(qtenon_workloads::WorkloadKind::Qaoa, N_QUBITS, 42)
            .expect("workload");
    let circuit = workload
        .circuit
        .bind(&workload.initial_params)
        .expect("bound circuit");
    let mut group = c.benchmark_group("gate_kernel_circuit");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for fuse in [true, false] {
        let p = plan(&circuit, fuse).expect("plan");
        group.bench_function(if fuse { "qaoa_fused" } else { "qaoa_unfused" }, |b| {
            b.iter(|| {
                let mut sv = StateVector::new(N_QUBITS).expect("state");
                sv.apply_plan(&p);
                black_box(sv.amplitude(1))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, single_kernels, fused_runs, whole_circuit_fusion);
criterion_main!(benches);
