//! Benchmarks behind Fig. 17: Qtenon execution as qubit count grows, plus
//! the mean-field chip model that makes 320-qubit simulation tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qtenon_bench::experiments::{qtenon_default, ExperimentScale, OptimizerKind};
use qtenon_core::config::CoreModel;
use qtenon_quantum::sim::MeanFieldState;
use qtenon_workloads::{Workload, WorkloadKind};

fn fig17_system_sweep(c: &mut Criterion) {
    let scale = ExperimentScale {
        iterations: 1,
        shots: 50,
        qubit_sweep: vec![],
        scaling_sweep: vec![],
        seed: 42,
        threads: 1,
    };
    let mut group = c.benchmark_group("fig17_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [16u32, 64, 128] {
        group.bench_with_input(BenchmarkId::new("qaoa", n), &n, |b, &n| {
            b.iter(|| {
                black_box(qtenon_default(
                    WorkloadKind::Qaoa,
                    n,
                    CoreModel::BoomLarge,
                    OptimizerKind::Spsa,
                    &scale,
                ))
            })
        });
    }
    group.finish();
}

fn fig17_chip_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_mean_field_chip");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [64u32, 320] {
        let w = Workload::qaoa(n, 5, 1).unwrap();
        let bound = w.circuit.bind(&w.initial_params).unwrap();
        group.bench_with_input(BenchmarkId::new("apply_circuit", n), &n, |b, &n| {
            b.iter(|| {
                let mut mf = MeanFieldState::new(n);
                mf.apply_circuit(&bound).unwrap();
                black_box(mf.expectation_z(0))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig17_system_sweep, fig17_chip_model);
criterion_main!(benches);
