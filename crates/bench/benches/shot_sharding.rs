//! Serial vs shot-sharded wall-clock for the parallel execution engine.
//!
//! Measures `q_run` directly at a shot count large enough to amortise
//! thread spawns, plus the full 64-qubit VQA evaluation loop, at 1 and 4
//! worker threads. Results are bitwise identical across thread counts —
//! only the wall clock moves — so the criterion comparison IS the
//! speedup quoted in the experiments `parallel` table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qtenon_bench::experiments::{qtenon_default, ExperimentScale, OptimizerKind};
use qtenon_core::config::{CoreModel, QtenonConfig};
use qtenon_core::system::QtenonSystem;
use qtenon_sim_engine::SimTime;
use qtenon_workloads::{Workload, WorkloadKind};

fn scale(threads: usize) -> ExperimentScale {
    ExperimentScale {
        iterations: 1,
        shots: 2000,
        qubit_sweep: vec![64],
        scaling_sweep: vec![64],
        seed: 42,
        threads,
    }
}

fn q_run_sharding(c: &mut Criterion) {
    let workload = Workload::benchmark(WorkloadKind::Vqe, 64, 42).expect("workload");
    let circuit = workload
        .circuit
        .bind(&workload.initial_params)
        .expect("bound circuit");
    let mut group = c.benchmark_group("q_run_sharding");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for threads in [1usize, 4] {
        let config = QtenonConfig::table4(64, CoreModel::Rocket)
            .expect("config")
            .with_threads(threads);
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                let mut system = QtenonSystem::new(config).expect("system");
                let outcome = system.q_run(SimTime::ZERO, &circuit, 2000).expect("run");
                black_box(outcome.shots.len())
            })
        });
    }
    group.finish();
}

fn vqa_sweep_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("vqa_64q_sharding");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for threads in [1usize, 4] {
        let scale = scale(threads);
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                black_box(qtenon_default(
                    WorkloadKind::Vqe,
                    64,
                    CoreModel::Rocket,
                    OptimizerKind::Spsa,
                    &scale,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, q_run_sharding, vqa_sweep_sharding);
criterion_main!(benches);
