//! Benchmarks behind Figs. 16a/16b and Fig. 15: synchronisation modes,
//! transmission scheduling, and host computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qtenon_bench::experiments::{qtenon_run, ExperimentScale, OptimizerKind};
use qtenon_core::config::{CoreModel, SyncMode, TransmissionPolicy};
use qtenon_core::host::HostCoreModel;
use qtenon_sim_engine::{OpClass, OpCounter};
use qtenon_workloads::WorkloadKind;

fn scale() -> ExperimentScale {
    ExperimentScale {
        iterations: 1,
        shots: 100,
        qubit_sweep: vec![16],
        scaling_sweep: vec![16],
        seed: 42,
        threads: 1,
    }
}

fn fig16a_sync_modes(c: &mut Criterion) {
    let scale = scale();
    let mut group = c.benchmark_group("fig16a_sync");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (name, sync) in [
        ("fence", SyncMode::Fence),
        ("fine_grained", SyncMode::FineGrained),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(qtenon_run(
                    WorkloadKind::Vqe,
                    16,
                    CoreModel::Rocket,
                    OptimizerKind::Spsa,
                    &scale,
                    sync,
                    TransmissionPolicy::Batched,
                ))
            })
        });
    }
    group.finish();
}

fn fig16b_scheduling(c: &mut Criterion) {
    let scale = scale();
    let mut group = c.benchmark_group("fig16b_scheduling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (name, policy) in [
        ("immediate", TransmissionPolicy::Immediate),
        ("batched", TransmissionPolicy::Batched),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(qtenon_run(
                    WorkloadKind::Qaoa,
                    16,
                    CoreModel::Rocket,
                    OptimizerKind::Spsa,
                    &scale,
                    SyncMode::FineGrained,
                    policy,
                ))
            })
        });
    }
    group.finish();
}

fn fig15_host_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_host_models");
    group.sample_size(50);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let mut ops = OpCounter::new();
    ops.record(OpClass::IntAlu, 100_000);
    ops.record(OpClass::FpAlu, 50_000);
    ops.record(OpClass::Mem, 60_000);
    ops.record(OpClass::Branch, 20_000);
    for core in [CoreModel::Rocket, CoreModel::BoomLarge] {
        let model = HostCoreModel::new(core);
        group.bench_function(core.name(), |b| {
            b.iter(|| black_box(model.duration_for(&ops)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    fig16a_sync_modes,
    fig16b_scheduling,
    fig15_host_models
);
criterion_main!(benches);
