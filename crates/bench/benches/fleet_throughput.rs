//! Benchmarks for the multi-job batch scheduler: the same mixed fleet
//! dispatched at increasing pool widths, plus the scheduler's own
//! admission overhead (submit + priority ordering, no execution).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qtenon_core::jobs::{BatchScheduler, JobOptimizer, JobSpec};
use qtenon_workloads::WorkloadKind;

fn fleet_jobs(n_jobs: usize) -> Vec<JobSpec> {
    let kinds = [WorkloadKind::Vqe, WorkloadKind::Qaoa, WorkloadKind::Qnn];
    (0..n_jobs)
        .map(|i| {
            let mut spec = JobSpec::new(&format!("job-{i}"), kinds[i % kinds.len()], 8)
                .with_iterations(1)
                .with_shots(50)
                .with_priority((i % 3) as u8);
            if i % 2 == 1 {
                spec = spec.with_optimizer(JobOptimizer::Gd);
            }
            spec
        })
        .collect()
}

/// Six mixed jobs through the whole scheduler at pool widths 1/2/4: the
/// fleet analogue of the shot-sharding bench — artefacts are identical
/// at every width, only the wall clock moves.
fn fleet_pool_sweep(c: &mut Criterion) {
    let jobs = fleet_jobs(6);
    let mut group = c.benchmark_group("fleet_pool_width");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut sched = BatchScheduler::new(42);
                    for job in &jobs {
                        sched.submit(job.clone()).unwrap();
                    }
                    let batch = sched.run(threads).unwrap();
                    assert_eq!(batch.completed(), jobs.len());
                    black_box(batch.wall)
                })
            },
        );
    }
    group.finish();
}

/// Pure scheduling overhead: admit 64 jobs into the bounded queue and
/// compute the priority order, without running anything.
fn admission_overhead(c: &mut Criterion) {
    let jobs = fleet_jobs(64);
    let mut group = c.benchmark_group("fleet_admission");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("submit64_order", |b| {
        b.iter(|| {
            let mut sched = BatchScheduler::with_capacity(42, 64);
            for job in &jobs {
                sched.submit(job.clone()).unwrap();
            }
            black_box(sched.schedule_order())
        })
    });
    group.finish();
}

criterion_group!(benches, fleet_pool_sweep, admission_overhead);
criterion_main!(benches);
