//! Benchmarks behind Fig. 1 and Fig. 13: time-share breakdowns of the
//! decoupled baseline and of the three Qtenon configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qtenon_bench::experiments::{baseline_run, qtenon_run, ExperimentScale, OptimizerKind};
use qtenon_core::config::{CoreModel, SyncMode, TransmissionPolicy};
use qtenon_workloads::WorkloadKind;

fn scale() -> ExperimentScale {
    ExperimentScale {
        iterations: 1,
        shots: 50,
        qubit_sweep: vec![16],
        scaling_sweep: vec![16],
        seed: 42,
        threads: 1,
    }
}

fn fig1_baseline_shares(c: &mut Criterion) {
    let scale = scale();
    let mut group = c.benchmark_group("fig1_baseline_breakdown");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for kind in WorkloadKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let report = baseline_run(kind, 16, OptimizerKind::Spsa, &scale);
                black_box(report.exposed_shares())
            })
        });
    }
    group.finish();
}

fn fig13_three_systems(c: &mut Criterion) {
    let scale = scale();
    let mut group = c.benchmark_group("fig13_vqe_breakdown");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("baseline", |b| {
        b.iter(|| {
            black_box(baseline_run(
                WorkloadKind::Vqe,
                16,
                OptimizerKind::Spsa,
                &scale,
            ))
        })
    });
    group.bench_function("qtenon_hw_only", |b| {
        b.iter(|| {
            black_box(qtenon_run(
                WorkloadKind::Vqe,
                16,
                CoreModel::Rocket,
                OptimizerKind::Spsa,
                &scale,
                SyncMode::Fence,
                TransmissionPolicy::Immediate,
            ))
        })
    });
    group.bench_function("qtenon_full", |b| {
        b.iter(|| {
            black_box(qtenon_run(
                WorkloadKind::Vqe,
                16,
                CoreModel::Rocket,
                OptimizerKind::Spsa,
                &scale,
                SyncMode::FineGrained,
                TransmissionPolicy::Batched,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, fig1_baseline_shares, fig13_three_systems);
criterion_main!(benches);
