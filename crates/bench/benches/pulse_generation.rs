//! Benchmarks behind Table 5: pulse generation through the four-stage
//! pipeline, cold (every pulse computed) vs warm (SLT reuse), and the
//! baseline's regenerate-everything FPGA model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qtenon_compiler::{BaselineCompiler, QtenonCompiler};
use qtenon_controller::pipeline::{PipelineConfig, PulsePipeline, WorkItem};
use qtenon_isa::QccLayout;
use qtenon_sim_engine::SimTime;
use qtenon_workloads::{Workload, WorkloadKind};

fn work_items(kind: WorkloadKind, n: u32) -> (QccLayout, Vec<WorkItem>) {
    let layout = QccLayout::for_qubits(n).unwrap();
    let w = Workload::benchmark(kind, n, 42).unwrap();
    let program = QtenonCompiler::new(layout).compile(&w.circuit).unwrap();
    let items: Vec<WorkItem> = program
        .work_items(&w.initial_params)
        .unwrap()
        .into_iter()
        .map(|(qubit, gate, data27)| WorkItem {
            qubit,
            gate,
            data27,
        })
        .collect();
    (layout, items)
}

fn table5_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_pulse_pipeline");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for kind in WorkloadKind::ALL {
        let (layout, items) = work_items(kind, 16);
        group.bench_with_input(BenchmarkId::new("cold", kind.name()), &items, |b, items| {
            b.iter(|| {
                let mut pipe = PulsePipeline::new(PipelineConfig::default(), layout).unwrap();
                black_box(pipe.process(SimTime::ZERO, items).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("warm", kind.name()), &items, |b, items| {
            // Pre-warm once; each measured pass is all-hits.
            let mut pipe = PulsePipeline::new(PipelineConfig::default(), layout).unwrap();
            pipe.process(SimTime::ZERO, items).unwrap();
            b.iter(|| black_box(pipe.process(SimTime::ZERO, items).unwrap()))
        });
    }
    group.finish();
}

fn table5_baseline_jit(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_baseline_recompile");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for kind in WorkloadKind::ALL {
        let w = Workload::benchmark(kind, 16, 42).unwrap();
        let bound = w.circuit.bind(&w.initial_params).unwrap();
        group.bench_function(kind.name(), |b| {
            let jit = BaselineCompiler::default();
            b.iter(|| black_box(jit.compile(&bound)))
        });
    }
    group.finish();
}

criterion_group!(benches, table5_pipeline, table5_baseline_jit);
criterion_main!(benches);
