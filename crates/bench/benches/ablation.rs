//! Ablation benches beyond the paper: design-parameter sweeps DESIGN.md
//! calls out — PGU pool width, SLT presence, transmission interval, and
//! reorder-buffer depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qtenon_compiler::QtenonCompiler;
use qtenon_controller::pgu::PguConfig;
use qtenon_controller::pipeline::{PipelineConfig, PulsePipeline, WorkItem};
use qtenon_controller::{BusConfig, TileLinkBus};
use qtenon_core::config::TransmissionPolicy;
use qtenon_core::schedule::TransmissionPlan;
use qtenon_isa::QccLayout;
use qtenon_sim_engine::{SimDuration, SimTime};
use qtenon_workloads::{Workload, WorkloadKind};

fn qaoa_items(n: u32) -> (QccLayout, Vec<WorkItem>) {
    let layout = QccLayout::for_qubits(n).unwrap();
    let w = Workload::benchmark(WorkloadKind::Qaoa, n, 42).unwrap();
    let program = QtenonCompiler::new(layout).compile(&w.circuit).unwrap();
    let items = program
        .work_items(&w.initial_params)
        .unwrap()
        .into_iter()
        .map(|(qubit, gate, data27)| WorkItem {
            qubit,
            gate,
            data27,
        })
        .collect();
    (layout, items)
}

/// Sweep the PGU pool width: the paper fixes 8; how sensitive is cold
/// pulse generation to that choice?
fn pgu_count_sweep(c: &mut Criterion) {
    let (layout, items) = qaoa_items(16);
    let mut group = c.benchmark_group("ablation_pgu_count");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for units in [1usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(units), &units, |b, &units| {
            let config = PipelineConfig {
                pgu: PguConfig {
                    units,
                    ..PguConfig::default()
                },
                ..PipelineConfig::default()
            };
            b.iter(|| {
                let mut pipe = PulsePipeline::new(config, layout).unwrap();
                let (report, _) = pipe.process(SimTime::ZERO, &items).unwrap();
                black_box(report.total_time)
            })
        });
    }
    group.finish();
}

/// SLT on/off: process the same program twice with a warm SLT vs
/// resetting between passes (the no-reuse baseline behaviour).
fn slt_reuse_sweep(c: &mut Criterion) {
    let (layout, items) = qaoa_items(16);
    let mut group = c.benchmark_group("ablation_slt_reuse");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("with_slt", |b| {
        b.iter(|| {
            let mut pipe = PulsePipeline::new(PipelineConfig::default(), layout).unwrap();
            pipe.process(SimTime::ZERO, &items).unwrap();
            let (warm, _) = pipe.process(SimTime::ZERO, &items).unwrap();
            black_box(warm.total_time)
        })
    });
    group.bench_function("without_slt", |b| {
        b.iter(|| {
            let mut pipe = PulsePipeline::new(PipelineConfig::default(), layout).unwrap();
            pipe.process(SimTime::ZERO, &items).unwrap();
            pipe.reset(); // discard cached pulses: every pass is cold
            let (cold, _) = pipe.process(SimTime::ZERO, &items).unwrap();
            black_box(cold.total_time)
        })
    });
    group.finish();
}

/// Transmission-interval sweep around Algorithm 1's ⌊B/N⌋ choice.
fn batching_interval_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_batch_interval");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (name, policy, width) in [
        ("immediate", TransmissionPolicy::Immediate, 256u32),
        ("k4_paper", TransmissionPolicy::Batched, 256),
        ("k8_wider_bus", TransmissionPolicy::Batched, 512),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let plan = TransmissionPlan::new(policy, 64, width, 500);
                // Simulated bus time for the whole plan.
                let mut bus = TileLinkBus::new(BusConfig::default());
                let mut t = SimTime::ZERO;
                for batch in plan.batches() {
                    t = bus.schedule_transfer(t, batch.bytes).complete;
                }
                black_box(t.saturating_since(SimTime::ZERO))
            })
        });
    }
    group.finish();
}

/// Reorder-buffer (tag) depth: how outstanding-transaction limits shape
/// bulk-transfer throughput.
fn rbq_depth_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rbq_depth");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for tags in [1usize, 4, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(tags), &tags, |b, &tags| {
            b.iter(|| {
                let mut bus = TileLinkBus::new(BusConfig {
                    max_outstanding: tags,
                    ..BusConfig::default()
                });
                let mut total = SimDuration::ZERO;
                for _ in 0..64 {
                    let t = bus.schedule_transfer(SimTime::ZERO, 64);
                    total = total.max(t.complete.saturating_since(SimTime::ZERO));
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    pgu_count_sweep,
    slt_reuse_sweep,
    batching_interval_sweep,
    rbq_depth_sweep
);
criterion_main!(benches);
