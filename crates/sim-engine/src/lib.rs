//! Discrete-event simulation kernel for the Qtenon reproduction.
//!
//! This crate is the timing substrate every other Qtenon crate builds on. It
//! provides:
//!
//! - [`SimTime`] and [`SimDuration`]: picosecond-resolution simulation time,
//!   so that a 2 GHz DAC (0.5 ns period) and a 1 GHz host core can coexist
//!   without rounding error;
//! - [`ClockDomain`]: frequency-aware cycle/time conversion for the paper's
//!   three clock domains (1 GHz host, 200 MHz controller SRAM, 2 GHz DAC);
//! - [`EventQueue`]: a deterministic priority queue of timestamped events
//!   with stable FIFO ordering among simultaneous events;
//! - [`stats`]: counters and tallies used by the component models;
//! - [`metrics`]: the unified telemetry layer — a hierarchical registry
//!   of counters, gauges, and log-bucketed latency histograms with JSON
//!   and Prometheus exporters;
//! - [`opcount`]: the abstract-operation counter that drives the host core
//!   cost models;
//! - [`profile`]: span-based latency attribution — deterministic
//!   sim-time phase spans plus explicitly unstable wall-clock scopes,
//!   distilled into the `profile.*` metrics namespace and per-run
//!   [`PhaseTable`]s;
//! - [`critpath`]: causal critical-path analysis — a provenance arena of
//!   who-enabled-whom events walked backwards into per-edge blocking-time
//!   attribution (the `critpath.edge.*` namespace and per-run
//!   [`CritPathReport`]s);
//! - [`faults`]: deterministic, seeded fault injection ([`FaultPlan`] /
//!   [`FaultInjector`]) used by the component models to exercise their
//!   retry/degradation paths reproducibly;
//! - [`rng`]: the engine's splittable SplitMix64 generator and the
//!   [`stream_seed`] derivation that gives every shot (and every fault
//!   site) an independent, thread-count-invariant random stream.
//!
//! # Examples
//!
//! ```
//! use qtenon_sim_engine::{ClockDomain, EventQueue, SimTime};
//!
//! let host = ClockDomain::from_ghz(1.0);
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::ZERO + host.cycles(3), "pulse ready");
//! queue.push(SimTime::ZERO + host.cycles(1), "request issued");
//! assert_eq!(queue.pop().unwrap().1, "request issued");
//! ```

pub mod clock;
pub mod critpath;
pub mod event;
pub mod faults;
pub mod metrics;
pub mod opcount;
pub mod profile;
pub mod rng;
pub mod stats;
pub mod time;

pub use clock::ClockDomain;
pub use critpath::{CritKind, CritPathReport, CritPathRow, CritPathTracker, EdgeId};
pub use event::EventQueue;
pub use faults::{FaultInjector, FaultPlan, FaultSite, FaultSpecError};
pub use metrics::{Histogram, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use opcount::{OpClass, OpCounter};
pub use profile::{PhaseId, PhaseRow, PhaseTable, Profiler};
pub use rng::{splitmix64, stream_seed, unit};
pub use stats::{Counter, Tally};
pub use time::{SimDuration, SimTime};
