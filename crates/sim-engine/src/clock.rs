//! Clock domains.
//!
//! Qtenon spans three clock domains: the 1 GHz host/controller logic, the
//! 200 MHz controller SRAM, and the 2 GHz DACs. [`ClockDomain`] converts
//! between cycle counts and [`SimDuration`]s for a given frequency.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A fixed-frequency clock domain.
///
/// # Examples
///
/// ```
/// use qtenon_sim_engine::{ClockDomain, SimDuration};
///
/// let sram = ClockDomain::from_mhz(200.0);
/// assert_eq!(sram.period(), SimDuration::from_ns(5));
/// assert_eq!(sram.cycles(4), SimDuration::from_ns(20));
/// assert_eq!(sram.cycles_in(SimDuration::from_ns(12)), 3); // rounds up
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClockDomain {
    period_ps: u64,
}

impl ClockDomain {
    /// Creates a clock domain with the given period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn from_period(period: SimDuration) -> Self {
        assert!(!period.is_zero(), "clock period must be non-zero");
        ClockDomain {
            period_ps: period.as_ps(),
        }
    }

    /// Creates a clock domain from a frequency in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive or yields a sub-picosecond
    /// period.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz > 0.0, "frequency must be positive");
        let period_ps = (1_000.0 / ghz).round() as u64;
        assert!(period_ps > 0, "frequency too high for ps resolution");
        ClockDomain { period_ps }
    }

    /// Creates a clock domain from a frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not strictly positive.
    pub fn from_mhz(mhz: f64) -> Self {
        Self::from_ghz(mhz / 1_000.0)
    }

    /// The duration of one cycle.
    pub fn period(self) -> SimDuration {
        SimDuration::from_ps(self.period_ps)
    }

    /// The frequency in GHz.
    pub fn freq_ghz(self) -> f64 {
        1_000.0 / self.period_ps as f64
    }

    /// The duration of `n` cycles.
    pub fn cycles(self, n: u64) -> SimDuration {
        SimDuration::from_ps(self.period_ps * n)
    }

    /// The number of whole cycles needed to cover `d` (rounds up).
    pub fn cycles_in(self, d: SimDuration) -> u64 {
        d.as_ps().div_ceil(self.period_ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_and_period_agree() {
        let host = ClockDomain::from_ghz(1.0);
        assert_eq!(host.period(), SimDuration::from_ns(1));
        assert!((host.freq_ghz() - 1.0).abs() < 1e-12);

        let dac = ClockDomain::from_ghz(2.0);
        assert_eq!(dac.period(), SimDuration::from_ps(500));
    }

    #[test]
    fn mhz_constructor() {
        let sram = ClockDomain::from_mhz(200.0);
        assert_eq!(sram.period(), SimDuration::from_ns(5));
    }

    #[test]
    fn cycles_round_trip() {
        let c = ClockDomain::from_ghz(1.0);
        assert_eq!(c.cycles(1_000), SimDuration::from_us(1));
        assert_eq!(c.cycles_in(SimDuration::from_us(1)), 1_000);
    }

    #[test]
    fn cycles_in_rounds_up() {
        let c = ClockDomain::from_mhz(200.0); // 5 ns period
        assert_eq!(c.cycles_in(SimDuration::from_ns(1)), 1);
        assert_eq!(c.cycles_in(SimDuration::from_ns(5)), 1);
        assert_eq!(c.cycles_in(SimDuration::from_ns(6)), 2);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_panics() {
        let _ = ClockDomain::from_ghz(0.0);
    }
}
