//! Causal critical-path analysis.
//!
//! The `profile` module answers *where time was spent*; this module
//! answers *which component was on the blocking chain*. A phase can be
//! long yet fully overlapped with other work and therefore irrelevant to
//! end-to-end latency — only the chain of events where each one causally
//! enabled the next (a bus grant, a PGU dispatch, an RBQ pop, a readout
//! drain, a host ACK) explains the finish time.
//!
//! A [`CritPathTracker`] maintains a compact arena of provenance nodes
//! `(cause_id, edge, sim_time, kind)` with interned edge labels
//! (mirroring [`crate::profile::PhaseId`] interning). Components call
//! [`CritPathTracker::advance`] as their work completes; each call links
//! a new node to the current chain head. After a run,
//! [`CritPathTracker::report`] walks backwards from the final event and
//! aggregates the path into per-edge blocking-time attribution — a
//! [`CritPathReport`] that merges exactly across shot shards and jobs
//! and renders byte-stably, like [`crate::profile::PhaseTable`].
//!
//! # Determinism contract
//!
//! Node times derive exclusively from [`SimTime`] arithmetic and
//! recording is unconditional, so the arena — and everything distilled
//! from it (the report, the `critpath.edge.*` metrics namespace, the
//! rendered table) — is byte-identical across thread counts, across
//! batch-vs-standalone execution, and under inert fault plans.
//!
//! # Monotone-chain invariant
//!
//! [`CritPathTracker::advance`] clamps each node's time to be no earlier
//! than its cause's. When downstream work overlaps the chain (e.g. a
//! result batch streamed to the host *before* the chip finished its last
//! shot), only the *exposed* portion — the time past the previous chain
//! node — is charged to the edge. Overlapped time is attributed to
//! nothing, which is exactly the point: it was not blocking.
//!
//! # Examples
//!
//! ```
//! use qtenon_sim_engine::critpath::CritPathTracker;
//! use qtenon_sim_engine::{CritKind, SimDuration, SimTime};
//!
//! let mut t = CritPathTracker::new();
//! let upload = t.edge("host->bus");
//! let execute = t.edge("pipeline->chip");
//! let t0 = SimTime::ZERO;
//! t.open_at(t0);
//! t.advance(upload, t0 + SimDuration::from_ns(40), CritKind::Grant);
//! t.advance(execute, t0 + SimDuration::from_ns(140), CritKind::Complete);
//! let report = t.report();
//! assert_eq!(report.row("pipeline->chip").unwrap().total_ns, 100);
//! ```

use serde::{Deserialize, Serialize};

use crate::metrics::{Histogram, MetricsRegistry};
use crate::time::SimTime;

/// An interned causal-edge name: a cheap copyable handle into a
/// [`CritPathTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeId(u16);

/// A node's position in the provenance arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(u32);

/// What kind of causal hand-off a node records. Pure provenance
/// metadata: it names the mechanism that enabled the event (useful when
/// inspecting the raw path) and never affects attribution arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CritKind {
    /// A command was dispatched downstream (PGU dispatch, q_gen issue).
    Dispatch,
    /// An arbitration grant (bus grant, channel acquisition).
    Grant,
    /// A queue pop released the event (RBQ pop, transmission-queue pop).
    Pop,
    /// Buffered data drained to its consumer (readout drain).
    Drain,
    /// An acknowledgement closed a round trip (host ACK).
    Ack,
    /// A unit of work ran to completion (shot batch, classical segment).
    Complete,
}

/// Sentinel cause for root nodes.
const NO_CAUSE: u32 = u32::MAX;
/// Sentinel label for root nodes (they have no incoming edge).
const NO_EDGE: u16 = u16::MAX;

/// One provenance record: the event's cause, the interned edge it
/// arrived over, its (clamped) sim time, and the hand-off kind.
#[derive(Debug, Clone, Copy)]
struct CritNode {
    cause: u32,
    edge: u16,
    at: SimTime,
    kind: CritKind,
}

/// The causal critical-path tracker: interned edge labels, a compact
/// provenance arena, and the current chain head.
///
/// The tracker is append-only during a run; [`CritPathTracker::reset`]
/// clears the arena but keeps interned labels so previously returned
/// [`EdgeId`]s stay valid (mirroring `Profiler::reset`).
#[derive(Debug, Clone)]
pub struct CritPathTracker {
    labels: Vec<&'static str>,
    nodes: Vec<CritNode>,
    head: u32,
}

impl Default for CritPathTracker {
    fn default() -> Self {
        // Not derivable: an empty tracker's head must be the NO_CAUSE
        // sentinel, not node index 0.
        CritPathTracker::new()
    }
}

impl CritPathTracker {
    /// Creates a tracker with no edges and an empty arena.
    pub fn new() -> Self {
        CritPathTracker {
            labels: Vec::new(),
            nodes: Vec::new(),
            head: NO_CAUSE,
        }
    }

    /// Interns `name`, returning its [`EdgeId`]. Repeated calls with the
    /// same name return the same id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX - 1` distinct edges are interned.
    pub fn edge(&mut self, name: &'static str) -> EdgeId {
        if let Some(i) = self.labels.iter().position(|&l| l == name) {
            return EdgeId(i as u16);
        }
        let id = u16::try_from(self.labels.len()).expect("too many edges");
        assert!(id != NO_EDGE, "too many edges");
        self.labels.push(name);
        EdgeId(id)
    }

    /// The interned name of `id`.
    pub fn edge_name(&self, id: EdgeId) -> &'static str {
        self.labels[id.0 as usize]
    }

    /// Opens a new causal chain rooted at `at`, abandoning any previous
    /// head. The root carries no incoming edge and contributes no
    /// attributed time.
    pub fn open_at(&mut self, at: SimTime) -> NodeId {
        let id = self.push(CritNode {
            cause: NO_CAUSE,
            edge: NO_EDGE,
            at,
            kind: CritKind::Dispatch,
        });
        self.head = id.0;
        id
    }

    /// Appends a node at `at` whose cause is the current chain head and
    /// advances the head to it. The stored time is clamped to the
    /// cause's time (the monotone-chain invariant: overlapped work
    /// charges only its exposed portion). If no chain is open, the node
    /// auto-roots at `at` first.
    pub fn advance(&mut self, edge: EdgeId, at: SimTime, kind: CritKind) -> NodeId {
        if self.head == NO_CAUSE {
            self.open_at(at);
        }
        let cause = self.head;
        let clamped = at.max(self.nodes[cause as usize].at);
        let id = self.push(CritNode {
            cause,
            edge: edge.0,
            at: clamped,
            kind,
        });
        self.head = id.0;
        id
    }

    fn push(&mut self, node: CritNode) -> NodeId {
        let id = u32::try_from(self.nodes.len()).expect("provenance arena overflow");
        assert!(id != NO_CAUSE, "provenance arena overflow");
        self.nodes.push(node);
        NodeId(id)
    }

    /// The current chain head, if a chain is open.
    pub fn head(&self) -> Option<NodeId> {
        (self.head != NO_CAUSE).then_some(NodeId(self.head))
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Walks backwards from the chain head to its root and returns the
    /// path in causal (root-first) order as `(edge_name, kind, at)`
    /// steps. The root itself is omitted (it has no incoming edge).
    pub fn path(&self) -> Vec<(&'static str, CritKind, SimTime)> {
        let mut steps = Vec::new();
        let mut cursor = self.head;
        while cursor != NO_CAUSE {
            let node = &self.nodes[cursor as usize];
            if node.edge != NO_EDGE {
                steps.push((self.labels[node.edge as usize], node.kind, node.at));
            }
            cursor = node.cause;
        }
        steps.reverse();
        steps
    }

    /// Extracts the critical path and aggregates it into per-edge
    /// blocking-time attribution. Each step charges `node.at -
    /// cause.at` (never negative, by the monotone-chain invariant) to
    /// its edge.
    pub fn report(&self) -> CritPathReport {
        let mut rows: Vec<CritPathRow> = Vec::new();
        let mut cursor = self.head;
        while cursor != NO_CAUSE {
            let node = &self.nodes[cursor as usize];
            if node.edge != NO_EDGE {
                let cause_at = self.nodes[node.cause as usize].at;
                let ns = node.at.saturating_since(cause_at).as_ps() / 1_000;
                let name = self.labels[node.edge as usize];
                let row = match rows.iter_mut().find(|r| r.name == name) {
                    Some(row) => row,
                    None => {
                        rows.push(CritPathRow {
                            name: name.to_string(),
                            count: 0,
                            total_ns: 0,
                            hist: Histogram::new(),
                        });
                        rows.last_mut().expect("just pushed")
                    }
                };
                row.count += 1;
                row.total_ns += ns;
                row.hist.record(ns);
            }
            cursor = node.cause;
        }
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        CritPathReport { rows }
    }

    /// Forgets the arena and chain head but keeps interned edges, so
    /// previously returned [`EdgeId`]s stay valid.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.head = NO_CAUSE;
    }
}

/// One row of a [`CritPathReport`]: an edge's on-path blocking-time
/// accumulator. The full [`Histogram`] is embedded so reports merge
/// exactly (bucket-for-bucket), with percentiles derived on render.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CritPathRow {
    /// Causal edge name (`host->bus`, `pipeline->chip`, ...).
    pub name: String,
    /// On-path traversals of this edge.
    pub count: u64,
    /// Total blocking sim time attributed to this edge, in nanoseconds.
    pub total_ns: u64,
    /// Per-traversal blocking-time distribution (nanosecond samples).
    pub hist: Histogram,
}

/// The per-run critical-path attribution carried in `RunReport`.
///
/// Rows are sorted by edge name; sim-time-only, so two runs that
/// simulate the same timeline produce byte-identical reports regardless
/// of thread count or batch-vs-standalone execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CritPathReport {
    /// Rows sorted by edge name.
    pub rows: Vec<CritPathRow>,
}

impl CritPathReport {
    /// Whether the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sum of all on-path blocking time in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.total_ns).sum()
    }

    /// The row for `name`, if present.
    pub fn row(&self, name: &str) -> Option<&CritPathRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Total blocking time attributed to `component` — the sum over
    /// edges whose destination (the part after `->`) is `component`.
    pub fn component_ns(&self, component: &str) -> u64 {
        self.rows
            .iter()
            .filter(|r| edge_component(&r.name) == component)
            .map(|r| r.total_ns)
            .sum()
    }

    /// Folds `other` into this report row-by-row (union of edge names,
    /// counts and totals summed, histograms bucket-merged). Merging is
    /// commutative, mirroring `PhaseTable::merge`.
    pub fn merge(&mut self, other: &CritPathReport) {
        for theirs in &other.rows {
            match self.rows.iter_mut().find(|r| r.name == theirs.name) {
                Some(mine) => {
                    mine.count += theirs.count;
                    mine.total_ns += theirs.total_ns;
                    mine.hist.merge(&theirs.hist);
                }
                None => self.rows.push(theirs.clone()),
            }
        }
        self.rows.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Exports the per-edge accumulators under `<prefix>.<edge>` paths:
    /// a `.count` counter, a `.sim_total_ns` counter, and a `.sim_ns`
    /// blocking-time histogram (mirroring `Profiler::export_metrics`).
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        for row in &self.rows {
            if row.count == 0 {
                continue;
            }
            m.counter(&format!("{prefix}.{}.count", row.name), row.count);
            m.counter(&format!("{prefix}.{}.sim_total_ns", row.name), row.total_ns);
            m.histogram(&format!("{prefix}.{}.sim_ns", row.name), &row.hist);
        }
    }

    /// Renders the who-blocks-whom table as aligned text: one row per
    /// causal edge with count, total blocking time, percentile estimates
    /// (all integer nanoseconds), and the edge's share of the on-path
    /// total — followed by a per-component summary (% of end-to-end
    /// on-path per blocking component, the destination side of each
    /// edge). Every column derives from sim time, so the rendering is
    /// byte-stable across thread counts.
    pub fn render(&self) -> String {
        if self.rows.is_empty() {
            return String::from("no critical path recorded\n");
        }
        let width = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(0)
            .max(4);
        let grand = self.total_ns();
        let mut out = format!(
            "{:<width$}  {:>10}  {:>14}  {:>10}  {:>10}  {:>10}  {:>10}  {:>6}\n",
            "edge", "count", "sim_total_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns", "share"
        );
        for r in &self.rows {
            let share = permille(r.total_ns, grand);
            out.push_str(&format!(
                "{:<width$}  {:>10}  {:>14}  {:>10}  {:>10}  {:>10}  {:>10}  {:>5}.{}%\n",
                r.name,
                r.count,
                r.total_ns,
                r.hist.p50().unwrap_or(0),
                r.hist.p90().unwrap_or(0),
                r.hist.p99().unwrap_or(0),
                r.hist.max().unwrap_or(0),
                share / 10,
                share % 10,
            ));
        }
        out.push_str(&format!(
            "{:<width$}  {:>10}  {:>14}\n",
            "total",
            self.rows.iter().map(|r| r.count).sum::<u64>(),
            grand
        ));
        // Per-component section: who holds the chain, summed over every
        // edge that hands off *to* that component.
        let mut components: Vec<(&str, u64)> = Vec::new();
        for r in &self.rows {
            let c = edge_component(&r.name);
            match components.iter_mut().find(|(name, _)| *name == c) {
                Some((_, ns)) => *ns += r.total_ns,
                None => components.push((c, r.total_ns)),
            }
        }
        components.sort_by(|a, b| a.0.cmp(b.0));
        let cwidth = components
            .iter()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(0)
            .max(9);
        out.push('\n');
        out.push_str(&format!(
            "{:<cwidth$}  {:>14}  {:>6}\n",
            "component", "sim_total_ns", "share"
        ));
        for (name, ns) in components {
            let share = permille(ns, grand);
            out.push_str(&format!(
                "{:<cwidth$}  {:>14}  {:>5}.{}%\n",
                name,
                ns,
                share / 10,
                share % 10,
            ));
        }
        out
    }
}

/// Integer permille of `part` in `whole` — exact arithmetic, so
/// byte-stable when rendered as a percentage with one decimal.
fn permille(part: u64, whole: u64) -> u64 {
    if whole == 0 {
        0
    } else {
        part.saturating_mul(1000) / whole
    }
}

/// The component an edge hands off *to*: the substring after `->`, or
/// the whole name for labels without one.
fn edge_component(name: &str) -> &str {
    match name.split_once("->") {
        Some((_, dst)) => dst,
        None => name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn interning_is_stable() {
        let mut t = CritPathTracker::new();
        let a = t.edge("host->bus");
        let b = t.edge("bus->slt");
        assert_ne!(a, b);
        assert_eq!(t.edge("host->bus"), a);
        assert_eq!(t.edge_name(a), "host->bus");
        assert_eq!(t.edge_name(b), "bus->slt");
    }

    #[test]
    fn chain_accumulates_edge_durations() {
        let mut t = CritPathTracker::new();
        let up = t.edge("host->bus");
        let run = t.edge("pipeline->chip");
        t.open_at(at(0));
        t.advance(up, at(40), CritKind::Grant);
        t.advance(run, at(140), CritKind::Complete);
        t.advance(up, at(150), CritKind::Grant);
        let r = t.report();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.row("host->bus").unwrap().count, 2);
        assert_eq!(r.row("host->bus").unwrap().total_ns, 50);
        assert_eq!(r.row("pipeline->chip").unwrap().total_ns, 100);
        assert_eq!(r.total_ns(), 150);
    }

    #[test]
    fn advance_auto_roots_without_open() {
        let mut t = CritPathTracker::new();
        let e = t.edge("chip->readout");
        assert!(t.head().is_none());
        t.advance(e, at(25), CritKind::Drain);
        // Auto-root at the same instant: edge fires with zero duration.
        let r = t.report();
        assert_eq!(r.row("chip->readout").unwrap().count, 1);
        assert_eq!(r.row("chip->readout").unwrap().total_ns, 0);
        assert_eq!(t.len(), 2); // root + one edge node
    }

    #[test]
    fn overlapped_events_clamp_to_monotone_chain() {
        let mut t = CritPathTracker::new();
        let run = t.edge("pipeline->chip");
        let drain = t.edge("chip->readout");
        t.open_at(at(0));
        t.advance(run, at(100), CritKind::Complete);
        // A result batch that completed *before* the chip node: fully
        // overlapped, so the edge charges zero, not negative time.
        t.advance(drain, at(60), CritKind::Drain);
        // The next batch lands after the chain: only the exposed 20 ns
        // past the clamped node is charged.
        t.advance(drain, at(120), CritKind::Drain);
        let r = t.report();
        assert_eq!(r.row("chip->readout").unwrap().count, 2);
        assert_eq!(r.row("chip->readout").unwrap().total_ns, 20);
        assert_eq!(r.total_ns(), 120);
    }

    #[test]
    fn path_walks_root_first() {
        let mut t = CritPathTracker::new();
        let a = t.edge("host->bus");
        let b = t.edge("bus->slt");
        t.open_at(at(0));
        t.advance(a, at(10), CritKind::Grant);
        t.advance(b, at(30), CritKind::Pop);
        let path = t.path();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0], ("host->bus", CritKind::Grant, at(10)));
        assert_eq!(path[1], ("bus->slt", CritKind::Pop, at(30)));
    }

    #[test]
    fn reset_keeps_ids_valid() {
        let mut t = CritPathTracker::new();
        let e = t.edge("readout->host");
        t.open_at(at(0));
        t.advance(e, at(5), CritKind::Ack);
        t.reset();
        assert!(t.is_empty());
        assert!(t.report().is_empty());
        t.open_at(at(0));
        t.advance(e, at(7), CritKind::Ack);
        assert_eq!(t.report().row("readout->host").unwrap().total_ns, 7);
    }

    #[test]
    fn report_merge_matches_union() {
        let mut t1 = CritPathTracker::new();
        let mut t2 = CritPathTracker::new();
        let mut union = CritPathTracker::new();
        let a1 = t1.edge("a->x");
        let a2 = t2.edge("a->x");
        let b2 = t2.edge("b->y");
        let ua = union.edge("a->x");
        let ub = union.edge("b->y");
        t1.open_at(at(0));
        union.open_at(at(0));
        let mut now = 0;
        for ns in [10, 20, 30] {
            now += ns;
            t1.advance(a1, at(now), CritKind::Complete);
            union.advance(ua, at(now), CritKind::Complete);
        }
        t2.open_at(at(0));
        t2.advance(a2, at(5), CritKind::Complete);
        t2.advance(b2, at(82), CritKind::Complete);
        // The union tracker continues its own chain with the same deltas.
        union.advance(ua, at(now + 5), CritKind::Complete);
        union.advance(ub, at(now + 82), CritKind::Complete);
        let mut merged = t1.report();
        merged.merge(&t2.report());
        assert_eq!(merged, union.report());
    }

    #[test]
    fn merging_empty_report_is_identity() {
        let mut t = CritPathTracker::new();
        let e = t.edge("pgu->pipeline");
        t.open_at(at(0));
        t.advance(e, at(42), CritKind::Dispatch);
        let r = t.report();
        let mut merged = r.clone();
        merged.merge(&CritPathReport::default());
        assert_eq!(merged, r);
        let mut from_empty = CritPathReport::default();
        from_empty.merge(&r);
        assert_eq!(from_empty, r);
    }

    #[test]
    fn render_is_stable_and_shares_sum() {
        let mut t = CritPathTracker::new();
        let a = t.edge("pipeline->chip");
        let b = t.edge("readout->host");
        t.open_at(at(0));
        t.advance(a, at(750), CritKind::Complete);
        t.advance(b, at(1000), CritKind::Ack);
        let r = t.report();
        let r1 = r.render();
        let r2 = r.render();
        assert_eq!(r1, r2);
        assert!(r1.contains("75.0%"));
        assert!(r1.contains("25.0%"));
        assert!(r1.contains("component"));
        assert!(r1.contains("chip"));
        assert!(r1.contains("host"));
    }

    #[test]
    fn empty_report_renders_placeholder() {
        assert_eq!(
            CritPathReport::default().render(),
            "no critical path recorded\n"
        );
    }

    #[test]
    fn component_attribution_sums_inbound_edges() {
        let mut t = CritPathTracker::new();
        let a = t.edge("chip->readout");
        let b = t.edge("readout->host");
        let c = t.edge("host->bus");
        t.open_at(at(0));
        t.advance(a, at(10), CritKind::Drain);
        t.advance(b, at(30), CritKind::Ack);
        t.advance(c, at(60), CritKind::Grant);
        t.advance(b, at(100), CritKind::Ack);
        let r = t.report();
        assert_eq!(r.component_ns("readout"), 10);
        assert_eq!(r.component_ns("host"), 60);
        assert_eq!(r.component_ns("bus"), 30);
        assert_eq!(r.component_ns("absent"), 0);
    }

    #[test]
    fn export_metrics_mirrors_profiler_shape() {
        let mut t = CritPathTracker::new();
        let e = t.edge("host->bus");
        t.open_at(at(0));
        t.advance(e, at(40), CritKind::Grant);
        let mut m = MetricsRegistry::new();
        t.report().export_metrics(&mut m, "critpath.edge");
        assert_eq!(
            m.paths(),
            vec![
                "critpath.edge.host->bus.count",
                "critpath.edge.host->bus.sim_ns",
                "critpath.edge.host->bus.sim_total_ns",
            ]
        );
        // The arrow survives JSON and sanitises in Prometheus.
        let snap = m.snapshot();
        assert!(snap.to_json().contains("critpath.edge.host->bus.count"));
        assert!(snap
            .to_prometheus()
            .contains("critpath_edge_host__bus_count 1"));
    }

    #[test]
    fn open_at_restarts_the_chain() {
        let mut t = CritPathTracker::new();
        let e = t.edge("host->bus");
        t.open_at(at(0));
        t.advance(e, at(10), CritKind::Grant);
        t.open_at(at(100));
        t.advance(e, at(130), CritKind::Grant);
        // Both chains' edges aggregate; the gap between chains does not.
        let r = t.report();
        assert_eq!(r.row("host->bus").unwrap().count, 1);
        assert_eq!(r.row("host->bus").unwrap().total_ns, 30);
    }
}
