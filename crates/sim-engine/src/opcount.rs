//! Abstract-operation counting for host cost models.
//!
//! The paper measures host computation in RISC-V cycles (via `RDCYCLE`). In
//! this reproduction the classical computation (cost functions, optimizers)
//! is executed for real in Rust while an [`OpCounter`] tallies the abstract
//! operations performed. A host core model (Rocket-like in-order, Boom-like
//! out-of-order) then converts the tally to cycles. This keeps the host-time
//! *scaling* faithful — it grows with the real work the algorithm does —
//! without needing an RTL core.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Classes of abstract host operation tracked by [`OpCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer ALU operation (add, compare, bit ops, index arithmetic).
    IntAlu,
    /// Floating-point add/sub/mul.
    FpAlu,
    /// Floating-point divide, sqrt, or transcendental (sin/cos/exp).
    FpComplex,
    /// Memory load or store.
    Mem,
    /// Taken or mispredictable branch.
    Branch,
}

impl OpClass {
    /// All operation classes, in a fixed order used for array indexing.
    pub const ALL: [OpClass; 5] = [
        OpClass::IntAlu,
        OpClass::FpAlu,
        OpClass::FpComplex,
        OpClass::Mem,
        OpClass::Branch,
    ];

    fn index(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::FpAlu => 1,
            OpClass::FpComplex => 2,
            OpClass::Mem => 3,
            OpClass::Branch => 4,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpClass::IntAlu => "int",
            OpClass::FpAlu => "fp",
            OpClass::FpComplex => "fp-complex",
            OpClass::Mem => "mem",
            OpClass::Branch => "branch",
        };
        f.write_str(name)
    }
}

/// A tally of abstract operations by class.
///
/// # Examples
///
/// ```
/// use qtenon_sim_engine::{OpClass, OpCounter};
///
/// let mut ops = OpCounter::new();
/// ops.record(OpClass::FpAlu, 128);
/// ops.record(OpClass::Mem, 64);
/// assert_eq!(ops.get(OpClass::FpAlu), 128);
/// assert_eq!(ops.total(), 192);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounter {
    counts: [u64; 5],
}

impl OpCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        OpCounter::default()
    }

    /// Records `n` operations of class `class`.
    pub fn record(&mut self, class: OpClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// The count recorded for `class`.
    pub fn get(&self, class: OpClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total operations across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Resets all counts to zero.
    pub fn reset(&mut self) {
        self.counts = [0; 5];
    }

    /// Scales every count by `factor` (e.g. to replicate a per-shot cost
    /// across all shots without recounting).
    pub fn scaled(&self, factor: u64) -> OpCounter {
        let mut out = *self;
        for c in &mut out.counts {
            *c *= factor;
        }
        out
    }
}

impl Add for OpCounter {
    type Output = OpCounter;
    fn add(self, rhs: OpCounter) -> OpCounter {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for OpCounter {
    fn add_assign(&mut self, rhs: OpCounter) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts) {
            *a += b;
        }
    }
}

impl fmt::Display for OpCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ops[")?;
        for (i, class) in OpClass::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}={}", class, self.get(*class))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_class() {
        let mut ops = OpCounter::new();
        ops.record(OpClass::IntAlu, 10);
        ops.record(OpClass::Branch, 5);
        ops.record(OpClass::IntAlu, 1);
        assert_eq!(ops.get(OpClass::IntAlu), 11);
        assert_eq!(ops.get(OpClass::Branch), 5);
        assert_eq!(ops.get(OpClass::FpAlu), 0);
        assert_eq!(ops.total(), 16);
    }

    #[test]
    fn add_and_scale() {
        let mut a = OpCounter::new();
        a.record(OpClass::FpAlu, 3);
        let mut b = OpCounter::new();
        b.record(OpClass::FpAlu, 4);
        b.record(OpClass::Mem, 2);
        let c = a + b;
        assert_eq!(c.get(OpClass::FpAlu), 7);
        assert_eq!(c.get(OpClass::Mem), 2);
        let d = c.scaled(10);
        assert_eq!(d.get(OpClass::FpAlu), 70);
        assert_eq!(d.total(), 90);
    }

    #[test]
    fn reset_clears() {
        let mut ops = OpCounter::new();
        ops.record(OpClass::Mem, 9);
        assert!(!ops.is_empty());
        ops.reset();
        assert!(ops.is_empty());
    }

    #[test]
    fn all_classes_indexed_uniquely() {
        let mut ops = OpCounter::new();
        for (i, class) in OpClass::ALL.iter().enumerate() {
            ops.record(*class, (i + 1) as u64);
        }
        for (i, class) in OpClass::ALL.iter().enumerate() {
            assert_eq!(ops.get(*class), (i + 1) as u64);
        }
    }
}
