//! Picosecond-resolution simulation time.
//!
//! [`SimTime`] is an absolute instant on the simulated timeline and
//! [`SimDuration`] is a span between instants. Both are newtypes over `u64`
//! picoseconds: fine enough for a 2 GHz DAC (500 ps period) and wide enough
//! for more than 200 days of simulated time, far beyond any experiment in
//! the paper.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of simulated time with picosecond resolution.
///
/// # Examples
///
/// ```
/// use qtenon_sim_engine::SimDuration;
///
/// let gate = SimDuration::from_ns(20);
/// assert_eq!(gate * 2, SimDuration::from_ns(40));
/// assert_eq!(gate.as_ns(), 20.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000_000)
    }

    /// Creates a duration from a (non-negative, finite) number of
    /// nanoseconds, rounding to the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative, NaN, or overflows the `u64` picosecond
    /// range.
    pub fn from_ns_f64(ns: f64) -> Self {
        let ps = ns * 1_000.0;
        assert!(
            ps.is_finite() && ps >= 0.0 && ps <= u64::MAX as f64,
            "duration out of range: {ns} ns"
        );
        SimDuration(ps.round() as u64)
    }

    /// Creates a duration from a (non-negative, finite) number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or overflows.
    pub fn from_secs_f64(secs: f64) -> Self {
        Self::from_ns_f64(secs * 1e9)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This duration in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero rather than underflowing.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The ratio of this duration to another, as a float.
    ///
    /// Useful for computing breakdown percentages.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn fraction_of(self, total: SimDuration) -> f64 {
        assert!(!total.is_zero(), "fraction_of zero duration");
        self.0 as f64 / total.0 as f64
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<SimDuration> for u64 {
    type Output = SimDuration;
    fn mul(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self * rhs.0)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0 ns")
        } else if ps < 1_000 {
            write!(f, "{ps} ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.2} ns", self.as_ns())
        } else if ps < 1_000_000_000 {
            write!(f, "{:.2} us", self.as_us())
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.2} ms", self.as_ms())
        } else {
            write!(f, "{:.3} s", self.as_secs_f64())
        }
    }
}

/// An absolute instant on the simulated timeline.
///
/// Instants are produced by adding [`SimDuration`]s to [`SimTime::ZERO`] or
/// to other instants; subtracting two instants yields a duration.
///
/// # Examples
///
/// ```
/// use qtenon_sim_engine::{SimDuration, SimTime};
///
/// let start = SimTime::ZERO;
/// let end = start + SimDuration::from_ns(600);
/// assert_eq!(end - start, SimDuration::from_ns(600));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant at the given picosecond offset from time zero.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picosecond offset from time zero.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The duration since time zero.
    pub const fn elapsed(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The duration from `earlier` to `self`, or zero if `earlier` is later.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_ns(1), SimDuration::from_ps(1_000));
        assert_eq!(SimDuration::from_us(1), SimDuration::from_ns(1_000));
        assert_eq!(SimDuration::from_ms(1), SimDuration::from_us(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_ms(1_000));
    }

    #[test]
    fn duration_from_f64_rounds() {
        assert_eq!(SimDuration::from_ns_f64(0.5), SimDuration::from_ps(500));
        assert_eq!(SimDuration::from_ns_f64(20.0), SimDuration::from_ns(20));
        assert_eq!(SimDuration::from_secs_f64(0.001), SimDuration::from_ms(1));
    }

    #[test]
    #[should_panic(expected = "duration out of range")]
    fn duration_from_negative_panics() {
        let _ = SimDuration::from_ns_f64(-1.0);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_ns(30);
        let b = SimDuration::from_ns(12);
        assert_eq!(a + b, SimDuration::from_ns(42));
        assert_eq!(a - b, SimDuration::from_ns(18));
        assert_eq!(a * 3, SimDuration::from_ns(90));
        assert_eq!(a / 3, SimDuration::from_ns(10));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
    }

    #[test]
    fn fraction_of_total() {
        let part = SimDuration::from_ns(25);
        let total = SimDuration::from_ns(100);
        assert!((part.fraction_of(total) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO + SimDuration::from_ns(5);
        let t1 = t0 + SimDuration::from_ns(7);
        assert_eq!(t1 - t0, SimDuration::from_ns(7));
        assert_eq!(t1.saturating_since(t0), SimDuration::from_ns(7));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t0.min(t1), t0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_ps(12).to_string(), "12 ps");
        assert_eq!(SimDuration::from_ns(20).to_string(), "20.00 ns");
        assert_eq!(SimDuration::from_us(3).to_string(), "3.00 us");
        assert_eq!(SimDuration::from_ms(204).to_string(), "204.00 ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000 s");
    }
}
