//! Splittable deterministic randomness for the simulation engine.
//!
//! The parallel execution engine needs one property above all others: the
//! random stream consumed on behalf of shot *s* must depend only on the
//! configured seed and on *s* — never on which thread ran the shot, how
//! many shards the run was cut into, or what any other shot drew. This
//! module supplies that primitive. [`splitmix64`] is the engine's single
//! shared generator (also used by the fault injector), [`unit`] converts
//! draws to uniform floats, and [`stream_seed`] derives the independent
//! per-index sub-stream seeds that make shot-sharded execution bitwise
//! reproducible at any thread count.
//!
//! # Examples
//!
//! ```
//! use qtenon_sim_engine::rng::stream_seed;
//!
//! // Sub-streams are a pure function of (seed, index): any partition of
//! // the index space yields the same per-index seeds.
//! assert_eq!(stream_seed(42, 7), stream_seed(42, 7));
//! assert_ne!(stream_seed(42, 7), stream_seed(42, 8));
//! assert_ne!(stream_seed(42, 7), stream_seed(43, 7));
//! ```

/// SplitMix64: tiny, splittable, and plenty for simulation schedules.
///
/// Advances `state` by the golden-ratio increment and returns the
/// finalised output. Passing distinct states yields decorrelated streams,
/// which is what makes the generator safely splittable.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` with 53 bits of precision.
pub fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Derives the seed of sub-stream `index` under `seed`.
///
/// The derivation runs the SplitMix64 finaliser over a state offset by
/// `index` golden-ratio increments, so it is bijective in `index` for a
/// fixed seed: distinct indices always get distinct, decorrelated
/// sub-stream seeds. Because the result depends only on `(seed, index)`,
/// any contiguous sharding of an index range reproduces the serial
/// stream assignment exactly — the foundation of the bitwise-determinism
/// contract in DESIGN.md §"Parallel execution model".
pub fn stream_seed(seed: u64, index: u64) -> u64 {
    let mut state = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_advances() {
        let mut a = 123u64;
        let mut b = 123u64;
        let first = splitmix64(&mut a);
        assert_eq!(first, splitmix64(&mut b));
        let second = splitmix64(&mut a);
        assert_ne!(first, second, "stream must advance");
        // Equally advanced states stay in lockstep.
        assert_eq!(second, splitmix64(&mut b));
        assert_eq!(a, b);
    }

    #[test]
    fn unit_is_a_probability() {
        let mut s = 0xDEAD_BEEFu64;
        for _ in 0..10_000 {
            let u = unit(&mut s);
            assert!((0.0..1.0).contains(&u), "unit draw {u} out of range");
        }
    }

    #[test]
    fn stream_seeds_are_distinct_across_indices() {
        use std::collections::HashSet;
        let seeds: HashSet<u64> = (0..10_000).map(|i| stream_seed(42, i)).collect();
        assert_eq!(seeds.len(), 10_000, "stream seeds collided");
    }

    #[test]
    fn stream_seed_depends_on_both_inputs() {
        assert_eq!(stream_seed(7, 3), stream_seed(7, 3));
        assert_ne!(stream_seed(7, 3), stream_seed(8, 3));
        assert_ne!(stream_seed(7, 3), stream_seed(7, 4));
        // Index 0 must not collapse to the bare seed: the finaliser still
        // runs, so even the first sub-stream is decorrelated from `seed`.
        assert_ne!(stream_seed(7, 0), 7);
    }

    #[test]
    fn unit_mean_is_near_half() {
        let mut s = 99u64;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| unit(&mut s)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
