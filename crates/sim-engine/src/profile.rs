//! Span-based latency attribution.
//!
//! The Qtenon argument is a latency breakdown: which integration layer
//! (compile, pulse generation, communication, execution, readout,
//! classical optimise) eats each nanosecond of a hybrid iteration. This
//! module is the measurement substrate behind that breakdown: a
//! [`Profiler`] holding interned phase names and constant-memory
//! per-phase accumulators (reusing [`Histogram`]), a stack of
//! deterministic sim-time spans, and optional wall-clock scoped timers.
//!
//! # Determinism contract
//!
//! Sim-time spans are *always* collected and derive exclusively from
//! [`SimTime`]/[`SimDuration`] arithmetic, so the phase accumulators —
//! and everything rendered from them ([`PhaseTable`], the `profile.*`
//! metrics namespace) — are byte-identical across thread counts and
//! across profile-on/off runs. Wall-clock timers are the explicitly
//! unstable section: they are only collected when
//! [`Profiler::set_wall_enabled`] is on, never enter the metrics
//! registry, and are rendered separately by
//! [`Profiler::render_wall_unstable`].
//!
//! # Examples
//!
//! ```
//! use qtenon_sim_engine::profile::Profiler;
//! use qtenon_sim_engine::{SimDuration, SimTime};
//!
//! let mut p = Profiler::new();
//! let compile = p.phase("vqa.compile_patch");
//! let t0 = SimTime::ZERO;
//! p.push(compile, t0);
//! p.pop(t0 + SimDuration::from_ns(120));
//! let table = p.table();
//! assert_eq!(table.rows.len(), 1);
//! assert_eq!(table.rows[0].total_ns, 120);
//! ```

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::metrics::{Histogram, MetricsRegistry};
use crate::time::{SimDuration, SimTime};

/// An interned phase name: a cheap copyable handle into a [`Profiler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseId(u16);

/// Per-phase constant-memory accumulator.
#[derive(Debug, Clone)]
struct PhaseSlot {
    name: &'static str,
    count: u64,
    total: SimDuration,
    hist: Histogram,
    wall_count: u64,
    wall_total_ns: u128,
}

impl PhaseSlot {
    fn new(name: &'static str) -> Self {
        PhaseSlot {
            name,
            count: 0,
            total: SimDuration::ZERO,
            hist: Histogram::new(),
            wall_count: 0,
            wall_total_ns: 0,
        }
    }
}

/// The latency-attribution profiler: interned phases, a stack of open
/// sim-time spans, and per-phase [`Histogram`] accumulators.
///
/// Sim-time recording is unconditional (it is pure `u64` arithmetic and
/// must stay identical whether or not the user asked for a profile);
/// wall-clock recording is gated on [`Profiler::set_wall_enabled`].
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    slots: Vec<PhaseSlot>,
    stack: Vec<(PhaseId, SimTime)>,
    wall_enabled: bool,
}

impl Profiler {
    /// Creates a profiler with no phases and wall-clock timing off.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Enables or disables wall-clock span collection. Sim-time spans
    /// are unaffected: they are always recorded.
    pub fn set_wall_enabled(&mut self, enabled: bool) {
        self.wall_enabled = enabled;
    }

    /// Whether wall-clock spans are being collected.
    pub fn wall_enabled(&self) -> bool {
        self.wall_enabled
    }

    /// Interns `name`, returning its [`PhaseId`]. Repeated calls with
    /// the same name return the same id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` distinct phases are interned.
    pub fn phase(&mut self, name: &'static str) -> PhaseId {
        if let Some(i) = self.slots.iter().position(|s| s.name == name) {
            return PhaseId(i as u16);
        }
        let id = u16::try_from(self.slots.len()).expect("too many phases");
        self.slots.push(PhaseSlot::new(name));
        PhaseId(id)
    }

    /// The interned name of `id`.
    pub fn name(&self, id: PhaseId) -> &'static str {
        self.slots[id.0 as usize].name
    }

    /// Records one completed sim-time span of duration `d` against `id`.
    pub fn record(&mut self, id: PhaseId, d: SimDuration) {
        let slot = &mut self.slots[id.0 as usize];
        slot.count += 1;
        slot.total += d;
        slot.hist.record(d.as_ps() / 1_000);
    }

    /// Records the sim-time span from `start` to `end` (clamped at zero)
    /// against `id`.
    pub fn span(&mut self, id: PhaseId, start: SimTime, end: SimTime) {
        self.record(id, end.saturating_since(start));
    }

    /// Opens a sim-time span for `id` starting at `now`.
    pub fn push(&mut self, id: PhaseId, now: SimTime) {
        self.stack.push((id, now));
    }

    /// Closes the innermost open span at `now`, recording its duration.
    /// Returns the phase and duration, or `None` if no span is open.
    pub fn pop(&mut self, now: SimTime) -> Option<(PhaseId, SimDuration)> {
        let (id, start) = self.stack.pop()?;
        let d = now.saturating_since(start);
        self.record(id, d);
        Some((id, d))
    }

    /// Depth of the open-span stack.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Starts a wall-clock measurement, or returns `None` when wall
    /// timing is disabled (so the disabled path costs one branch).
    pub fn wall_start(&self) -> Option<Instant> {
        self.wall_enabled.then(Instant::now)
    }

    /// Completes a wall-clock measurement begun by
    /// [`Profiler::wall_start`]. A `None` start is a no-op.
    pub fn wall_end(&mut self, id: PhaseId, start: Option<Instant>) {
        if let Some(start) = start {
            self.record_wall_ns(id, start.elapsed().as_nanos());
        }
    }

    /// Records `ns` nanoseconds of wall time against `id`.
    pub fn record_wall_ns(&mut self, id: PhaseId, ns: u128) {
        let slot = &mut self.slots[id.0 as usize];
        slot.wall_count += 1;
        slot.wall_total_ns += ns;
    }

    /// Opens an RAII wall-clock scope: the span is recorded against `id`
    /// when the guard drops. Sim-time spans are not affected.
    pub fn wall_scope(&mut self, id: PhaseId) -> WallGuard<'_> {
        let start = self.wall_start();
        WallGuard {
            profiler: self,
            id,
            start,
        }
    }

    /// Forgets all recorded spans but keeps interned phases, so
    /// previously returned [`PhaseId`]s stay valid.
    pub fn reset(&mut self) {
        for slot in &mut self.slots {
            let name = slot.name;
            *slot = PhaseSlot::new(name);
        }
        self.stack.clear();
    }

    /// Exports the deterministic (sim-time) accumulators under
    /// `<prefix>.<phase>` paths: a `.count` counter, a `.sim_total_ns`
    /// counter, and a `.sim_ns` latency histogram. Wall-clock values are
    /// deliberately never exported here — they would break the
    /// byte-identical metrics contract.
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        for slot in &self.slots {
            if slot.count == 0 {
                continue;
            }
            m.counter(&format!("{prefix}.{}.count", slot.name), slot.count);
            m.counter(
                &format!("{prefix}.{}.sim_total_ns", slot.name),
                slot.total.as_ps() / 1_000,
            );
            m.histogram(&format!("{prefix}.{}.sim_ns", slot.name), &slot.hist);
        }
    }

    /// Freezes the deterministic accumulators into a [`PhaseTable`]
    /// (rows sorted by phase name; phases that never fired are omitted).
    pub fn table(&self) -> PhaseTable {
        let mut rows: Vec<PhaseRow> = self
            .slots
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| PhaseRow {
                name: s.name.to_string(),
                count: s.count,
                total_ns: s.total.as_ps() / 1_000,
                hist: s.hist.clone(),
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        PhaseTable { rows }
    }

    /// Renders the wall-clock section. Wall times vary run to run and
    /// machine to machine: this output is explicitly unstable and must
    /// never be diffed or committed.
    pub fn render_wall_unstable(&self) -> String {
        let mut rows: Vec<&PhaseSlot> = self.slots.iter().filter(|s| s.wall_count > 0).collect();
        if rows.is_empty() {
            return String::new();
        }
        rows.sort_by(|a, b| a.name.cmp(b.name));
        let width = rows.iter().map(|s| s.name.len()).max().unwrap_or(0).max(5);
        let mut out = String::from("wall-clock (unstable; varies per run/machine)\n");
        out.push_str(&format!(
            "{:<width$}  {:>10}  {:>14}  {:>12}\n",
            "phase", "count", "wall_total_us", "wall_mean_us"
        ));
        for s in rows {
            let total_us = s.wall_total_ns as f64 / 1e3;
            let mean_us = total_us / s.wall_count as f64;
            out.push_str(&format!(
                "{:<width$}  {:>10}  {:>14.1}  {:>12.3}\n",
                s.name, s.wall_count, total_us, mean_us
            ));
        }
        out
    }
}

/// RAII wall-clock scope from [`Profiler::wall_scope`].
#[derive(Debug)]
pub struct WallGuard<'a> {
    profiler: &'a mut Profiler,
    id: PhaseId,
    start: Option<Instant>,
}

impl Drop for WallGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.profiler
                .record_wall_ns(self.id, start.elapsed().as_nanos());
        }
    }
}

/// One row of a [`PhaseTable`]: a phase's deterministic sim-time
/// accumulator. The full [`Histogram`] is embedded so tables merge
/// exactly (bucket-for-bucket), with percentiles derived on render.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseRow {
    /// Phase name (`vqa.pulse_gen`, `controller.bus_transfer`, ...).
    pub name: String,
    /// Completed spans.
    pub count: u64,
    /// Total attributed sim time in nanoseconds.
    pub total_ns: u64,
    /// Span-duration distribution (nanosecond samples).
    pub hist: Histogram,
}

/// The per-run phase attribution table carried in `RunReport`.
///
/// Rows are sorted by phase name; sim-time-only, so two runs that
/// simulate the same timeline produce byte-identical tables regardless
/// of thread count or whether profiling output was requested.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTable {
    /// Rows sorted by phase name.
    pub rows: Vec<PhaseRow>,
}

impl PhaseTable {
    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sum of all attributed sim time in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.total_ns).sum()
    }

    /// The row for `name`, if present.
    pub fn row(&self, name: &str) -> Option<&PhaseRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Folds `other` into this table row-by-row (union of phase names,
    /// counts and totals summed, histograms bucket-merged). Merging is
    /// commutative, mirroring [`Histogram::merge`].
    pub fn merge(&mut self, other: &PhaseTable) {
        for theirs in &other.rows {
            match self.rows.iter_mut().find(|r| r.name == theirs.name) {
                Some(mine) => {
                    mine.count += theirs.count;
                    mine.total_ns += theirs.total_ns;
                    mine.hist.merge(&theirs.hist);
                }
                None => self.rows.push(theirs.clone()),
            }
        }
        self.rows.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Renders the table as aligned text: one row per phase with count,
    /// total, percentile estimates (all integer nanoseconds), and the
    /// phase's share of the attributed total. Every column derives from
    /// sim time, so the rendering is byte-stable across thread counts.
    pub fn render(&self) -> String {
        if self.rows.is_empty() {
            return String::from("no phases recorded\n");
        }
        let width = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(0)
            .max(5);
        let grand = self.total_ns();
        let mut out = format!(
            "{:<width$}  {:>10}  {:>14}  {:>10}  {:>10}  {:>10}  {:>10}  {:>6}\n",
            "phase", "count", "sim_total_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns", "share"
        );
        for r in &self.rows {
            let share = if grand == 0 {
                0
            } else {
                // Integer permille, rendered as a percentage with one
                // decimal: exact arithmetic, so byte-stable.
                r.total_ns.saturating_mul(1000) / grand
            };
            out.push_str(&format!(
                "{:<width$}  {:>10}  {:>14}  {:>10}  {:>10}  {:>10}  {:>10}  {:>5}.{}%\n",
                r.name,
                r.count,
                r.total_ns,
                r.hist.p50().unwrap_or(0),
                r.hist.p90().unwrap_or(0),
                r.hist.p99().unwrap_or(0),
                r.hist.max().unwrap_or(0),
                share / 10,
                share % 10,
            ));
        }
        out.push_str(&format!(
            "{:<width$}  {:>10}  {:>14}\n",
            "total",
            self.rows.iter().map(|r| r.count).sum::<u64>(),
            grand
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn interning_is_stable() {
        let mut p = Profiler::new();
        let a = p.phase("alpha");
        let b = p.phase("beta");
        assert_ne!(a, b);
        assert_eq!(p.phase("alpha"), a);
        assert_eq!(p.name(a), "alpha");
        assert_eq!(p.name(b), "beta");
    }

    #[test]
    fn spans_accumulate_into_table() {
        let mut p = Profiler::new();
        let a = p.phase("a");
        let b = p.phase("b");
        p.push(a, at(0));
        p.push(b, at(10));
        assert_eq!(p.depth(), 2);
        assert_eq!(p.pop(at(30)), Some((b, SimDuration::from_ns(20))));
        assert_eq!(p.pop(at(100)), Some((a, SimDuration::from_ns(100))));
        assert_eq!(p.pop(at(100)), None);
        p.record(a, SimDuration::from_ns(50));
        let t = p.table();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.row("a").unwrap().count, 2);
        assert_eq!(t.row("a").unwrap().total_ns, 150);
        assert_eq!(t.row("b").unwrap().total_ns, 20);
        assert_eq!(t.total_ns(), 170);
    }

    #[test]
    fn table_omits_silent_phases_and_sorts() {
        let mut p = Profiler::new();
        let z = p.phase("zz");
        let _silent = p.phase("mm");
        let a = p.phase("aa");
        p.record(z, SimDuration::from_ns(1));
        p.record(a, SimDuration::from_ns(2));
        let table = p.table();
        let names: Vec<&str> = table.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["aa", "zz"]);
    }

    #[test]
    fn reset_keeps_ids_valid() {
        let mut p = Profiler::new();
        let a = p.phase("a");
        p.record(a, SimDuration::from_ns(5));
        p.reset();
        assert!(p.table().is_empty());
        p.record(a, SimDuration::from_ns(7));
        assert_eq!(p.table().row("a").unwrap().total_ns, 7);
    }

    #[test]
    fn wall_disabled_records_nothing() {
        let mut p = Profiler::new();
        let a = p.phase("a");
        assert_eq!(p.wall_start(), None);
        {
            let _g = p.wall_scope(a);
        }
        p.wall_end(a, None);
        assert!(p.render_wall_unstable().is_empty());
        // And no sim-time rows either: wall scopes never touch sim time.
        assert!(p.table().is_empty());
    }

    #[test]
    fn wall_enabled_records_scopes() {
        let mut p = Profiler::new();
        p.set_wall_enabled(true);
        let a = p.phase("a");
        {
            let _g = p.wall_scope(a);
        }
        let start = p.wall_start();
        assert!(start.is_some());
        p.wall_end(a, start);
        let text = p.render_wall_unstable();
        assert!(text.contains("unstable"));
        assert!(text.contains('a'));
        // Wall spans never leak into the deterministic table or metrics.
        assert!(p.table().is_empty());
        let mut m = MetricsRegistry::new();
        p.export_metrics(&mut m, "profile");
        assert!(m.is_empty());
    }

    #[test]
    fn export_metrics_is_sim_only() {
        let mut p = Profiler::new();
        p.set_wall_enabled(true);
        let a = p.phase("vqa.pulse_gen");
        p.record(a, SimDuration::from_ns(40));
        p.record_wall_ns(a, 9_999);
        let mut m = MetricsRegistry::new();
        p.export_metrics(&mut m, "profile");
        assert_eq!(
            m.paths(),
            vec![
                "profile.vqa.pulse_gen.count",
                "profile.vqa.pulse_gen.sim_ns",
                "profile.vqa.pulse_gen.sim_total_ns",
            ]
        );
        let json = m.snapshot().to_json();
        assert!(!json.contains("wall"), "wall time leaked into metrics");
    }

    #[test]
    fn table_merge_matches_union() {
        let mut p1 = Profiler::new();
        let mut p2 = Profiler::new();
        let mut union = Profiler::new();
        let a1 = p1.phase("a");
        let a2 = p2.phase("a");
        let b2 = p2.phase("b");
        let ua = union.phase("a");
        let ub = union.phase("b");
        for ns in [10, 20, 30] {
            p1.record(a1, SimDuration::from_ns(ns));
            union.record(ua, SimDuration::from_ns(ns));
        }
        for ns in [5, 1000] {
            p2.record(a2, SimDuration::from_ns(ns));
            union.record(ua, SimDuration::from_ns(ns));
        }
        p2.record(b2, SimDuration::from_ns(77));
        union.record(ub, SimDuration::from_ns(77));
        let mut merged = p1.table();
        merged.merge(&p2.table());
        assert_eq!(merged, union.table());
    }

    #[test]
    fn render_is_stable_and_shares_sum() {
        let mut p = Profiler::new();
        let a = p.phase("long.phase.name");
        let b = p.phase("b");
        p.record(a, SimDuration::from_ns(750));
        p.record(b, SimDuration::from_ns(250));
        let t = p.table();
        let r1 = t.render();
        let r2 = t.render();
        assert_eq!(r1, r2);
        assert!(r1.contains("75.0%"));
        assert!(r1.contains("25.0%"));
        assert!(r1.lines().last().unwrap().starts_with("total"));
    }

    #[test]
    fn empty_table_renders_placeholder() {
        assert_eq!(PhaseTable::default().render(), "no phases recorded\n");
    }

    #[test]
    fn sub_nanosecond_spans_truncate_consistently() {
        let mut p = Profiler::new();
        let a = p.phase("a");
        p.record(a, SimDuration::from_ps(1_500));
        let t = p.table();
        // ps→ns truncation: both the total and the histogram sample see 1.
        assert_eq!(t.row("a").unwrap().total_ns, 1);
        assert_eq!(t.row("a").unwrap().hist.max(), Some(1));
    }

    #[test]
    fn merging_empty_table_is_identity() {
        let mut p = Profiler::new();
        let a = p.phase("a");
        p.record(a, SimDuration::from_ns(42));
        let t = p.table();
        let mut merged = t.clone();
        merged.merge(&PhaseTable::default());
        assert_eq!(merged, t);
        let mut from_empty = PhaseTable::default();
        from_empty.merge(&t);
        assert_eq!(from_empty, t);
    }
}
