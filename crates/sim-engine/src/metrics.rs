//! The unified telemetry layer: a hierarchical metrics registry with
//! counters, gauges, and log-bucketed latency histograms, snapshotted
//! into machine-readable exports (JSON, Prometheus text, human text).
//!
//! Every modelled component registers its observables under a stable
//! dotted path (`controller.slt.hits`, `mem.l1.hit_rate`,
//! `core.instr.q_run.latency`), so one [`MetricsSnapshot`] captures the
//! whole system and experiments can diff structured telemetry instead of
//! parsing stdout. The batch scheduler's fleet-level observables live
//! under `jobs.*` (queue depth, wait/turnaround histograms, pool shape,
//! throughput) in their own registry, keeping per-job system trees
//! byte-stable while the schedule's wall-clock telemetry varies freely.
//!
//! # Examples
//!
//! ```
//! use qtenon_sim_engine::metrics::MetricsRegistry;
//!
//! let mut m = MetricsRegistry::new();
//! m.counter("controller.slt.hits", 42);
//! m.gauge("mem.l1.hit_rate", 0.97);
//! m.observe("controller.bus.latency", 21);
//! m.observe("controller.bus.latency", 35);
//! let snap = m.snapshot();
//! assert_eq!(snap.len(), 3);
//! assert!(snap.to_json().contains("controller.slt.hits"));
//! assert!(snap.to_prometheus().contains("controller_slt_hits 42"));
//! ```

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of histogram buckets: bucket 0 holds zero-valued samples and
/// bucket `k` (1..=64) holds samples whose bit length is `k`, i.e. the
/// range `[2^(k-1), 2^k - 1]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-bucketed latency histogram over unsigned integer samples
/// (conventionally nanoseconds).
///
/// Buckets are powers of two, so recording is O(1), memory is constant,
/// and two histograms merge bucket-for-bucket. Percentiles are estimated
/// as the upper bound of the bucket containing the requested rank,
/// clamped to the observed maximum — so `p50 <= p90 <= p99 <= max`
/// always holds.
///
/// # Examples
///
/// ```
/// use qtenon_sim_engine::metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [10, 20, 30, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), Some(1000));
/// assert!(h.p50().unwrap() <= h.p99().unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }

    /// The bucket index a sample falls into (its bit length).
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The largest value bucket `index` can hold.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Per-bucket counts (length [`HISTOGRAM_BUCKETS`]).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Estimated value at quantile `q` in `[0, 1]`: the upper bound of
    /// the bucket holding the rank-`q` sample, clamped to the observed
    /// maximum. Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).floor() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(Self::bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.9)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Folds another histogram into this one bucket-for-bucket.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Forgets all samples.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} p50={} p90={} p99={} max={}",
            self.count,
            self.p50().unwrap_or(0),
            self.p90().unwrap_or(0),
            self.p99().unwrap_or(0),
            self.max,
        )
    }
}

/// One registered metric's value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A monotonic event count.
    Counter(u64),
    /// An instantaneous level (rate, occupancy, cost, ...).
    Gauge(f64),
    /// A latency distribution.
    Histogram(Histogram),
}

/// A hierarchical registry of named metrics.
///
/// Paths are dotted lower-case identifiers (`mem.l1.hits`); the dots are
/// the hierarchy. Registering a path that already exists overwrites the
/// previous value, except [`MetricsRegistry::observe`] which accumulates
/// into an existing histogram.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or overwrites) a counter at `path`.
    pub fn counter(&mut self, path: &str, value: u64) {
        self.metrics
            .insert(path.to_string(), MetricValue::Counter(value));
    }

    /// Registers (or overwrites) a gauge at `path`. Non-finite values are
    /// recorded as zero so every export stays machine-parseable.
    pub fn gauge(&mut self, path: &str, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        self.metrics.insert(path.to_string(), MetricValue::Gauge(v));
    }

    /// Records one sample into the histogram at `path`, creating it on
    /// first use. A non-histogram metric already at `path` is replaced.
    pub fn observe(&mut self, path: &str, sample: u64) {
        match self.metrics.get_mut(path) {
            Some(MetricValue::Histogram(h)) => h.record(sample),
            _ => {
                let mut h = Histogram::new();
                h.record(sample);
                self.metrics
                    .insert(path.to_string(), MetricValue::Histogram(h));
            }
        }
    }

    /// Registers (or overwrites) a copy of an existing histogram at
    /// `path` — the component-export path, where components own their
    /// histograms and publish them at snapshot time.
    pub fn histogram(&mut self, path: &str, h: &Histogram) {
        self.metrics
            .insert(path.to_string(), MetricValue::Histogram(h.clone()));
    }

    /// The value at `path`, if registered.
    pub fn get(&self, path: &str) -> Option<&MetricValue> {
        self.metrics.get(path)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// All registered paths in sorted order.
    pub fn paths(&self) -> Vec<&str> {
        self.metrics.keys().map(String::as_str).collect()
    }

    /// Iterates `(path, value)` pairs in sorted path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds `other` into this registry, path by path.
    ///
    /// Counters meeting counters add; histograms meeting histograms
    /// bucket-merge (see [`Histogram::merge`]); everything else —
    /// gauges, paths absent on one side, or mismatched kinds — takes
    /// `other`'s value, matching the registry's overwrite semantics.
    /// Addition and bucket-merging are commutative, so this reduction is
    /// deterministic for any merge order; the parallel engine still
    /// merges shards in canonical shard order so that the overwrite
    /// cases (gauges) are well defined too.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (path, value) in &other.metrics {
            match (self.metrics.get_mut(path), value) {
                (Some(MetricValue::Counter(mine)), MetricValue::Counter(theirs)) => {
                    *mine += theirs;
                }
                (Some(MetricValue::Histogram(mine)), MetricValue::Histogram(theirs)) => {
                    mine.merge(theirs);
                }
                _ => {
                    self.metrics.insert(path.clone(), value.clone());
                }
            }
        }
    }

    /// Freezes the current state into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self.metrics.clone(),
        }
    }
}

/// A frozen, serialisable view of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Path → value, sorted by path.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// All paths in sorted order.
    pub fn paths(&self) -> Vec<&str> {
        self.metrics.keys().map(String::as_str).collect()
    }

    /// Serialises the snapshot as a JSON object
    /// `{"metrics": {"<path>": {...}, ...}}`.
    ///
    /// Counters carry `{"type":"counter","value":N}`, gauges
    /// `{"type":"gauge","value":X}`, histograms their full bucket table
    /// plus derived percentiles.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":{");
        for (i, (path, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&json_escape(path));
            out.push_str("\":");
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{{\"type\":\"counter\",\"value\":{v}}}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{{\"type\":\"gauge\",\"value\":{}}}",
                        json_f64(*v)
                    ));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                        h.count(),
                        h.sum(),
                        h.min().unwrap_or(0),
                        h.max().unwrap_or(0),
                        h.p50().unwrap_or(0),
                        h.p90().unwrap_or(0),
                        h.p99().unwrap_or(0),
                    ));
                    let mut first = true;
                    for (idx, &c) in h.buckets().iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push_str(&format!("[{idx},{c}]"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("}}");
        out
    }

    /// Serialises in the Prometheus text exposition format: one
    /// `name value` (or `name{labels} value`) line per sample. Dotted
    /// paths become underscore-separated metric names; histogram
    /// percentiles are exported as `quantile`-labelled samples alongside
    /// `_count` and `_sum`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (path, value) in &self.metrics {
            let name = prometheus_name(path);
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name} {}\n", json_f64(*v)));
                }
                MetricValue::Histogram(h) => {
                    // Cumulative le-labelled buckets make the exporter
                    // scrape-compatible with Prometheus histogram
                    // queries. Empty buckets are skipped (the running
                    // cumulative count stays correct), and the
                    // mandatory `+Inf` bucket equals `_count`.
                    let mut cumulative = 0u64;
                    for (idx, &c) in h.buckets().iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                            Histogram::bucket_upper_bound(idx)
                        ));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                    out.push_str(&format!("{name}_sum {}\n", h.sum()));
                    for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                        out.push_str(&format!(
                            "{name}{{quantile=\"{label}\"}} {}\n",
                            h.quantile(q).unwrap_or(0)
                        ));
                    }
                    out.push_str(&format!("{name}_max {}\n", h.max().unwrap_or(0)));
                }
            }
        }
        out
    }

    /// Renders a human-readable end-of-run report, one metric per line.
    pub fn to_text(&self) -> String {
        let width = self.metrics.keys().map(String::len).max().unwrap_or(0);
        let mut out = String::new();
        for (path, value) in &self.metrics {
            let rendered = match value {
                MetricValue::Counter(v) => v.to_string(),
                MetricValue::Gauge(v) => format!("{v:.4}"),
                MetricValue::Histogram(h) => h.to_string(),
            };
            out.push_str(&format!("{path:<width$}  {rendered}\n"));
        }
        out
    }
}

/// Escapes a string for inclusion inside a JSON string literal:
/// backslashes, double quotes, and all control characters below 0x20.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON-safe token (`0` for non-finite values).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Maps a dotted metric path onto a Prometheus metric name: dots become
/// underscores and any other character outside `[a-zA-Z0-9_:]` is
/// replaced by `_`. A leading digit gains a `_` prefix.
fn prometheus_name(path: &str) -> String {
    let mut name = String::with_capacity(path.len());
    for c in path.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            name.push(c);
        } else {
            name.push('_');
        }
    }
    if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        name.insert(0, '_');
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_estimates() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        let p50 = h.p50().unwrap();
        let p90 = h.p90().unwrap();
        let p99 = h.p99().unwrap();
        assert!(p50 <= p90 && p90 <= p99 && p99 <= 100);
        // The median of 1..=100 lives in bucket [32, 63].
        assert!(p50 >= 50 && p50 <= 63, "p50={p50}");
    }

    #[test]
    fn histogram_zero_and_extremes() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[64], 1);
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
    }

    #[test]
    fn histogram_merge_matches_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut union = Histogram::new();
        for v in [3u64, 17, 1000, 5] {
            a.record(v);
            union.record(v);
        }
        for v in [0u64, 250, 99999] {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a, union);
    }

    #[test]
    fn histogram_merge_into_empty() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        b.record(7);
        a.merge(&b);
        assert_eq!(a, b);
        // Merging an empty histogram changes nothing.
        a.merge(&Histogram::new());
        assert_eq!(a, b);
    }

    #[test]
    fn registry_registers_and_snapshots() {
        let mut m = MetricsRegistry::new();
        m.counter("a.count", 3);
        m.gauge("a.rate", 0.5);
        m.observe("a.lat", 10);
        m.observe("a.lat", 20);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get("a.count"), Some(&MetricValue::Counter(3)));
        let snap = m.snapshot();
        assert_eq!(snap.paths(), vec!["a.count", "a.lat", "a.rate"]);
        match snap.metrics.get("a.lat") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), 2),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn registry_merge_sums_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        a.counter("hits", 3);
        a.observe("lat", 10);
        a.gauge("rate", 0.25);
        a.counter("only_a", 1);
        let mut b = MetricsRegistry::new();
        b.counter("hits", 4);
        b.observe("lat", 20);
        b.gauge("rate", 0.75);
        b.counter("only_b", 2);
        a.merge(&b);
        assert_eq!(a.get("hits"), Some(&MetricValue::Counter(7)));
        assert_eq!(a.get("only_a"), Some(&MetricValue::Counter(1)));
        assert_eq!(a.get("only_b"), Some(&MetricValue::Counter(2)));
        // Gauges take the merged-in value.
        assert_eq!(a.get("rate"), Some(&MetricValue::Gauge(0.75)));
        match a.get("lat") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count(), 2);
                assert_eq!(h.sum(), 30);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn registry_merge_equals_serial_recording() {
        // Recording everything into one registry and recording shards
        // then merging must produce identical snapshots (and JSON).
        let samples = [3u64, 17, 1000, 5, 0, 250, 99_999];
        let mut serial = MetricsRegistry::new();
        for &s in &samples {
            serial.observe("lat", s);
        }
        serial.counter("n", samples.len() as u64);
        let mut left = MetricsRegistry::new();
        let mut right = MetricsRegistry::new();
        for &s in &samples[..3] {
            left.observe("lat", s);
        }
        left.counter("n", 3);
        for &s in &samples[3..] {
            right.observe("lat", s);
        }
        right.counter("n", samples.len() as u64 - 3);
        left.merge(&right);
        assert_eq!(left, serial);
        assert_eq!(left.snapshot().to_json(), serial.snapshot().to_json());
    }

    #[test]
    fn registry_iter_walks_sorted_paths() {
        let mut m = MetricsRegistry::new();
        m.counter("b", 2);
        m.counter("a", 1);
        let pairs: Vec<(&str, &MetricValue)> = m.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], ("a", &MetricValue::Counter(1)));
        assert_eq!(pairs[1], ("b", &MetricValue::Counter(2)));
    }

    #[test]
    fn non_finite_gauges_are_zeroed() {
        let mut m = MetricsRegistry::new();
        m.gauge("bad", f64::NAN);
        m.gauge("inf", f64::INFINITY);
        assert_eq!(m.get("bad"), Some(&MetricValue::Gauge(0.0)));
        assert_eq!(m.get("inf"), Some(&MetricValue::Gauge(0.0)));
    }

    #[test]
    fn json_export_is_well_formed() {
        let mut m = MetricsRegistry::new();
        m.counter("x.hits", 7);
        m.gauge("x.rate", 0.25);
        m.observe("x.lat", 12);
        let json = m.snapshot().to_json();
        assert!(json.starts_with("{\"metrics\":{"));
        assert!(json.ends_with("}}"));
        assert!(json.contains("\"x.hits\":{\"type\":\"counter\",\"value\":7}"));
        assert!(json.contains("\"type\":\"gauge\",\"value\":0.25"));
        assert!(json.contains("\"type\":\"histogram\",\"count\":1"));
        // Balanced braces and brackets.
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn prometheus_lines_parse_as_name_value() {
        let mut m = MetricsRegistry::new();
        m.counter("mem.l1.hits", 10);
        m.gauge("mem.l1.hit_rate", 0.5);
        m.observe("bus.latency", 21);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("mem_l1_hits 10\n"));
        assert!(text.contains("bus_latency_count 1\n"));
        assert!(text.contains("bus_latency{quantile=\"0.5\"} 21\n"));
        for line in text.lines() {
            let (name_part, value_part) = line.rsplit_once(' ').expect("name value");
            assert!(!name_part.is_empty());
            assert!(value_part.parse::<f64>().is_ok(), "bad value in {line:?}");
            let bare = name_part.split('{').next().unwrap();
            assert!(
                bare.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad name in {line:?}"
            );
        }
    }

    #[test]
    fn percentiles_on_empty_single_sample_and_single_bucket() {
        // Empty: every quantile is None.
        let empty = Histogram::new();
        assert_eq!(empty.p50(), None);
        assert_eq!(empty.p90(), None);
        assert_eq!(empty.p99(), None);
        // Single sample: p50 = p90 = p99 = the sample (bucket upper
        // bound clamped to max).
        let mut single = Histogram::new();
        single.record(7);
        assert_eq!(single.p50(), Some(7));
        assert_eq!(single.p90(), Some(7));
        assert_eq!(single.p99(), Some(7));
        // Single-sample zero lands in bucket 0.
        let mut zero = Histogram::new();
        zero.record(0);
        assert_eq!(zero.p50(), Some(0));
        assert_eq!(zero.p99(), Some(0));
        // All samples in one bucket: every percentile is that bucket's
        // upper bound clamped to the observed max.
        let mut one_bucket = Histogram::new();
        for v in [4u64, 5, 6] {
            one_bucket.record(v);
        }
        assert_eq!(one_bucket.p50(), Some(6));
        assert_eq!(one_bucket.p90(), Some(6));
        assert_eq!(one_bucket.p99(), Some(6));
    }

    #[test]
    fn registry_merge_disjoint_keys_is_union() {
        let mut a = MetricsRegistry::new();
        a.counter("left.hits", 1);
        a.observe("left.lat", 10);
        let mut b = MetricsRegistry::new();
        b.counter("right.hits", 2);
        b.gauge("right.rate", 0.5);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.get("left.hits"), Some(&MetricValue::Counter(1)));
        assert_eq!(a.get("right.hits"), Some(&MetricValue::Counter(2)));
        assert_eq!(a.get("right.rate"), Some(&MetricValue::Gauge(0.5)));
    }

    #[test]
    fn registry_merge_type_collisions_take_incoming_value() {
        let mut a = MetricsRegistry::new();
        a.counter("x", 5);
        a.observe("y", 10);
        a.gauge("z", 1.0);
        let mut b = MetricsRegistry::new();
        b.gauge("x", 0.25); // counter ← gauge
        b.counter("y", 3); // histogram ← counter
        b.observe("z", 7); // gauge ← histogram
        a.merge(&b);
        assert_eq!(a.get("x"), Some(&MetricValue::Gauge(0.25)));
        assert_eq!(a.get("y"), Some(&MetricValue::Counter(3)));
        match a.get("z") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_at_inf() {
        let mut m = MetricsRegistry::new();
        for v in [1u64, 2, 3, 100] {
            m.observe("lat", v);
        }
        let text = m.snapshot().to_prometheus();
        // 1 → le="1"; 2,3 → le="3"; 100 → le="127"; cumulative counts.
        assert!(text.contains("lat_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"3\"} 3\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"127\"} 4\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("lat_count 4\n"));
        assert!(text.contains("lat_sum 106\n"));
        // Bucket lines come out in ascending le order and never decrease.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_bucket"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn text_report_lists_every_metric() {
        let mut m = MetricsRegistry::new();
        m.counter("a", 1);
        m.gauge("b.c", 2.0);
        m.observe("d", 3);
        let text = m.snapshot().to_text();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("a"));
        assert!(text.contains("b.c"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn prometheus_name_sanitises() {
        assert_eq!(prometheus_name("mem.l1.hits"), "mem_l1_hits");
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
        assert_eq!(prometheus_name("9lives"), "_9lives");
    }
}
