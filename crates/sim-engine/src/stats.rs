//! Lightweight statistics used by component models.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use qtenon_sim_engine::Counter;
///
/// let mut hits = Counter::new();
/// hits.add(3);
/// hits.incr();
/// assert_eq!(hits.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// The current count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.count = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.count)
    }
}

/// Running min/max/mean tally over observed samples.
///
/// # Examples
///
/// ```
/// use qtenon_sim_engine::Tally;
///
/// let mut occupancy = Tally::new();
/// for v in [2.0, 4.0, 6.0] {
///     occupancy.observe(v);
/// }
/// assert_eq!(occupancy.mean(), Some(4.0));
/// assert_eq!(occupancy.max(), Some(6.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Tally {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Tally::default()
    }

    /// Records one sample.
    ///
    /// NaN samples are ignored: a single NaN would otherwise poison
    /// `min`/`max`/`mean` for the rest of the run, and dropping the
    /// sample keeps every recorded statistic meaningful (the alternative
    /// — saturating to some sentinel — would silently skew extrema).
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        if self.n == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.n += 1;
        self.sum += v;
    }

    /// The number of samples observed.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Returns `true` if no samples have been observed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean of the samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    /// Smallest observed sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observed sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

impl fmt::Display for Tally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "n={} mean={:.3} min={:.3} max={:.3}",
                self.n, mean, self.min, self.max
            ),
            None => write!(f, "n=0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        assert_eq!(c.count(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.count(), 10);
        c.reset();
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn tally_tracks_extrema_and_mean() {
        let mut t = Tally::new();
        assert!(t.is_empty());
        assert_eq!(t.mean(), None);
        t.observe(5.0);
        t.observe(-1.0);
        t.observe(2.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.min(), Some(-1.0));
        assert_eq!(t.max(), Some(5.0));
        assert_eq!(t.mean(), Some(2.0));
        assert_eq!(t.sum(), 6.0);
    }

    #[test]
    fn tally_single_sample() {
        let mut t = Tally::new();
        t.observe(7.5);
        assert_eq!(t.min(), Some(7.5));
        assert_eq!(t.max(), Some(7.5));
        assert_eq!(t.mean(), Some(7.5));
    }

    #[test]
    fn nan_samples_are_ignored() {
        let mut t = Tally::new();
        t.observe(f64::NAN);
        assert!(t.is_empty());
        t.observe(2.0);
        t.observe(f64::NAN);
        t.observe(4.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(4.0));
        assert_eq!(t.mean(), Some(3.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Tally::new().to_string(), "n=0");
        assert_eq!(Counter::new().to_string(), "0");
    }
}
