//! Deterministic, seeded fault injection for the component models.
//!
//! Real control stacks must tolerate transient link errors, readout
//! timeouts, and control-store corruption. This module supplies the
//! *injection* half of that story: a [`FaultPlan`] names per-site fault
//! rates plus the resilience-policy knobs (retry budget, backoff, watchdog
//! timeout), and a [`FaultInjector`] turns the plan into reproducible
//! per-site Bernoulli/geometric draws. The *response* half — retries,
//! watchdogs, parity fallbacks — lives with the components themselves.
//!
//! # Determinism
//!
//! Every site owns an independent SplitMix64 stream derived from the plan
//! seed, and every injection decision consumes **exactly one** draw from
//! its site's stream regardless of the outcome. Retry counts come from a
//! single uniform draw inverted through the geometric CDF
//! (`k = max k with u < rate^k`), so for a fixed seed the streams stay
//! aligned across different rates and every per-event failure count is
//! pointwise monotone in the rate. That is what makes "retry counts are
//! monotone in the fault rate" a testable property rather than a
//! statistical tendency.
//!
//! # Examples
//!
//! ```
//! use qtenon_sim_engine::faults::{FaultInjector, FaultPlan, FaultSite};
//!
//! let plan = FaultPlan::parse("bus_drop=0.5,readout_timeout=0.1").unwrap();
//! let mut a = FaultInjector::new(plan.with_seed(7));
//! let mut b = FaultInjector::new(plan.with_seed(7));
//! for _ in 0..100 {
//!     assert_eq!(
//!         a.geometric_failures(FaultSite::BusDrop),
//!         b.geometric_failures(FaultSite::BusDrop),
//!     );
//! }
//! assert_eq!(a.injected(FaultSite::BusDrop), b.injected(FaultSite::BusDrop));
//! ```

use serde::{Deserialize, Serialize};

use crate::metrics::MetricsRegistry;
use crate::rng::{splitmix64, stream_seed, unit};
use crate::time::SimDuration;

/// A malformed fault spec, carrying the exact offending token so callers
/// can point at the bad entry instead of echoing the whole spec back.
///
/// Every variant names the token it tripped over; [`std::fmt::Display`]
/// renders the same one-line messages the old stringly-typed parser
/// produced, so `map_err(|e| format!(...))` call sites keep working.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpecError {
    /// The spec contained no `key=value` pairs at all (empty string,
    /// only separators, or only comments).
    Empty,
    /// An entry without an `=`, e.g. `bus_drop` or `0.1`.
    NotKeyValue {
        /// The entry as written.
        token: String,
    },
    /// A key naming neither an injection site nor a policy knob.
    UnknownKey {
        /// The unrecognised key.
        token: String,
    },
    /// A policy-knob value that is not an unsigned integer.
    BadInt {
        /// The knob name.
        key: String,
        /// The value as written.
        token: String,
    },
    /// A rate value that is not a number at all.
    BadRate {
        /// The site (or `all`) name.
        key: String,
        /// The value as written.
        token: String,
    },
    /// A numeric rate outside `[0, 1)` — negative, `>= 1`, or NaN.
    RateOutOfRange {
        /// The site name the rate was destined for.
        site: &'static str,
        /// The offending rate.
        rate: f64,
    },
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpecError::Empty => {
                write!(f, "fault spec is empty: expected key=value pairs")
            }
            FaultSpecError::NotKeyValue { token } => {
                write!(f, "fault spec entry {token:?} is not key=value")
            }
            FaultSpecError::UnknownKey { token } => {
                write!(f, "unknown fault spec key {token:?}")
            }
            FaultSpecError::BadInt { key, token } => {
                write!(
                    f,
                    "bad {key} in fault spec: {token:?} is not an unsigned integer"
                )
            }
            FaultSpecError::BadRate { key, token } => {
                write!(
                    f,
                    "bad rate for {key} in fault spec: {token:?} is not a number"
                )
            }
            FaultSpecError::RateOutOfRange { site, rate } => {
                write!(f, "fault rate for {site} must be in [0, 1): got {rate}")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// A component boundary where faults can be injected.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// A TileLink transaction is dropped in flight (needs retransmission).
    BusDrop,
    /// A TileLink transaction arrives corrupted (CRC fails, retransmit).
    BusCorrupt,
    /// A PGU holds its result for extra cycles (transient stall).
    PguStall,
    /// A PGU produces a detectably bad pulse (must re-dispatch).
    PguFail,
    /// A parity-detectable bit flip in a resident SLT entry.
    SltBitFlip,
    /// A correctable (SECDED) bit flip in a QCC `.measure` word.
    QccBitFlip,
    /// An RBQ tag whose completion never arrives (stuck / leaked).
    RbqStuck,
    /// The readout chain misses its deadline and must be re-armed.
    ReadoutTimeout,
}

impl FaultSite {
    /// Every injection site, in declaration order.
    pub const ALL: [FaultSite; 8] = [
        FaultSite::BusDrop,
        FaultSite::BusCorrupt,
        FaultSite::PguStall,
        FaultSite::PguFail,
        FaultSite::SltBitFlip,
        FaultSite::QccBitFlip,
        FaultSite::RbqStuck,
        FaultSite::ReadoutTimeout,
    ];

    /// The stable spec/metric name of the site.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::BusDrop => "bus_drop",
            FaultSite::BusCorrupt => "bus_corrupt",
            FaultSite::PguStall => "pgu_stall",
            FaultSite::PguFail => "pgu_fail",
            FaultSite::SltBitFlip => "slt_bitflip",
            FaultSite::QccBitFlip => "qcc_bitflip",
            FaultSite::RbqStuck => "rbq_stuck",
            FaultSite::ReadoutTimeout => "readout_timeout",
        }
    }

    fn index(self) -> usize {
        FaultSite::ALL
            .iter()
            .position(|&s| s == self)
            .expect("site is in ALL")
    }
}

/// A reproducible fault schedule: per-site rates, the RNG seed that makes
/// them deterministic, and the resilience-policy knobs the components
/// consult when reacting to injected faults.
///
/// The all-zero default plan is inert: [`FaultPlan::is_active`] is false
/// and a system configured with it behaves byte-identically to one with
/// no fault support at all.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-site SplitMix64 streams.
    pub seed: u64,
    /// Probability a bus transaction is dropped (per transfer).
    pub bus_drop: f64,
    /// Probability a bus transaction is corrupted (per transfer).
    pub bus_corrupt: f64,
    /// Probability a PGU dispatch stalls (per dispatch).
    pub pgu_stall: f64,
    /// Probability a PGU dispatch produces a bad pulse (per dispatch).
    pub pgu_fail: f64,
    /// Probability an SLT lookup observes a parity error (per lookup).
    pub slt_bitflip: f64,
    /// Probability a QCC `.measure` read sees a correctable flip (per read).
    pub qcc_bitflip: f64,
    /// Probability an issued RBQ tag gets stuck (per flow).
    pub rbq_stuck: f64,
    /// Probability a readout misses its deadline (per `q_acquire`).
    pub readout_timeout: f64,
    /// Retry budget per operation; exceeding it surfaces a typed error.
    pub max_attempts: u32,
    /// Base retry backoff in nanoseconds (doubles per attempt).
    pub backoff_ns: u64,
    /// RBQ watchdog: tags stuck longer than this are reclaimed (ns).
    pub watchdog_timeout_ns: u64,
    /// Extra controller-SRAM cycles a stalled PGU dispatch costs.
    pub pgu_stall_cycles: u64,
    /// Modelled cost of one readout re-arm, in nanoseconds.
    pub readout_penalty_ns: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA17,
            bus_drop: 0.0,
            bus_corrupt: 0.0,
            pgu_stall: 0.0,
            pgu_fail: 0.0,
            slt_bitflip: 0.0,
            qcc_bitflip: 0.0,
            rbq_stuck: 0.0,
            readout_timeout: 0.0,
            max_attempts: 4,
            backoff_ns: 50,
            watchdog_timeout_ns: 10_000,
            pgu_stall_cycles: 500,
            readout_penalty_ns: 300,
        }
    }
}

impl FaultPlan {
    /// A plan with every site at `rate` (policy knobs at defaults).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn all(rate: f64) -> Self {
        let mut plan = FaultPlan::default();
        for site in FaultSite::ALL {
            plan.set_rate(site, rate).expect("rate in [0, 1)");
        }
        plan
    }

    /// The injection rate configured for `site`.
    pub fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::BusDrop => self.bus_drop,
            FaultSite::BusCorrupt => self.bus_corrupt,
            FaultSite::PguStall => self.pgu_stall,
            FaultSite::PguFail => self.pgu_fail,
            FaultSite::SltBitFlip => self.slt_bitflip,
            FaultSite::QccBitFlip => self.qcc_bitflip,
            FaultSite::RbqStuck => self.rbq_stuck,
            FaultSite::ReadoutTimeout => self.readout_timeout,
        }
    }

    /// Sets the injection rate for `site`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError::RateOutOfRange`] if `rate` is not a
    /// finite probability in `[0, 1)` (1.0 is excluded: a certain fault
    /// would make geometric retry counts unbounded; NaN fails both
    /// bounds checks).
    pub fn set_rate(&mut self, site: FaultSite, rate: f64) -> Result<(), FaultSpecError> {
        if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
            return Err(FaultSpecError::RateOutOfRange {
                site: site.name(),
                rate,
            });
        }
        let slot = match site {
            FaultSite::BusDrop => &mut self.bus_drop,
            FaultSite::BusCorrupt => &mut self.bus_corrupt,
            FaultSite::PguStall => &mut self.pgu_stall,
            FaultSite::PguFail => &mut self.pgu_fail,
            FaultSite::SltBitFlip => &mut self.slt_bitflip,
            FaultSite::QccBitFlip => &mut self.qcc_bitflip,
            FaultSite::RbqStuck => &mut self.rbq_stuck,
            FaultSite::ReadoutTimeout => &mut self.readout_timeout,
        };
        *slot = rate;
        Ok(())
    }

    /// Builder-style rate update (see [`FaultPlan::set_rate`] for limits).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> Self {
        self.set_rate(site, rate).expect("rate in [0, 1)");
        self
    }

    /// Builder-style seed update.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when any site has a non-zero rate. An inactive plan must be
    /// behaviourally invisible.
    pub fn is_active(&self) -> bool {
        FaultSite::ALL.iter().any(|&s| self.rate(s) > 0.0)
    }

    /// The exponential backoff charged before retry number `attempt`
    /// (1-based): `backoff_ns << (attempt - 1)`, saturating.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(20);
        SimDuration::from_ns(self.backoff_ns.saturating_mul(1u64 << shift))
    }

    /// The RBQ watchdog timeout as a duration.
    pub fn watchdog_timeout(&self) -> SimDuration {
        SimDuration::from_ns(self.watchdog_timeout_ns)
    }

    /// The modelled cost of one readout re-arm.
    pub fn readout_penalty(&self) -> SimDuration {
        SimDuration::from_ns(self.readout_penalty_ns)
    }

    /// Parses a fault spec: comma- or newline-separated `key=value` pairs
    /// with `#`-to-end-of-line comments, so the same grammar serves both
    /// `--faults bus_drop=0.01,readout_timeout=0.05` on a command line and
    /// a small plan file. Keys are the eight site names, the shorthand
    /// `all` (sets every site), and the policy knobs `seed`,
    /// `max_attempts`, `backoff_ns`, `watchdog_timeout_ns`,
    /// `pgu_stall_cycles`, and `readout_penalty_ns`.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultSpecError`] naming the offending token on unknown
    /// keys, malformed numbers, or out-of-range rates, and
    /// [`FaultSpecError::Empty`] when the spec contains no pairs at all —
    /// an empty `--faults` argument or plan file is always a mistake, not
    /// a request for the default plan.
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut plan = FaultPlan::default();
        let mut pairs = 0usize;
        for raw_line in spec.lines() {
            let line = raw_line.split('#').next().unwrap_or("");
            for pair in line.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                pairs += 1;
                let (key, value) =
                    pair.split_once('=')
                        .ok_or_else(|| FaultSpecError::NotKeyValue {
                            token: pair.to_string(),
                        })?;
                let (key, value) = (key.trim(), value.trim());
                let int = |what: &str| -> Result<u64, FaultSpecError> {
                    value.parse::<u64>().map_err(|_| FaultSpecError::BadInt {
                        key: what.to_string(),
                        token: value.to_string(),
                    })
                };
                let rate = || -> Result<f64, FaultSpecError> {
                    value.parse::<f64>().map_err(|_| FaultSpecError::BadRate {
                        key: key.to_string(),
                        token: value.to_string(),
                    })
                };
                match key {
                    "seed" => plan.seed = int("seed")?,
                    "max_attempts" => plan.max_attempts = int("max_attempts")? as u32,
                    "backoff_ns" => plan.backoff_ns = int("backoff_ns")?,
                    "watchdog_timeout_ns" => plan.watchdog_timeout_ns = int("watchdog_timeout_ns")?,
                    "pgu_stall_cycles" => plan.pgu_stall_cycles = int("pgu_stall_cycles")?,
                    "readout_penalty_ns" => plan.readout_penalty_ns = int("readout_penalty_ns")?,
                    "all" => {
                        let r = rate()?;
                        for site in FaultSite::ALL {
                            plan.set_rate(site, r)?;
                        }
                    }
                    _ => {
                        let site = FaultSite::ALL
                            .into_iter()
                            .find(|s| s.name() == key)
                            .ok_or_else(|| FaultSpecError::UnknownKey {
                                token: key.to_string(),
                            })?;
                        plan.set_rate(site, rate()?)?;
                    }
                }
            }
        }
        if pairs == 0 {
            return Err(FaultSpecError::Empty);
        }
        Ok(plan)
    }
}

/// The runtime half of a [`FaultPlan`]: per-site RNG streams plus
/// checked/injected counters for the `faults.*` metrics namespace.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    streams: [u64; FaultSite::ALL.len()],
    checked: [u64; FaultSite::ALL.len()],
    injected: [u64; FaultSite::ALL.len()],
}

impl FaultInjector {
    /// Builds an injector; each site's stream is seeded independently so
    /// draws at one site never perturb another.
    pub fn new(plan: FaultPlan) -> Self {
        let streams = std::array::from_fn(|i| {
            let mut s = plan.seed ^ (i as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
            // Burn one round so nearby seeds decorrelate immediately.
            splitmix64(&mut s);
            s
        });
        FaultInjector {
            plan,
            streams,
            checked: [0; FaultSite::ALL.len()],
            injected: [0; FaultSite::ALL.len()],
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when any site can fire (see [`FaultPlan::is_active`]).
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// One Bernoulli trial at `site`; consumes exactly one draw.
    pub fn bernoulli(&mut self, site: FaultSite) -> bool {
        let i = site.index();
        self.checked[i] += 1;
        let hit = unit(&mut self.streams[i]) < self.plan.rate(site);
        if hit {
            self.injected[i] += 1;
        }
        hit
    }

    /// The number of consecutive failures before the first success at
    /// `site`, from exactly one draw: `k = max k with u < rate^k`. A zero
    /// rate always returns 0; the count is capped at 64 so a pathological
    /// draw cannot spin.
    pub fn geometric_failures(&mut self, site: FaultSite) -> u32 {
        let i = site.index();
        self.checked[i] += 1;
        let rate = self.plan.rate(site);
        let u = unit(&mut self.streams[i]);
        let mut k = 0u32;
        let mut threshold = rate;
        while u < threshold && k < 64 {
            k += 1;
            threshold *= rate;
        }
        self.injected[i] += u64::from(k);
        k
    }

    /// Decisions evaluated at `site` so far.
    pub fn checked(&self, site: FaultSite) -> u64 {
        self.checked[site.index()]
    }

    /// Faults actually injected at `site` so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()]
    }

    /// Faults injected across every site.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Derives the injector for one simulation shot: the same plan with
    /// its seed replaced by the `(seed, shot)` sub-stream seed and fresh
    /// counters.
    ///
    /// The derived injector's draws depend only on the parent plan's seed
    /// and the global shot index — never on how many draws the parent has
    /// already consumed or which thread evaluates the shot — so shot
    /// execution can be sharded across workers and still reproduce the
    /// serial fault schedule bit for bit. Fold the counters back with
    /// [`FaultInjector::absorb`] in canonical shot order.
    pub fn for_shot(&self, shot: u64) -> FaultInjector {
        FaultInjector::new(self.plan.with_seed(stream_seed(self.plan.seed, shot)))
    }

    /// Adds `other`'s checked/injected counters into this injector's,
    /// without touching the RNG streams. Counter addition is commutative,
    /// but callers absorb shards in canonical shot order anyway so the
    /// whole merge pipeline follows one ordering rule.
    pub fn absorb(&mut self, other: &FaultInjector) {
        for i in 0..FaultSite::ALL.len() {
            self.checked[i] += other.checked[i];
            self.injected[i] += other.injected[i];
        }
    }

    /// Registers `<prefix>.checked.<site>`, `<prefix>.injected.<site>`,
    /// and `<prefix>.injected.total` counters.
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        for site in FaultSite::ALL {
            m.counter(
                &format!("{prefix}.checked.{}", site.name()),
                self.checked(site),
            );
            m.counter(
                &format!("{prefix}.injected.{}", site.name()),
                self.injected(site),
            );
        }
        m.counter(&format!("{prefix}.injected.total"), self.injected_total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let mut inj = FaultInjector::new(plan);
        for site in FaultSite::ALL {
            assert!(!inj.bernoulli(site));
            assert_eq!(inj.geometric_failures(site), 0);
        }
        assert_eq!(inj.injected_total(), 0);
    }

    #[test]
    fn same_seed_same_draws() {
        let plan = FaultPlan::all(0.3).with_seed(99);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for _ in 0..500 {
            for site in FaultSite::ALL {
                assert_eq!(a.bernoulli(site), b.bernoulli(site));
                assert_eq!(a.geometric_failures(site), b.geometric_failures(site));
            }
        }
        for site in FaultSite::ALL {
            assert_eq!(a.injected(site), b.injected(site));
            assert_eq!(a.checked(site), b.checked(site));
        }
    }

    #[test]
    fn geometric_counts_are_pointwise_monotone_in_rate() {
        let low = FaultPlan::all(0.05).with_seed(7);
        let high = FaultPlan::all(0.4).with_seed(7);
        let mut a = FaultInjector::new(low);
        let mut b = FaultInjector::new(high);
        for _ in 0..2_000 {
            let ka = a.geometric_failures(FaultSite::BusDrop);
            let kb = b.geometric_failures(FaultSite::BusDrop);
            assert!(ka <= kb, "geometric count fell as rate rose");
        }
        assert!(b.injected(FaultSite::BusDrop) > a.injected(FaultSite::BusDrop));
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::default()
            .with_rate(FaultSite::ReadoutTimeout, 0.25)
            .with_seed(1);
        let mut inj = FaultInjector::new(plan);
        let n = 10_000;
        let mut hits = 0;
        for _ in 0..n {
            if inj.bernoulli(FaultSite::ReadoutTimeout) {
                hits += 1;
            }
        }
        let observed = hits as f64 / n as f64;
        assert!((observed - 0.25).abs() < 0.02, "observed {observed}");
        // Other sites untouched.
        assert_eq!(inj.checked(FaultSite::BusDrop), 0);
    }

    #[test]
    fn sites_have_independent_streams() {
        let plan = FaultPlan::all(0.5).with_seed(3);
        // Interleaving draws at other sites must not change this site's
        // sequence.
        let mut solo = FaultInjector::new(plan);
        let solo_seq: Vec<bool> = (0..100)
            .map(|_| solo.bernoulli(FaultSite::PguStall))
            .collect();
        let mut mixed = FaultInjector::new(plan);
        let mixed_seq: Vec<bool> = (0..100)
            .map(|_| {
                mixed.bernoulli(FaultSite::BusDrop);
                mixed.geometric_failures(FaultSite::QccBitFlip);
                mixed.bernoulli(FaultSite::PguStall)
            })
            .collect();
        assert_eq!(solo_seq, mixed_seq);
    }

    #[test]
    fn parse_round_trips_sites_and_knobs() {
        let plan = FaultPlan::parse(
            "bus_drop=0.01, readout_timeout=0.05\n# comment\nseed=77,max_attempts=6,backoff_ns=25",
        )
        .unwrap();
        assert_eq!(plan.rate(FaultSite::BusDrop), 0.01);
        assert_eq!(plan.rate(FaultSite::ReadoutTimeout), 0.05);
        assert_eq!(plan.rate(FaultSite::PguFail), 0.0);
        assert_eq!(plan.seed, 77);
        assert_eq!(plan.max_attempts, 6);
        assert_eq!(plan.backoff_ns, 25);

        let all = FaultPlan::parse("all=0.02").unwrap();
        for site in FaultSite::ALL {
            assert_eq!(all.rate(site), 0.02);
        }
        assert!(all.is_active());
    }

    #[test]
    fn parse_rejects_bad_specs_with_typed_errors() {
        assert_eq!(
            FaultPlan::parse("bus_drop"),
            Err(FaultSpecError::NotKeyValue {
                token: "bus_drop".into()
            })
        );
        assert_eq!(
            FaultPlan::parse("no_such_site=0.1"),
            Err(FaultSpecError::UnknownKey {
                token: "no_such_site".into()
            })
        );
        assert_eq!(
            FaultPlan::parse("bus_drop=1.5"),
            Err(FaultSpecError::RateOutOfRange {
                site: "bus_drop",
                rate: 1.5
            })
        );
        assert_eq!(
            FaultPlan::parse("bus_drop=-0.1"),
            Err(FaultSpecError::RateOutOfRange {
                site: "bus_drop",
                rate: -0.1
            })
        );
        assert_eq!(
            FaultPlan::parse("bus_drop=1.0"),
            Err(FaultSpecError::RateOutOfRange {
                site: "bus_drop",
                rate: 1.0
            })
        );
        assert_eq!(
            FaultPlan::parse("seed=abc"),
            Err(FaultSpecError::BadInt {
                key: "seed".into(),
                token: "abc".into()
            })
        );
        assert_eq!(
            FaultPlan::parse("bus_drop=zero"),
            Err(FaultSpecError::BadRate {
                key: "bus_drop".into(),
                token: "zero".into()
            })
        );
    }

    #[test]
    fn parse_rejects_nan_rates() {
        // NaN parses as a valid f64, so it must be caught by the range
        // check — and the error must carry the site it was destined for.
        match FaultPlan::parse("readout_timeout=NaN") {
            Err(FaultSpecError::RateOutOfRange { site, rate }) => {
                assert_eq!(site, "readout_timeout");
                assert!(rate.is_nan());
            }
            other => panic!("expected RateOutOfRange, got {other:?}"),
        }
        assert!(matches!(
            FaultPlan::parse("all=nan"),
            Err(FaultSpecError::RateOutOfRange { .. })
        ));
    }

    #[test]
    fn parse_rejects_empty_specs() {
        assert_eq!(FaultPlan::parse(""), Err(FaultSpecError::Empty));
        assert_eq!(FaultPlan::parse("  , ,\n"), Err(FaultSpecError::Empty));
        assert_eq!(
            FaultPlan::parse("# just a comment\n"),
            Err(FaultSpecError::Empty)
        );
        // The offending token survives into the rendered message so CLI
        // users see which entry to fix.
        let msg = FaultPlan::parse("bus_drop = 0.1, oops")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("oops"), "message must name the token: {msg}");
    }

    #[test]
    fn per_shot_injectors_are_order_independent() {
        let plan = FaultPlan::all(0.2).with_seed(0xFA17);
        let parent = FaultInjector::new(plan);
        // Shot 5's draws are identical whether derived before or after
        // shot 3's, and regardless of draws made in between.
        let mut early = parent.for_shot(5);
        let mut sibling = parent.for_shot(3);
        for _ in 0..50 {
            sibling.bernoulli(FaultSite::BusDrop);
        }
        let mut late = parent.for_shot(5);
        for _ in 0..50 {
            assert_eq!(
                early.bernoulli(FaultSite::QccBitFlip),
                late.bernoulli(FaultSite::QccBitFlip),
            );
        }
        // Distinct shots get distinct streams.
        let seq5: Vec<bool> = (0..64)
            .map(|_| early.bernoulli(FaultSite::BusDrop))
            .collect();
        let mut three = parent.for_shot(3);
        let seq3: Vec<bool> = (0..64)
            .map(|_| three.bernoulli(FaultSite::BusDrop))
            .collect();
        assert_ne!(seq5, seq3);
    }

    #[test]
    fn absorb_sums_counters_without_touching_streams() {
        let plan = FaultPlan::all(0.3).with_seed(11);
        let mut merged = FaultInjector::new(plan);
        let mut reference = FaultInjector::new(plan);
        let mut shard = FaultInjector::new(plan.with_seed(99));
        for _ in 0..100 {
            shard.bernoulli(FaultSite::BusDrop);
            shard.geometric_failures(FaultSite::ReadoutTimeout);
        }
        merged.absorb(&shard);
        assert_eq!(merged.checked(FaultSite::BusDrop), 100);
        assert_eq!(
            merged.injected(FaultSite::BusDrop),
            shard.injected(FaultSite::BusDrop)
        );
        assert_eq!(merged.injected_total(), shard.injected_total());
        // The absorbing injector's own streams are unperturbed.
        for _ in 0..50 {
            assert_eq!(
                merged.bernoulli(FaultSite::PguStall),
                reference.bernoulli(FaultSite::PguStall),
            );
        }
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let plan = FaultPlan::default();
        assert_eq!(plan.backoff(1), SimDuration::from_ns(50));
        assert_eq!(plan.backoff(2), SimDuration::from_ns(100));
        assert_eq!(plan.backoff(3), SimDuration::from_ns(200));
        assert!(plan.backoff(100) > SimDuration::ZERO);
    }
}
