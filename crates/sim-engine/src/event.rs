//! Deterministic timestamped event queue.
//!
//! The component models (controller pipeline, bus, SerDes) are simulated by
//! draining an [`EventQueue`]: events fire in timestamp order, and events
//! that share a timestamp fire in insertion order, so runs are fully
//! deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: ordered by time, then by insertion sequence.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, breaking ties by insertion order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// # Examples
///
/// ```
/// use qtenon_sim_engine::{EventQueue, SimTime, SimDuration};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::ZERO + SimDuration::from_ns(10), "b");
/// q.push(SimTime::ZERO + SimDuration::from_ns(10), "c");
/// q.push(SimTime::ZERO + SimDuration::from_ns(5), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    high_water: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the simulation clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            high_water: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    ///
    /// Scheduling in the past is a logic error in a component model.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the time of the last popped event.
    pub fn push(&mut self, time: SimTime, payload: E) {
        assert!(time >= self.now, "event scheduled in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        self.popped += 1;
        Some((ev.time, ev.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|ev| ev.time)
    }

    /// The time of the most recently popped event (time zero initially).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled on this queue.
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Total events dispatched (popped) from this queue.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// The deepest the pending-event queue has ever been.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(at(30), 3);
        q.push(at(10), 1);
        q.push(at(20), 2);
        assert_eq!(q.pop(), Some((at(10), 1)));
        assert_eq!(q.pop(), Some((at(20), 2)));
        assert_eq!(q.pop(), Some((at(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(at(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(at(7), ());
        q.pop();
        assert_eq!(q.now(), at(7));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(at(10), ());
        q.pop();
        q.push(at(5), ());
    }

    #[test]
    fn dispatch_stats_track_traffic() {
        let mut q = EventQueue::new();
        assert_eq!((q.pushed(), q.popped(), q.high_water()), (0, 0, 0));
        q.push(at(1), ());
        q.push(at(2), ());
        q.push(at(3), ());
        assert_eq!((q.pushed(), q.popped(), q.high_water()), (3, 0, 3));
        q.pop();
        q.pop();
        q.push(at(9), ());
        // High water remembers the historical peak, not the current depth.
        assert_eq!((q.pushed(), q.popped(), q.high_water()), (4, 2, 3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(at(4), ());
        q.push(at(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(at(2)));
    }
}
