//! Property-based tests for the simulation kernel's data structures.

use proptest::prelude::*;

use qtenon_sim_engine::{
    ClockDomain, EventQueue, Histogram, OpClass, OpCounter, SimDuration, SimTime, Tally,
};

proptest! {
    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::ZERO + SimDuration::from_ns(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut current = None;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time, "times must be non-decreasing");
            if current == Some(t) {
                // FIFO among equal timestamps: indices increase.
                prop_assert!(seen_at_time.last().is_none_or(|&prev| prev < idx));
            } else {
                current = Some(t);
                seen_at_time.clear();
            }
            seen_at_time.push(idx);
            last_time = t;
        }
    }

    #[test]
    fn duration_arithmetic_is_consistent(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let da = SimDuration::from_ps(a);
        let db = SimDuration::from_ps(b);
        prop_assert_eq!((da + db).as_ps(), a + b);
        prop_assert_eq!(da.saturating_sub(db).as_ps(), a.saturating_sub(b));
        prop_assert_eq!(da.max(db).as_ps(), a.max(b));
        prop_assert_eq!(da.min(db).as_ps(), a.min(b));
    }

    #[test]
    fn clock_cycles_round_trip(freq_mhz in 1.0f64..4_000.0, cycles in 1u64..1_000_000) {
        let clock = ClockDomain::from_mhz(freq_mhz);
        let d = clock.cycles(cycles);
        // cycles_in rounds up, so the round trip is exact on multiples.
        prop_assert_eq!(clock.cycles_in(d), cycles);
        // One picosecond more needs one more cycle.
        prop_assert_eq!(clock.cycles_in(d + SimDuration::from_ps(1)), cycles + 1);
    }

    #[test]
    fn op_counter_addition_is_commutative(
        a in prop::collection::vec(0u64..1_000, 5),
        b in prop::collection::vec(0u64..1_000, 5),
    ) {
        let mut ca = OpCounter::new();
        let mut cb = OpCounter::new();
        for (i, class) in OpClass::ALL.iter().enumerate() {
            ca.record(*class, a[i]);
            cb.record(*class, b[i]);
        }
        prop_assert_eq!(ca + cb, cb + ca);
        prop_assert_eq!((ca + cb).total(), ca.total() + cb.total());
        prop_assert_eq!(ca.scaled(3).total(), 3 * ca.total());
    }

    #[test]
    fn tally_bounds_hold(samples in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut t = Tally::new();
        for &s in &samples {
            t.observe(s);
        }
        let mean = t.mean().unwrap();
        prop_assert!(t.min().unwrap() <= mean + 1e-9);
        prop_assert!(mean <= t.max().unwrap() + 1e-9);
        prop_assert_eq!(t.len() as usize, samples.len());
    }

    #[test]
    fn histogram_count_equals_bucket_sum(samples in prop::collection::vec(0u64..u64::MAX, 0..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count() as usize, samples.len());
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
    }

    #[test]
    fn histogram_percentiles_are_monotone(samples in prop::collection::vec(0u64..1_000_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let p50 = h.p50().unwrap();
        let p90 = h.p90().unwrap();
        let p99 = h.p99().unwrap();
        let max = h.max().unwrap();
        prop_assert!(p50 <= p90, "p50={p50} p90={p90}");
        prop_assert!(p90 <= p99, "p90={p90} p99={p99}");
        prop_assert!(p99 <= max, "p99={p99} max={max}");
        prop_assert!(h.min().unwrap() <= p50);
    }

    #[test]
    fn histogram_merge_equals_union(
        a in prop::collection::vec(0u64..u64::MAX, 0..100),
        b in prop::collection::vec(0u64..u64::MAX, 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut union = Histogram::new();
        for &s in &a {
            ha.record(s);
            union.record(s);
        }
        for &s in &b {
            hb.record(s);
            union.record(s);
        }
        ha.merge(&hb);
        // Merging equals recording the union, bucket for bucket.
        prop_assert_eq!(ha, union);
    }
}
