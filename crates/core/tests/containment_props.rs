//! Differential determinism tests for the fault-containment layer: the
//! same fleet — including an actively fault-injected job, a scripted
//! flake, a deliberately-panicking job, and a deadline-bounded job —
//! must produce a byte-identical outcome ledger at pool widths 1, 2,
//! and 8, for every retry budget. With zero retries and no deadlines
//! the new machinery must be invisible: artefacts byte-identical to
//! plain completed runs.

use qtenon_core::jobs::{attempt_seed, run_standalone, BatchScheduler, JobId, JobOutcome, JobSpec};
use qtenon_sim_engine::{FaultPlan, SimDuration};
use qtenon_workloads::WorkloadKind;

/// A fleet that exercises every arm of the outcome machine.
fn chaos_fleet(budget: u32) -> Vec<JobSpec> {
    vec![
        JobSpec::new("clean-vqe", WorkloadKind::Vqe, 8)
            .with_iterations(2)
            .with_shots(48)
            .with_retry_budget(budget),
        JobSpec::new("faulty-qaoa", WorkloadKind::Qaoa, 8)
            .with_iterations(2)
            .with_shots(48)
            .with_priority(5)
            .with_retry_budget(budget)
            .with_faults(FaultPlan::all(0.02).with_seed(0xFA17)),
        JobSpec::new("flaky-qnn", WorkloadKind::Qnn, 8)
            .with_iterations(1)
            .with_shots(48)
            .with_retry_budget(budget)
            .with_chaos_fail_attempts(1),
        JobSpec::new("panic-vqe", WorkloadKind::Vqe, 8)
            .with_retry_budget(budget)
            .with_chaos_panic(),
        JobSpec::new("deadline-qaoa", WorkloadKind::Qaoa, 8)
            .with_iterations(8)
            .with_shots(48)
            .with_retry_budget(budget)
            .with_deadline(SimDuration::from_ns(1)),
    ]
}

fn scheduler(jobs: &[JobSpec]) -> BatchScheduler {
    let mut sched = BatchScheduler::new(42);
    for job in jobs {
        sched.submit(job.clone()).expect("fleet fits the queue");
    }
    sched
}

#[test]
fn ledger_is_byte_identical_at_widths_1_2_8_for_every_budget() {
    for budget in [0u32, 3] {
        let sched = scheduler(&chaos_fleet(budget));
        let ledgers: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&w| sched.run(w).expect("batch run succeeds").ledger())
            .collect();
        assert_eq!(
            ledgers[0], ledgers[1],
            "budget {budget}: width 2 ledger diverged from width 1"
        );
        assert_eq!(
            ledgers[0], ledgers[2],
            "budget {budget}: width 8 ledger diverged from width 1"
        );
    }
}

#[test]
fn batch_with_panicking_and_deadline_jobs_attributes_both_and_keeps_survivors_exact() {
    let jobs = chaos_fleet(3);
    let sched = scheduler(&jobs);
    for width in [1usize, 8] {
        let batch = sched.run(width).expect("panics are contained");
        assert_eq!(batch.results.len(), jobs.len());
        // Both failures are attributed, not fatal.
        assert!(
            matches!(&batch.results[3].outcome, JobOutcome::Quarantined { reason, .. }
                if reason.contains("panicked")),
            "width {width}: {:?}",
            batch.results[3].outcome
        );
        assert!(
            matches!(
                &batch.results[4].outcome,
                JobOutcome::TimedOut {
                    completed_iterations,
                    requested_iterations: 8,
                    ..
                } if *completed_iterations < 8
            ),
            "width {width}: {:?}",
            batch.results[4].outcome
        );
        assert_eq!(batch.completed(), 3, "width {width}");
        // Healthy jobs' artefacts are byte-identical to standalone runs
        // of the same spec at the attempt that produced them.
        for idx in [0usize, 1, 2] {
            let seed = sched.seed_of(JobId::from_index(idx)).expect("admitted");
            let (artifacts, attempts) = match &batch.results[idx].outcome {
                JobOutcome::Completed {
                    artifacts,
                    attempts,
                } => (artifacts, *attempts),
                other => panic!("job {idx} should complete, got {other:?}"),
            };
            let mut bare = jobs[idx].clone();
            bare.chaos_fail_attempts = 0;
            let reference = run_standalone(&bare, attempt_seed(seed, attempts - 1), 1)
                .expect("standalone run succeeds");
            assert_eq!(
                artifacts.report, reference.report,
                "width {width} job {idx}"
            );
            assert_eq!(
                artifacts.metrics_json, reference.metrics_json,
                "width {width} job {idx}"
            );
        }
    }
}

#[test]
fn zero_retry_zero_deadline_fleet_is_byte_identical_to_the_plain_path() {
    // Strip every containment knob: the fleet must behave exactly like
    // the pre-containment scheduler — all jobs complete on attempt 1
    // with artefacts equal to standalone runs at the admission seed.
    let jobs: Vec<JobSpec> = vec![
        JobSpec::new("vqe-base", WorkloadKind::Vqe, 8)
            .with_iterations(2)
            .with_shots(48),
        JobSpec::new("qaoa-faulty", WorkloadKind::Qaoa, 8)
            .with_iterations(2)
            .with_shots(48)
            .with_faults(FaultPlan::all(0.02).with_seed(0xFA17)),
        JobSpec::new("qnn-tail", WorkloadKind::Qnn, 8)
            .with_iterations(1)
            .with_shots(48)
            .with_priority(2),
    ];
    for job in &jobs {
        assert_eq!(job.retry_budget, 0);
        assert!(job.deadline.is_none());
    }
    let sched = scheduler(&jobs);
    for width in [1usize, 2, 8] {
        let batch = sched.run(width).expect("batch run succeeds");
        for (i, result) in batch.results.iter().enumerate() {
            let seed = sched.seed_of(JobId::from_index(i)).expect("admitted");
            // Attempt 0 uses the admission seed directly, so the plain
            // path is bit-for-bit what it was before containment.
            assert_eq!(attempt_seed(seed, 0), seed);
            match &result.outcome {
                JobOutcome::Completed {
                    artifacts,
                    attempts: 1,
                } => {
                    let reference =
                        run_standalone(&jobs[i], seed, 1).expect("standalone run succeeds");
                    assert_eq!(artifacts.report, reference.report, "width {width} job {i}");
                    assert_eq!(
                        artifacts.metrics_json, reference.metrics_json,
                        "width {width} job {i}"
                    );
                }
                other => panic!("width {width} job {i}: expected 1-attempt completion, {other:?}"),
            }
        }
    }
}

#[test]
fn retry_budget_changes_recovery_but_never_survivor_artifacts() {
    // The flake fails its first attempt. With budget 0 it fails for
    // good; with budget 3 it recovers on attempt 2 — and the healthy
    // jobs' artefacts are identical in both worlds.
    let no_budget = scheduler(&chaos_fleet(0)).run(4).expect("runs");
    let budgeted = scheduler(&chaos_fleet(3)).run(4).expect("runs");

    match &no_budget.results[2].outcome {
        JobOutcome::Failed { attempts: 1, .. } => {}
        other => panic!("budget 0 flake: {other:?}"),
    }
    match &budgeted.results[2].outcome {
        JobOutcome::Completed { attempts: 2, .. } => {}
        other => panic!("budget 3 flake: {other:?}"),
    }
    assert_eq!(no_budget.total_retries(), 0);
    assert!(budgeted.total_retries() >= 1);
    for idx in [0usize, 1] {
        assert_eq!(
            no_budget.results[idx].outcome.artifacts().expect("clean"),
            budgeted.results[idx].outcome.artifacts().expect("clean"),
            "budget must not perturb healthy job {idx}"
        );
    }
}
