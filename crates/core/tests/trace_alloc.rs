//! Zero-allocation contract for the hot-path trace recorders.
//!
//! Every `Trace::record*` helper takes `impl Into<Cow<'static, str>>`,
//! so a `&'static str` label is borrowed, never copied, and the interned
//! `rbq_flow_name`/`rbq_issue_name` tables cover the per-tag flow labels
//! — recording into pre-reserved capacity must therefore perform zero
//! heap allocations per event. A counting global allocator pins that
//! down; the file holds a single `#[test]` so no sibling test's
//! allocations race the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};

use qtenon_core::trace::{rbq_flow_name, rbq_issue_name, Trace, TraceLane};
use qtenon_sim_engine::{SimDuration, SimTime};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn recording_static_names_into_reserved_capacity_allocates_nothing() {
    const EVENTS: usize = 256;
    // 6 recorder calls per loop turn.
    let mut trace = Trace::with_capacity(6 * EVENTS);

    // The interned tables hand out borrowed labels for tags below their
    // size; anything beyond falls back to an owned string.
    assert!(matches!(rbq_flow_name(7), Cow::Borrowed(_)));
    assert!(matches!(rbq_issue_name(7), Cow::Borrowed(_)));
    assert!(matches!(rbq_flow_name(200), Cow::Owned(_)));

    let before = allocations();
    for i in 0..EVENTS {
        let at = SimTime::ZERO + SimDuration::from_ns(i as u64);
        let tag = (i % 32) as u8;
        trace.record("q_run", TraceLane::QuantumChip, at, SimDuration::from_ns(5));
        trace.record_instant("retry", TraceLane::Host, at);
        trace.record_counter("rbq_depth", TraceLane::Communication, at, i as f64);
        trace.record_flow_start(rbq_flow_name(tag), TraceLane::QuantumChip, at, tag as u64);
        trace.record_flow_step(
            rbq_issue_name(tag),
            TraceLane::Communication,
            at,
            tag as u64,
        );
        trace.record_flow_end(rbq_flow_name(tag), TraceLane::Host, at, tag as u64);
    }
    let delta = allocations() - before;

    assert_eq!(trace.len(), 6 * EVENTS);
    assert_eq!(
        delta, 0,
        "hot-path recording allocated {delta} time(s) for {EVENTS} turns"
    );

    // Growth beyond the reservation is allowed to allocate — but only
    // for the vector, never per-label.
    let before = allocations();
    trace.record(
        "overflow",
        TraceLane::QuantumChip,
        SimTime::ZERO,
        SimDuration::ZERO,
    );
    assert!(allocations() - before <= 1);
}
