//! Differential determinism tests for the causal critical-path
//! analyzer.
//!
//! The contract (DESIGN.md §11): the [`CritPathReport`] in a
//! `RunReport` — the who-blocks-whom table `qtenon run --critpath`
//! prints and every `critpath.edge.*` metric — derives purely from
//! simulated completion times, so it is byte-identical across
//! `--threads`, invisible to zero-rate fault plans, and identical
//! whether a job runs inside a batch fleet or standalone. These tests
//! enforce all three axes on rendered bytes, not just parsed values.

use qtenon_core::config::{CoreModel, QtenonConfig};
use qtenon_core::jobs::{run_standalone, BatchScheduler, JobId, JobSpec};
use qtenon_core::report::RunReport;
use qtenon_core::vqa::VqaRunner;
use qtenon_sim_engine::{FaultPlan, MetricsRegistry};
use qtenon_workloads::{SpsaOptimizer, Workload, WorkloadKind};

/// Thread count for the sharded leg: `QTENON_THREADS` when set (the CI
/// matrix pins 1 and 4), otherwise 4.
fn sharded_threads() -> usize {
    std::env::var("QTENON_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Runs a small VQE and returns the report, the rendered critical-path
/// table (exactly what `qtenon run --critpath` prints), and the
/// metrics-JSON artefact (exactly what `--metrics` writes).
fn run_at(threads: usize, faults: Option<FaultPlan>, seed: u64) -> (RunReport, String, String) {
    let mut config = QtenonConfig::table4(8, CoreModel::Rocket)
        .expect("valid config")
        .with_seed(seed)
        .with_threads(threads);
    if let Some(plan) = faults {
        config = config.with_faults(plan);
    }
    let workload = Workload::benchmark(WorkloadKind::Vqe, 8, seed).expect("workload");
    let mut runner = VqaRunner::new(config, workload).expect("runner");
    let report = runner
        .run(&mut SpsaOptimizer::new(seed), 2, 96)
        .expect("run succeeds");
    let mut m = MetricsRegistry::new();
    runner.export_metrics(&mut m);
    let rendered = report.critpath.render();
    (report, rendered, m.snapshot().to_json())
}

#[test]
fn critpath_byte_identical_across_thread_counts() {
    for seed in [1u64, 42] {
        let (serial, serial_table, serial_json) = run_at(1, None, seed);
        let (sharded, sharded_table, sharded_json) = run_at(sharded_threads(), None, seed);
        assert_eq!(serial_table, sharded_table, "seed {seed}");
        assert_eq!(serial.critpath, sharded.critpath, "seed {seed}");
        assert_eq!(serial_json, sharded_json, "seed {seed}");
    }
}

#[test]
fn zero_rate_fault_plan_leaves_critpath_untouched() {
    let (clean, clean_table, clean_json) = run_at(1, None, 42);
    // A plan with a seed but all-zero rates must be behaviourally
    // invisible to the causal chain.
    let zeroed = FaultPlan::default().with_seed(99);
    let (faulted, faulted_table, faulted_json) = run_at(1, Some(zeroed), 42);
    assert_eq!(clean.critpath, faulted.critpath);
    assert_eq!(clean_table, faulted_table);
    assert_eq!(clean_json, faulted_json);
    // Both axes at once: threads and the zero-rate plan together.
    let (both, both_table, _) = run_at(sharded_threads(), Some(zeroed), 42);
    assert_eq!(clean.critpath, both.critpath);
    assert_eq!(clean_table, both_table);
}

#[test]
fn active_fault_plan_reproduces_its_own_critpath() {
    // An active plan may legitimately change the chain (retries extend
    // completion times) but must do so deterministically.
    let plan = FaultPlan::all(0.02).with_seed(0xFA17);
    let (a, a_table, a_json) = run_at(1, Some(plan), 7);
    let (b, b_table, b_json) = run_at(sharded_threads(), Some(plan), 7);
    assert!(!a.critpath.is_empty());
    assert_eq!(a.critpath, b.critpath);
    assert_eq!(a_table, b_table);
    assert_eq!(a_json, b_json);
}

#[test]
fn batch_and_standalone_jobs_agree_on_the_critpath() {
    let jobs = vec![
        JobSpec::new("vqe-a", WorkloadKind::Vqe, 8)
            .with_iterations(2)
            .with_shots(48),
        JobSpec::new("qaoa-b", WorkloadKind::Qaoa, 8)
            .with_iterations(1)
            .with_shots(48)
            .with_seed(0xBEEF),
        JobSpec::new("qaoa-faulty", WorkloadKind::Qaoa, 8)
            .with_iterations(1)
            .with_shots(48)
            .with_faults(FaultPlan::all(0.02).with_seed(0xFA17)),
    ];
    let mut sched = BatchScheduler::new(42);
    for job in &jobs {
        sched.submit(job.clone()).expect("fleet fits");
    }
    let references: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let seed = sched.seed_of(JobId::from_index(i)).expect("admitted");
            run_standalone(spec, seed, 1).expect("standalone run succeeds")
        })
        .collect();
    for threads in [1usize, 4] {
        let batch = sched.run(threads).expect("batch run succeeds");
        for (i, result) in batch.results.iter().enumerate() {
            let artefacts = result.outcome.artifacts().expect("job completed");
            assert_eq!(
                artefacts.report.critpath, references[i].report.critpath,
                "job {} critpath differs from standalone at pool width {threads}",
                result.name
            );
            assert_eq!(
                artefacts.report.critpath.render(),
                references[i].report.critpath.render(),
                "job {} rendered table differs at pool width {threads}",
                result.name
            );
        }
    }
}

#[test]
fn critpath_covers_the_canonical_edges_and_exports_metrics() {
    let (report, rendered, json) = run_at(1, None, 42);
    assert!(!report.critpath.is_empty());
    // Host classical work closes the loop on readout->host; the
    // quantum round-trip appears as pipeline->chip and chip->readout.
    for edge in ["readout->host", "pipeline->chip", "chip->readout"] {
        let row = report.critpath.row(edge);
        assert!(row.is_some(), "missing edge {edge} in {rendered}");
    }
    // The rendered table ends with the per-component section whose
    // shares attribute 100% of the on-path time.
    assert!(rendered.contains("component"));
    // The critpath namespace made it into the metrics artefact.
    assert!(json.contains("\"critpath.edge.pipeline->chip.count\""));
    assert!(json.contains("\"critpath.edge.readout->host.sim_total_ns\""));
}
