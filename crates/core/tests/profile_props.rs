//! Differential determinism tests for the latency-attribution profiler.
//!
//! The contract (DESIGN.md §10): sim-time spans — the `RunReport` phase
//! table and every `profile.*` metric — are byte-identical across
//! `--threads` and across `--profile` on/off, because wall-clock data
//! lives in a separate, explicitly unstable section that is never
//! exported. These tests enforce both axes on rendered bytes, not just
//! parsed values, so `qtenon run --profile` output is covered too.

use qtenon_core::config::{CoreModel, QtenonConfig};
use qtenon_core::report::RunReport;
use qtenon_core::vqa::VqaRunner;
use qtenon_sim_engine::MetricsRegistry;
use qtenon_workloads::{SpsaOptimizer, Workload, WorkloadKind};

/// Thread count for the sharded leg: `QTENON_THREADS` when set (the CI
/// matrix pins 1 and 4), otherwise 4.
fn sharded_threads() -> usize {
    std::env::var("QTENON_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Runs a small VQE and returns the report, the rendered phase table
/// (exactly what `qtenon run --profile` prints), and the metrics-JSON
/// artefact (exactly what `--metrics` writes).
fn run_at(threads: usize, profile: bool, seed: u64) -> (RunReport, String, String) {
    let config = QtenonConfig::table4(8, CoreModel::Rocket)
        .expect("valid config")
        .with_seed(seed)
        .with_threads(threads)
        .with_profile(profile);
    let workload = Workload::benchmark(WorkloadKind::Vqe, 8, seed).expect("workload");
    let mut runner = VqaRunner::new(config, workload).expect("runner");
    let report = runner
        .run(&mut SpsaOptimizer::new(seed), 2, 96)
        .expect("run succeeds");
    let mut m = MetricsRegistry::new();
    runner.export_metrics(&mut m);
    let rendered = report.phases.render();
    (report, rendered, m.snapshot().to_json())
}

#[test]
fn phase_table_byte_identical_across_thread_counts() {
    for seed in [1u64, 42] {
        let (serial, serial_table, serial_json) = run_at(1, false, seed);
        let (sharded, sharded_table, sharded_json) = run_at(sharded_threads(), false, seed);
        assert_eq!(serial_table, sharded_table, "seed {seed}");
        assert_eq!(serial.phases, sharded.phases, "seed {seed}");
        assert_eq!(serial_json, sharded_json, "seed {seed}");
    }
}

#[test]
fn profile_flag_never_changes_reports_or_metrics() {
    let (off_report, off_table, off_json) = run_at(1, false, 42);
    let (on_report, on_table, on_json) = run_at(1, true, 42);
    assert_eq!(off_report, on_report);
    assert_eq!(off_table, on_table);
    assert_eq!(off_json, on_json);
    // Both axes at once: threads and profile flipped together.
    let (both_report, both_table, both_json) = run_at(sharded_threads(), true, 42);
    assert_eq!(off_report, both_report);
    assert_eq!(off_table, both_table);
    assert_eq!(off_json, both_json);
}

#[test]
fn phase_attribution_is_consistent_with_the_breakdown() {
    let (report, rendered, json) = run_at(1, false, 42);
    assert!(!report.phases.is_empty());
    // The quantum-execute phase is the breakdown's quantum time,
    // span-for-span: 2 iterations × 2 SPSA evaluations.
    let quantum = report.phases.row("vqa.quantum_execute").expect("phase row");
    assert_eq!(quantum.count, 4);
    assert_eq!(quantum.total_ns, report.breakdown.quantum.as_ps() / 1_000);
    // One optimizer step per iteration.
    assert_eq!(
        report.phases.row("vqa.optimizer_step").expect("row").count,
        2
    );
    // The rendered table carries every row plus the total line, and the
    // profile namespace made it into the metrics artefact.
    assert_eq!(rendered.lines().count(), report.phases.rows.len() + 2);
    assert!(json.contains("\"profile.vqa.quantum_execute.sim_total_ns\""));
    assert!(json.contains("\"profile.chip.execute.count\""));
    // Wall-clock never leaks into stable output.
    assert!(!json.contains("wall"));
    assert!(!rendered.contains("wall"));
}

#[test]
fn merged_reports_merge_phase_tables() {
    let (a, _, _) = run_at(1, false, 1);
    let (b, _, _) = run_at(1, false, 2);
    let mut merged = a.clone();
    merged.merge(&b);
    let row =
        |r: &RunReport, name: &str| r.phases.row(name).map(|p| (p.count, p.total_ns)).unwrap();
    let (ca, ta) = row(&a, "vqa.pulse_gen");
    let (cb, tb) = row(&b, "vqa.pulse_gen");
    assert_eq!(row(&merged, "vqa.pulse_gen"), (ca + cb, ta + tb));
}
