//! Differential determinism tests for the latency-attribution profiler.
//!
//! The contract (DESIGN.md §10): sim-time spans — the `RunReport` phase
//! table and every `profile.*` metric — are byte-identical across
//! `--threads` and across `--profile` on/off, because wall-clock data
//! lives in a separate, explicitly unstable section that is never
//! exported. These tests enforce both axes on rendered bytes, not just
//! parsed values, so `qtenon run --profile` output is covered too.

use qtenon_core::config::{CoreModel, QtenonConfig};
use qtenon_core::report::RunReport;
use qtenon_core::vqa::VqaRunner;
use qtenon_sim_engine::MetricsRegistry;
use qtenon_workloads::{SpsaOptimizer, Workload, WorkloadKind};

/// Thread count for the sharded leg: `QTENON_THREADS` when set (the CI
/// matrix pins 1 and 4), otherwise 4.
fn sharded_threads() -> usize {
    std::env::var("QTENON_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Runs a small VQE and returns the report, the rendered phase table
/// (exactly what `qtenon run --profile` prints), and the metrics-JSON
/// artefact (exactly what `--metrics` writes).
fn run_at(threads: usize, profile: bool, seed: u64) -> (RunReport, String, String) {
    let config = QtenonConfig::table4(8, CoreModel::Rocket)
        .expect("valid config")
        .with_seed(seed)
        .with_threads(threads)
        .with_profile(profile);
    let workload = Workload::benchmark(WorkloadKind::Vqe, 8, seed).expect("workload");
    let mut runner = VqaRunner::new(config, workload).expect("runner");
    let report = runner
        .run(&mut SpsaOptimizer::new(seed), 2, 96)
        .expect("run succeeds");
    let mut m = MetricsRegistry::new();
    runner.export_metrics(&mut m);
    let rendered = report.phases.render();
    (report, rendered, m.snapshot().to_json())
}

#[test]
fn phase_table_byte_identical_across_thread_counts() {
    for seed in [1u64, 42] {
        let (serial, serial_table, serial_json) = run_at(1, false, seed);
        let (sharded, sharded_table, sharded_json) = run_at(sharded_threads(), false, seed);
        assert_eq!(serial_table, sharded_table, "seed {seed}");
        assert_eq!(serial.phases, sharded.phases, "seed {seed}");
        assert_eq!(serial_json, sharded_json, "seed {seed}");
    }
}

#[test]
fn profile_flag_never_changes_reports_or_metrics() {
    let (off_report, off_table, off_json) = run_at(1, false, 42);
    let (on_report, on_table, on_json) = run_at(1, true, 42);
    assert_eq!(off_report, on_report);
    assert_eq!(off_table, on_table);
    assert_eq!(off_json, on_json);
    // Both axes at once: threads and profile flipped together.
    let (both_report, both_table, both_json) = run_at(sharded_threads(), true, 42);
    assert_eq!(off_report, both_report);
    assert_eq!(off_table, both_table);
    assert_eq!(off_json, both_json);
}

#[test]
fn phase_attribution_is_consistent_with_the_breakdown() {
    let (report, rendered, json) = run_at(1, false, 42);
    assert!(!report.phases.is_empty());
    // The quantum-execute phase is the breakdown's quantum time,
    // span-for-span: 2 iterations × 2 SPSA evaluations.
    let quantum = report.phases.row("vqa.quantum_execute").expect("phase row");
    assert_eq!(quantum.count, 4);
    assert_eq!(quantum.total_ns, report.breakdown.quantum.as_ps() / 1_000);
    // One optimizer step per iteration.
    assert_eq!(
        report.phases.row("vqa.optimizer_step").expect("row").count,
        2
    );
    // The rendered table carries every row plus the total line, and the
    // profile namespace made it into the metrics artefact.
    assert_eq!(rendered.lines().count(), report.phases.rows.len() + 2);
    assert!(json.contains("\"profile.vqa.quantum_execute.sim_total_ns\""));
    assert!(json.contains("\"profile.chip.execute.count\""));
    // Wall-clock never leaks into stable output.
    assert!(!json.contains("wall"));
    assert!(!rendered.contains("wall"));
}

/// The DES occupancy gauges reach the Prometheus exporter (not just
/// the JSON artefact), and every exported histogram's cumulative
/// `le`-series is internally consistent: the `+Inf` bucket equals
/// `_count`, and finite cumulative counts never exceed it.
#[test]
fn des_gauges_export_to_prometheus_with_cumulative_histograms() {
    let config = QtenonConfig::table4(8, CoreModel::Rocket)
        .expect("valid config")
        .with_seed(42);
    let workload = Workload::benchmark(WorkloadKind::Vqe, 8, 42).expect("workload");
    let mut runner = VqaRunner::new(config, workload).expect("runner");
    runner
        .run(&mut SpsaOptimizer::new(42), 2, 96)
        .expect("run succeeds");
    let mut m = MetricsRegistry::new();
    runner.export_metrics(&mut m);
    let snapshot = m.snapshot();
    let json = snapshot.to_json();
    let prom = snapshot.to_prometheus();
    for key in ["profile.des.high_water", "profile.des.queue_depth"] {
        assert!(
            json.contains(&format!("\"{key}\"")),
            "{key} missing from JSON"
        );
    }
    for name in ["profile_des_high_water", "profile_des_queue_depth"] {
        assert!(
            prom.lines().any(|l| l.starts_with(&format!("{name} "))),
            "{name} missing from Prometheus output:\n{prom}"
        );
    }
    // Cumulative-histogram consistency, checked on the exporter's own
    // output: per metric, finite le-buckets are non-decreasing and the
    // final +Inf bucket equals the _count sample.
    let mut inf_counts = std::collections::BTreeMap::new();
    let mut last_finite = std::collections::BTreeMap::new();
    let mut counts = std::collections::BTreeMap::new();
    let mut checked = 0usize;
    for line in prom.lines() {
        if let Some((head, v)) = line.rsplit_once(' ') {
            let v: u64 = match v.parse() {
                Ok(v) => v,
                Err(_) => continue,
            };
            if let Some(name) = head.strip_suffix("_bucket{le=\"+Inf\"}") {
                inf_counts.insert(name.to_string(), v);
            } else if let Some((name, _)) = head.split_once("_bucket{le=\"") {
                let prev = last_finite.entry(name.to_string()).or_insert(0u64);
                assert!(v >= *prev, "non-monotone cumulative bucket: {line}");
                *prev = v;
            } else if let Some(name) = head.strip_suffix("_count") {
                counts.insert(name.to_string(), v);
            }
        }
    }
    for (name, inf) in &inf_counts {
        assert_eq!(counts.get(name), Some(inf), "{name}: +Inf != _count");
        if let Some(finite) = last_finite.get(name) {
            assert!(
                finite <= inf,
                "{name}: finite cumulative {finite} > +Inf {inf}"
            );
        }
        checked += 1;
    }
    assert!(checked > 0, "no histograms found in Prometheus output");
}

/// Empty-run guard: zero-iteration and zero-shot runs must not leak
/// NaN into any rendered table or metrics artefact, and must render
/// byte-stable output (including the fixed empty-table placeholders).
#[test]
fn zero_iteration_and_zero_shot_runs_render_stable_tables() {
    let run = |iterations: usize, shots: u64| {
        let config = QtenonConfig::table4(8, CoreModel::Rocket)
            .expect("valid config")
            .with_seed(1);
        let workload = Workload::benchmark(WorkloadKind::Vqe, 8, 1).expect("workload");
        let mut runner = VqaRunner::new(config, workload).expect("runner");
        let report = runner
            .run(&mut SpsaOptimizer::new(1), iterations, shots)
            .expect("degenerate run still succeeds");
        let mut m = MetricsRegistry::new();
        runner.export_metrics(&mut m);
        let snapshot = m.snapshot();
        (
            report.phases.render(),
            report.critpath.render(),
            snapshot.to_json(),
            snapshot.to_prometheus(),
            snapshot.to_text(),
        )
    };
    for (iters, shots) in [(0usize, 0u64), (0, 16), (1, 0)] {
        let first = run(iters, shots);
        let second = run(iters, shots);
        assert_eq!(first, second, "iterations={iters} shots={shots}");
        let (phases, critpath, json, prom, text) = first;
        for artefact in [&phases, &critpath, &json, &prom, &text] {
            assert!(
                !artefact.contains("NaN") && !artefact.contains("inf"),
                "iterations={iters} shots={shots}: non-finite leak in\n{artefact}"
            );
        }
    }
}

/// Tables with no rows render fixed placeholder bytes, never a bare
/// header or a NaN-percentile row.
#[test]
fn empty_tables_render_fixed_placeholders() {
    use qtenon_sim_engine::{CritPathReport, PhaseTable};
    assert_eq!(PhaseTable::default().render(), "no phases recorded\n");
    assert_eq!(
        CritPathReport::default().render(),
        "no critical path recorded\n"
    );
}

#[test]
fn merged_reports_merge_phase_tables() {
    let (a, _, _) = run_at(1, false, 1);
    let (b, _, _) = run_at(1, false, 2);
    let mut merged = a.clone();
    merged.merge(&b);
    let row =
        |r: &RunReport, name: &str| r.phases.row(name).map(|p| (p.count, p.total_ns)).unwrap();
    let (ca, ta) = row(&a, "vqa.pulse_gen");
    let (cb, tb) = row(&b, "vqa.pulse_gen");
    assert_eq!(row(&merged, "vqa.pulse_gen"), (ca + cb, ta + tb));
}
