//! Differential determinism tests for the multi-job batch scheduler:
//! the same fleet at pool widths 1, 2, and 8 must produce, for every
//! job, a [`RunReport`] and metrics-JSON export byte-identical to
//! running that job standalone — including the job that runs under an
//! active fault plan. Fleet wall-clock observables (`jobs.*`) are
//! explicitly outside this contract.

use qtenon_core::jobs::{run_standalone, BatchScheduler, JobError, JobId, JobOptimizer, JobSpec};
use qtenon_core::CoreModel;
use qtenon_sim_engine::FaultPlan;
use qtenon_workloads::WorkloadKind;

/// A mixed fleet: three workload kinds, both cores, both optimizers,
/// three priority levels, explicit and derived seeds, and one job with
/// active fault injection.
fn fleet() -> Vec<JobSpec> {
    vec![
        JobSpec::new("vqe-base", WorkloadKind::Vqe, 8)
            .with_iterations(2)
            .with_shots(48),
        JobSpec::new("qaoa-hot", WorkloadKind::Qaoa, 8)
            .with_iterations(2)
            .with_shots(48)
            .with_priority(7)
            .with_core(CoreModel::BoomLarge),
        JobSpec::new("qnn-gd", WorkloadKind::Qnn, 8)
            .with_iterations(1)
            .with_shots(48)
            .with_optimizer(JobOptimizer::Gd),
        JobSpec::new("vqe-seeded", WorkloadKind::Vqe, 8)
            .with_iterations(1)
            .with_shots(48)
            .with_seed(0xDEAD),
        JobSpec::new("qaoa-faulty", WorkloadKind::Qaoa, 8)
            .with_iterations(2)
            .with_shots(48)
            .with_priority(3)
            .with_faults(FaultPlan::all(0.02).with_seed(0xFA17)),
        JobSpec::new("vqe-tail", WorkloadKind::Vqe, 8)
            .with_iterations(1)
            .with_shots(48)
            .with_priority(1),
    ]
}

fn scheduler() -> BatchScheduler {
    let mut sched = BatchScheduler::new(42);
    for job in fleet() {
        sched.submit(job).expect("fleet fits the default queue");
    }
    sched
}

#[test]
fn fleet_results_match_standalone_at_any_pool_width() {
    let jobs = fleet();
    let sched = scheduler();
    // Standalone references, each run in isolation on one thread.
    let references: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let seed = sched.seed_of(JobId::from_index(i)).expect("admitted");
            run_standalone(spec, seed, 1).expect("standalone run succeeds")
        })
        .collect();

    for threads in [1usize, 2, 8] {
        let batch = sched.run(threads).expect("batch run succeeds");
        assert_eq!(batch.results.len(), jobs.len());
        assert_eq!(batch.completed(), jobs.len(), "threads={threads}");
        for (i, result) in batch.results.iter().enumerate() {
            // Canonical submission order regardless of priorities.
            assert_eq!(result.id.index(), i);
            assert_eq!(result.name, jobs[i].name);
            let artefacts = result.outcome.artifacts().expect("job completed");
            assert_eq!(
                artefacts.report, references[i].report,
                "job {} report differs from standalone at pool width {threads}",
                result.name
            );
            assert_eq!(
                artefacts.metrics_json, references[i].metrics_json,
                "job {} metrics JSON differs from standalone at pool width {threads}",
                result.name
            );
            assert_eq!(artefacts.shots_sampled, references[i].shots_sampled);
        }
    }
}

#[test]
fn faulty_job_recovers_identically_in_and_out_of_fleet() {
    let jobs = fleet();
    let sched = scheduler();
    let faulty = 4;
    assert!(jobs[faulty].faults.expect("fault plan").is_active());
    let seed = sched.seed_of(JobId::from_index(faulty)).expect("admitted");
    let standalone = run_standalone(&jobs[faulty], seed, 1).expect("standalone run succeeds");
    assert!(
        standalone.report.resilience.faults_injected > 0,
        "fault plan must actually fire for the comparison to mean anything"
    );
    let batch = sched.run(8).expect("batch run succeeds");
    let in_fleet = batch.results[faulty]
        .outcome
        .artifacts()
        .expect("completed");
    assert_eq!(in_fleet.report.resilience, standalone.report.resilience);
    assert_eq!(in_fleet.metrics_json, standalone.metrics_json);
}

#[test]
fn seeds_depend_on_submission_order_not_schedule_order() {
    let sched = scheduler();
    // Priorities reorder execution (qaoa-hot first), but every seed is
    // fixed by submission index alone.
    let order = sched.schedule_order();
    assert_eq!(order[0], 1, "highest priority job is scheduled first");
    for i in 0..sched.len() {
        let expected = match i {
            3 => 0xDEAD, // explicit seed survives
            _ => qtenon_sim_engine::stream_seed(42, i as u64),
        };
        assert_eq!(sched.seed_of(JobId::from_index(i)), Some(expected));
    }
}

#[test]
fn bounded_queue_rejection_is_typed_and_counted() {
    let mut sched = BatchScheduler::with_capacity(42, 3);
    for job in fleet().into_iter().take(3) {
        sched.submit(job).expect("under capacity");
    }
    let err = sched
        .submit(JobSpec::new("overflow", WorkloadKind::Vqe, 8))
        .expect_err("queue is full");
    assert_eq!(err, JobError::QueueFull { capacity: 3 });
    assert_eq!(sched.rejected(), 1);
    // The rejection is reported by the batch, and the admitted jobs
    // still run to completion.
    let batch = sched.run(2).expect("batch run succeeds");
    assert_eq!(batch.rejected, 1);
    assert_eq!(batch.completed(), 3);
}
