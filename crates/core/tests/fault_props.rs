//! Property-based tests for deterministic fault injection and controller
//! resilience: reproducibility, rate monotonicity, and the zero-rate
//! identity that keeps the fault layer invisible when disabled.

use proptest::prelude::*;

use qtenon_core::config::{CoreModel, QtenonConfig};
use qtenon_core::report::RunReport;
use qtenon_core::vqa::VqaRunner;
use qtenon_sim_engine::{FaultPlan, FaultSite, MetricsRegistry};
use qtenon_workloads::{SpsaOptimizer, Workload, WorkloadKind};

/// Runs a small VQA under `faults`, returning the report and the full
/// metric snapshot rendered to JSON (the same artefact `--metrics`
/// writes, so byte-equality here is byte-equality there).
fn run_with(faults: FaultPlan, workload_seed: u64) -> (RunReport, String) {
    let config = QtenonConfig::table4(6, CoreModel::Rocket)
        .expect("valid config")
        .with_seed(workload_seed)
        .with_faults(faults);
    let workload = Workload::benchmark(WorkloadKind::Vqe, 6, workload_seed).expect("workload");
    let mut runner = VqaRunner::new(config, workload).expect("runner");
    let report = runner
        .run(&mut SpsaOptimizer::new(workload_seed), 2, 40)
        .expect("run survives injected faults");
    let mut m = MetricsRegistry::new();
    runner.export_metrics(&mut m);
    (report, m.snapshot().to_json())
}

proptest! {
    // Each case is a full (small) VQA run; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The same plan (seed + rates) reproduces the run bit-for-bit:
    /// identical report, identical metric tree, identical fault and
    /// resilience counters.
    #[test]
    fn same_seed_reproduces_report_and_metrics_exactly(
        fault_seed in any::<u64>(),
        rate in 0.0f64..0.03,
        workload_seed in 1u64..1_000,
    ) {
        let plan = FaultPlan::all(rate).with_seed(fault_seed);
        let (report_a, metrics_a) = run_with(plan, workload_seed);
        let (report_b, metrics_b) = run_with(plan, workload_seed);
        prop_assert_eq!(report_a, report_b);
        prop_assert_eq!(metrics_a, metrics_b);
    }

    /// For a fixed seed, raising the fault rate never lowers the retry
    /// counts. Restricted to the bus and readout sites: their draw counts
    /// are set by the instruction stream alone (one draw per transfer /
    /// per acquire), so the per-event geometric inversion makes the totals
    /// pointwise monotone. Sites that alter control flow (RBQ leaks, SLT
    /// invalidations) have no such pointwise guarantee.
    #[test]
    fn retry_counts_are_monotone_in_fault_rate(
        fault_seed in any::<u64>(),
        low in 0.0f64..0.02,
        bump in 0.0f64..0.02,
        workload_seed in 1u64..1_000,
    ) {
        let high = low + bump;
        let plan_at = |r: f64| {
            let mut p = FaultPlan::default().with_seed(fault_seed);
            p.set_rate(FaultSite::BusDrop, r).unwrap();
            p.set_rate(FaultSite::BusCorrupt, r).unwrap();
            p.set_rate(FaultSite::ReadoutTimeout, r).unwrap();
            // A deep retry budget so no case trips retries-exhausted.
            p.max_attempts = 16;
            p
        };
        let (low_report, _) = run_with(plan_at(low), workload_seed);
        let (high_report, _) = run_with(plan_at(high), workload_seed);
        prop_assert!(
            high_report.resilience.bus_retries >= low_report.resilience.bus_retries,
            "bus retries fell as the rate rose: {} -> {}",
            low_report.resilience.bus_retries,
            high_report.resilience.bus_retries,
        );
        prop_assert!(
            high_report.resilience.readout_retries >= low_report.resilience.readout_retries,
            "readout retries fell as the rate rose: {} -> {}",
            low_report.resilience.readout_retries,
            high_report.resilience.readout_retries,
        );
        prop_assert!(
            high_report.resilience.faults_injected >= low_report.resilience.faults_injected,
            "injected faults fell as the rate rose: {} -> {}",
            low_report.resilience.faults_injected,
            high_report.resilience.faults_injected,
        );
    }

    /// A plan with all-zero rates — whatever its seed and policy knobs —
    /// is behaviourally invisible: the report and metric tree are
    /// identical to a run with no fault plan installed at all.
    #[test]
    fn zero_rate_plan_is_identical_to_no_faults(
        fault_seed in any::<u64>(),
        max_attempts in 1u32..10,
        workload_seed in 1u64..1_000,
    ) {
        let mut inert = FaultPlan::default().with_seed(fault_seed);
        inert.max_attempts = max_attempts;
        let (faultless_report, faultless_metrics) =
            run_with(FaultPlan::default(), workload_seed);
        let (inert_report, inert_metrics) = run_with(inert, workload_seed);
        prop_assert_eq!(faultless_report, inert_report.clone());
        prop_assert_eq!(faultless_metrics, inert_metrics);
        prop_assert!(inert_report.resilience.is_zero());
    }
}
