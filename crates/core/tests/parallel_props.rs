//! Differential determinism tests for the shot-sharded parallel
//! execution engine: a multi-threaded run must be byte-identical to the
//! serial run — same `RunReport`, same metrics-JSON export — for every
//! seed, with and without fault injection. The CI determinism matrix
//! re-runs these with `QTENON_THREADS=1` and `QTENON_THREADS=4`.

use proptest::prelude::*;

use qtenon_core::config::{CoreModel, QtenonConfig};
use qtenon_core::parallel::{ShardPlan, MIN_SHOTS_PER_SHARD};
use qtenon_core::report::RunReport;
use qtenon_core::vqa::VqaRunner;
use qtenon_sim_engine::{FaultPlan, MetricsRegistry};
use qtenon_workloads::{SpsaOptimizer, Workload, WorkloadKind};

/// Thread count for the sharded side: `QTENON_THREADS` when set (the CI
/// matrix pins 1 and 4), otherwise 4.
fn sharded_threads() -> usize {
    std::env::var("QTENON_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Runs a small VQA at `threads` workers and returns the report plus the
/// metrics-JSON artefact (`--metrics` writes exactly this string, so
/// byte-equality here is byte-equality on disk). 96 shots is enough for
/// four real shards at `MIN_SHOTS_PER_SHARD = 16`.
fn run_at(threads: usize, seed: u64, faults: FaultPlan) -> (RunReport, String) {
    let config = QtenonConfig::table4(8, CoreModel::Rocket)
        .expect("valid config")
        .with_seed(seed)
        .with_faults(faults)
        .with_threads(threads);
    let workload = Workload::benchmark(WorkloadKind::Vqe, 8, seed).expect("workload");
    let mut runner = VqaRunner::new(config, workload).expect("runner");
    let report = runner
        .run(&mut SpsaOptimizer::new(seed), 2, 96)
        .expect("run succeeds");
    let mut m = MetricsRegistry::new();
    runner.export_metrics(&mut m);
    (report, m.snapshot().to_json())
}

#[test]
fn sharded_run_is_byte_identical_to_serial_across_seeds() {
    for seed in [1u64, 42, 0xDEAD] {
        let (serial_report, serial_json) = run_at(1, seed, FaultPlan::default());
        let (sharded_report, sharded_json) = run_at(sharded_threads(), seed, FaultPlan::default());
        assert_eq!(
            serial_report, sharded_report,
            "report diverged at seed {seed}"
        );
        assert_eq!(
            serial_json, sharded_json,
            "metrics JSON diverged at seed {seed}"
        );
    }
}

#[test]
fn sharded_run_is_byte_identical_under_fault_injection() {
    let mut total_injected = 0u64;
    for seed in [1u64, 42, 0xDEAD] {
        let plan = FaultPlan::all(0.02).with_seed(seed ^ 0xFA17);
        let (serial_report, serial_json) = run_at(1, seed, plan);
        let (sharded_report, sharded_json) = run_at(sharded_threads(), seed, plan);
        assert_eq!(
            serial_report, sharded_report,
            "faulty report diverged at seed {seed}"
        );
        assert_eq!(
            serial_json, sharded_json,
            "faulty metrics JSON diverged at seed {seed}"
        );
        total_injected += sharded_report.resilience.faults_injected;
    }
    // The fault check must not be vacuous: the plan really fired.
    assert!(total_injected > 0, "no faults injected across any seed");
}

proptest! {
    /// Shard plans partition any shot range exactly once, in order, with
    /// near-equal sizes, and never hand a worker less than the
    /// amortisation floor.
    #[test]
    fn shard_plans_partition_any_range(shots in 0u64..10_000, threads in 1usize..32) {
        let plan = ShardPlan::new(shots, threads);
        prop_assert!(plan.len() <= threads);
        let mut next = 0u64;
        for (i, shard) in plan.shards().iter().enumerate() {
            prop_assert_eq!(shard.index, i);
            prop_assert_eq!(shard.first_shot, next, "gap or overlap at shard {}", i);
            next += shard.shots;
        }
        prop_assert_eq!(next, shots, "plan does not cover the range");
        let min = plan.shards().iter().map(|s| s.shots).min().unwrap();
        let max = plan.shards().iter().map(|s| s.shots).max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced shards: {} vs {}", min, max);
        if plan.len() > 1 {
            prop_assert!(min >= MIN_SHOTS_PER_SHARD);
        }
    }
}
