//! Property-based tests for the core system's scheduling and reporting
//! structures.

use proptest::prelude::*;

use qtenon_core::config::CoreModel;
use qtenon_core::config::TransmissionPolicy;
use qtenon_core::host::HostCoreModel;
use qtenon_core::report::TimeBreakdown;
use qtenon_core::schedule::TransmissionPlan;
use qtenon_sim_engine::{OpClass, OpCounter, SimDuration};

proptest! {
    #[test]
    fn transmission_plan_covers_every_shot_once(
        n_qubits in 1u32..400,
        shots in 0u64..2_000,
        policy in prop::sample::select(vec![TransmissionPolicy::Immediate, TransmissionPolicy::Batched]),
    ) {
        let plan = TransmissionPlan::new(policy, n_qubits, 256, shots);
        let mut covered = 0u64;
        for b in plan.batches() {
            prop_assert_eq!(b.first_shot, covered, "gap or overlap");
            prop_assert!(b.shots >= 1);
            prop_assert!(b.shots <= plan.batch_interval().max(1));
            prop_assert_eq!(b.bytes, b.shots * (n_qubits as u64).div_ceil(8));
            covered += b.shots;
        }
        prop_assert_eq!(covered, shots);
    }

    #[test]
    fn algorithm1_interval_is_floor_b_over_n(n_qubits in 1u32..1024) {
        let plan = TransmissionPlan::new(TransmissionPolicy::Batched, n_qubits, 256, 1);
        let expected = (256 / n_qubits as u64).max(1);
        prop_assert_eq!(plan.batch_interval(), expected);
    }

    #[test]
    fn host_models_are_monotone_in_work(
        base in prop::collection::vec(0u64..100_000, 5),
        extra in prop::collection::vec(0u64..100_000, 5),
    ) {
        let mut small = OpCounter::new();
        let mut large = OpCounter::new();
        for (i, class) in OpClass::ALL.iter().enumerate() {
            small.record(*class, base[i]);
            large.record(*class, base[i] + extra[i]);
        }
        for core in [CoreModel::Rocket, CoreModel::BoomLarge] {
            let m = HostCoreModel::new(core);
            prop_assert!(m.cycles_for(&large) >= m.cycles_for(&small));
        }
        // Boom never costs more cycles than Rocket for the same work.
        let rocket = HostCoreModel::new(CoreModel::Rocket);
        let boom = HostCoreModel::new(CoreModel::BoomLarge);
        prop_assert!(boom.cycles_for(&large) <= rocket.cycles_for(&large));
    }

    #[test]
    fn breakdown_shares_form_distribution(
        q in 0u64..1_000_000, c in 0u64..1_000_000,
        p in 0u64..1_000_000, h in 0u64..1_000_000,
    ) {
        let b = TimeBreakdown {
            quantum: SimDuration::from_ns(q),
            communication: SimDuration::from_ns(c),
            pulse_generation: SimDuration::from_ns(p),
            host: SimDuration::from_ns(h),
        };
        let total = b.busy_total();
        if !total.is_zero() {
            let shares = b.shares_of(total);
            prop_assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for s in shares {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
            }
        }
    }
}
