//! Execution tracing: a timestamped event log of system activity,
//! exportable as Chrome trace JSON (`chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev)).
//!
//! Enable with [`crate::system::QtenonSystem::set_tracing`]; every ISA
//! instruction, controller PUT, and quantum run then records a
//! [`TraceEvent`] with its simulated start/end times. Beyond "X"
//! complete slices the log carries instant markers, counter samples,
//! and flow events that link one logical request (named by its RBQ tag)
//! across lanes — Perfetto draws these as arrows from the host's issue
//! slice through communication and pulse generation to the chip.

use qtenon_sim_engine::metrics::json_escape;
use qtenon_sim_engine::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The component lane an event belongs to (the "thread" in trace
/// viewers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceLane {
    /// Host core instruction issue.
    Host,
    /// Controller communication paths.
    Communication,
    /// The pulse pipeline.
    PulsePipeline,
    /// The quantum chip.
    QuantumChip,
}

impl TraceLane {
    /// A stable numeric id for trace viewers.
    pub fn tid(self) -> u32 {
        match self {
            TraceLane::Host => 1,
            TraceLane::Communication => 2,
            TraceLane::PulsePipeline => 3,
            TraceLane::QuantumChip => 4,
        }
    }

    /// The lane's display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceLane::Host => "host",
            TraceLane::Communication => "communication",
            TraceLane::PulsePipeline => "pulse-pipeline",
            TraceLane::QuantumChip => "quantum-chip",
        }
    }
}

/// What kind of trace-viewer event a [`TraceEvent`] renders as.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A duration slice (`ph:"X"`).
    Complete,
    /// A zero-duration marker (`ph:"i"`).
    Instant,
    /// A sampled counter value (`ph:"C"`).
    Counter {
        /// The sampled value.
        value: f64,
    },
    /// The start of a flow arrow (`ph:"s"`).
    FlowStart {
        /// Flow id shared by every event of the flow.
        flow: u64,
    },
    /// An intermediate flow point (`ph:"t"`).
    FlowStep {
        /// Flow id shared by every event of the flow.
        flow: u64,
    },
    /// The end of a flow arrow (`ph:"f"`).
    FlowEnd {
        /// Flow id shared by every event of the flow.
        flow: u64,
    },
}

/// One traced event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event label (e.g. `q_set`, `q_run[500]`).
    pub name: String,
    /// The component lane.
    pub lane: TraceLane,
    /// Start time.
    pub start: SimTime,
    /// Duration (zero for non-slice events).
    pub duration: SimDuration,
    /// The viewer event kind.
    pub kind: TraceEventKind,
}

/// An append-only event log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a complete ("X") slice.
    pub fn record(
        &mut self,
        name: impl Into<String>,
        lane: TraceLane,
        start: SimTime,
        duration: SimDuration,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            lane,
            start,
            duration,
            kind: TraceEventKind::Complete,
        });
    }

    /// Appends an instant ("i") marker.
    pub fn record_instant(&mut self, name: impl Into<String>, lane: TraceLane, at: SimTime) {
        self.events.push(TraceEvent {
            name: name.into(),
            lane,
            start: at,
            duration: SimDuration::ZERO,
            kind: TraceEventKind::Instant,
        });
    }

    /// Appends a counter ("C") sample.
    pub fn record_counter(
        &mut self,
        name: impl Into<String>,
        lane: TraceLane,
        at: SimTime,
        value: f64,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            lane,
            start: at,
            duration: SimDuration::ZERO,
            kind: TraceEventKind::Counter { value },
        });
    }

    /// Appends a flow-start ("s") event opening flow `flow` on `lane`.
    pub fn record_flow_start(
        &mut self,
        name: impl Into<String>,
        lane: TraceLane,
        at: SimTime,
        flow: u64,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            lane,
            start: at,
            duration: SimDuration::ZERO,
            kind: TraceEventKind::FlowStart { flow },
        });
    }

    /// Appends a flow-step ("t") event continuing flow `flow` on `lane`.
    pub fn record_flow_step(
        &mut self,
        name: impl Into<String>,
        lane: TraceLane,
        at: SimTime,
        flow: u64,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            lane,
            start: at,
            duration: SimDuration::ZERO,
            kind: TraceEventKind::FlowStep { flow },
        });
    }

    /// Appends a flow-end ("f") event closing flow `flow` on `lane`.
    pub fn record_flow_end(
        &mut self,
        name: impl Into<String>,
        lane: TraceLane,
        at: SimTime,
        flow: u64,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            lane,
            start: at,
            duration: SimDuration::ZERO,
            kind: TraceEventKind::FlowEnd { flow },
        });
    }

    /// The recorded events in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total busy time recorded on one lane (complete slices only; the
    /// zero-duration marker/flow events contribute nothing).
    pub fn lane_busy(&self, lane: TraceLane) -> SimDuration {
        self.events
            .iter()
            .filter(|e| e.lane == lane)
            .map(|e| e.duration)
            .sum()
    }

    /// The distinct lanes that carry events of the flow with id `flow`.
    pub fn flow_lanes(&self, flow: u64) -> Vec<TraceLane> {
        let mut lanes = Vec::new();
        for e in &self.events {
            let belongs = matches!(
                e.kind,
                TraceEventKind::FlowStart { flow: f }
                    | TraceEventKind::FlowStep { flow: f }
                    | TraceEventKind::FlowEnd { flow: f }
                if f == flow
            );
            if belongs && !lanes.contains(&e.lane) {
                lanes.push(e.lane);
            }
        }
        lanes
    }

    /// Serialises to the Chrome trace-event JSON array format
    /// (microsecond timestamps; "X" slices plus "i"/"C"/"s"/"t"/"f"
    /// events for markers, counters, and flows).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = json_escape(&e.name);
            let tid = e.lane.tid();
            let ts = e.start.elapsed().as_us();
            match e.kind {
                TraceEventKind::Complete => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{ts:.3},\"dur\":{:.3}}}",
                    e.duration.as_us(),
                )),
                TraceEventKind::Instant => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{ts:.3},\"s\":\"t\"}}"
                )),
                TraceEventKind::Counter { value } => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{ts:.3},\"args\":{{\"value\":{}}}}}",
                    if value.is_finite() { value } else { 0.0 },
                )),
                TraceEventKind::FlowStart { flow } => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"cat\":\"flow\",\"ph\":\"s\",\"pid\":1,\
                     \"tid\":{tid},\"ts\":{ts:.3},\"id\":{flow}}}"
                )),
                TraceEventKind::FlowStep { flow } => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"cat\":\"flow\",\"ph\":\"t\",\"pid\":1,\
                     \"tid\":{tid},\"ts\":{ts:.3},\"id\":{flow}}}"
                )),
                TraceEventKind::FlowEnd { flow } => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\
                     \"pid\":1,\"tid\":{tid},\"ts\":{ts:.3},\"id\":{flow}}}"
                )),
            }
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn records_and_sums_lanes() {
        let mut t = Trace::new();
        t.record(
            "q_set",
            TraceLane::Communication,
            at(0),
            SimDuration::from_ns(30),
        );
        t.record(
            "q_run",
            TraceLane::QuantumChip,
            at(30),
            SimDuration::from_us(5),
        );
        t.record(
            "put",
            TraceLane::Communication,
            at(100),
            SimDuration::from_ns(20),
        );
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.lane_busy(TraceLane::Communication),
            SimDuration::from_ns(50)
        );
        assert_eq!(t.lane_busy(TraceLane::Host), SimDuration::ZERO);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Trace::new();
        t.record(
            "q_gen",
            TraceLane::PulsePipeline,
            at(1000),
            SimDuration::from_us(1),
        );
        let json = t.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"q_gen\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":1.000"));
        assert!(json.contains(&format!("\"tid\":{}", TraceLane::PulsePipeline.tid())));
    }

    #[test]
    fn empty_trace_serialises() {
        assert_eq!(Trace::new().to_chrome_json(), "[]");
        assert!(Trace::new().is_empty());
    }

    #[test]
    fn quotes_are_escaped() {
        let mut t = Trace::new();
        t.record("a\"b", TraceLane::Host, at(0), SimDuration::ZERO);
        assert!(!t.to_chrome_json().contains("\"a\"b\""));
    }

    #[test]
    fn backslashes_and_control_chars_are_escaped() {
        let mut t = Trace::new();
        t.record(
            "a\\b\nc\td\u{1}e",
            TraceLane::Host,
            at(0),
            SimDuration::ZERO,
        );
        let json = t.to_chrome_json();
        // Every special byte is replaced by a JSON escape sequence; no
        // raw backslash-without-escape or control byte survives.
        assert!(json.contains(r"a\\b\nc\td\u0001e"), "json={json}");
        assert!(!json.bytes().any(|b| b < 0x20));
    }

    #[test]
    fn instant_counter_and_flow_events_serialise() {
        let mut t = Trace::new();
        t.record_instant("issue", TraceLane::Host, at(0));
        t.record_counter("outstanding", TraceLane::Communication, at(5), 3.0);
        t.record_flow_start("rbq:7", TraceLane::Host, at(0), 7);
        t.record_flow_step("rbq:7", TraceLane::Communication, at(10), 7);
        t.record_flow_end("rbq:7", TraceLane::QuantumChip, at(20), 7);
        let json = t.to_chrome_json();
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":3}"));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"t\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"bp\":\"e\""));
        assert!(json.contains("\"id\":7"));
        // The flow touches three distinct lanes.
        assert_eq!(t.flow_lanes(7).len(), 3);
        // Balanced braces: a cheap structural validity check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn lane_ids_are_distinct() {
        let lanes = [
            TraceLane::Host,
            TraceLane::Communication,
            TraceLane::PulsePipeline,
            TraceLane::QuantumChip,
        ];
        let mut ids: Vec<u32> = lanes.iter().map(|l| l.tid()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }
}
