//! Execution tracing: a timestamped event log of system activity,
//! exportable as Chrome trace JSON (`chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev)).
//!
//! Enable with [`crate::system::QtenonSystem::set_tracing`]; every ISA
//! instruction, controller PUT, and quantum run then records a
//! [`TraceEvent`] with its simulated start/end times.

use qtenon_sim_engine::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The component lane an event belongs to (the "thread" in trace
/// viewers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceLane {
    /// Host core instruction issue.
    Host,
    /// Controller communication paths.
    Communication,
    /// The pulse pipeline.
    PulsePipeline,
    /// The quantum chip.
    QuantumChip,
}

impl TraceLane {
    /// A stable numeric id for trace viewers.
    pub fn tid(self) -> u32 {
        match self {
            TraceLane::Host => 1,
            TraceLane::Communication => 2,
            TraceLane::PulsePipeline => 3,
            TraceLane::QuantumChip => 4,
        }
    }

    /// The lane's display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceLane::Host => "host",
            TraceLane::Communication => "communication",
            TraceLane::PulsePipeline => "pulse-pipeline",
            TraceLane::QuantumChip => "quantum-chip",
        }
    }
}

/// One traced interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event label (e.g. `q_set`, `q_run[500]`).
    pub name: String,
    /// The component lane.
    pub lane: TraceLane,
    /// Start time.
    pub start: SimTime,
    /// Duration.
    pub duration: SimDuration,
}

/// An append-only event log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn record(
        &mut self,
        name: impl Into<String>,
        lane: TraceLane,
        start: SimTime,
        duration: SimDuration,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            lane,
            start,
            duration,
        });
    }

    /// The recorded events in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total busy time recorded on one lane.
    pub fn lane_busy(&self, lane: TraceLane) -> SimDuration {
        self.events
            .iter()
            .filter(|e| e.lane == lane)
            .map(|e| e.duration)
            .sum()
    }

    /// Serialises to the Chrome trace-event JSON array format
    /// (microsecond timestamps, "X" complete events).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                e.name.replace('"', "'"),
                e.lane.tid(),
                e.start.elapsed().as_us(),
                e.duration.as_us(),
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn records_and_sums_lanes() {
        let mut t = Trace::new();
        t.record("q_set", TraceLane::Communication, at(0), SimDuration::from_ns(30));
        t.record("q_run", TraceLane::QuantumChip, at(30), SimDuration::from_us(5));
        t.record("put", TraceLane::Communication, at(100), SimDuration::from_ns(20));
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.lane_busy(TraceLane::Communication),
            SimDuration::from_ns(50)
        );
        assert_eq!(t.lane_busy(TraceLane::Host), SimDuration::ZERO);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Trace::new();
        t.record("q_gen", TraceLane::PulsePipeline, at(1000), SimDuration::from_us(1));
        let json = t.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"q_gen\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":1.000"));
        assert!(json.contains(&format!("\"tid\":{}", TraceLane::PulsePipeline.tid())));
    }

    #[test]
    fn empty_trace_serialises() {
        assert_eq!(Trace::new().to_chrome_json(), "[]");
        assert!(Trace::new().is_empty());
    }

    #[test]
    fn quotes_are_escaped() {
        let mut t = Trace::new();
        t.record("a\"b", TraceLane::Host, at(0), SimDuration::ZERO);
        assert!(!t.to_chrome_json().contains("\"a\"b\""));
    }

    #[test]
    fn lane_ids_are_distinct() {
        let lanes = [
            TraceLane::Host,
            TraceLane::Communication,
            TraceLane::PulsePipeline,
            TraceLane::QuantumChip,
        ];
        let mut ids: Vec<u32> = lanes.iter().map(|l| l.tid()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }
}
