//! Execution tracing: a timestamped event log of system activity,
//! exportable as Chrome trace JSON (`chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev)).
//!
//! Enable with [`crate::system::QtenonSystem::set_tracing`]; every ISA
//! instruction, controller PUT, and quantum run then records a
//! [`TraceEvent`] with its simulated start/end times. Beyond "X"
//! complete slices the log carries instant markers, counter samples,
//! and flow events that link one logical request (named by its RBQ tag)
//! across lanes — Perfetto draws these as arrows from the host's issue
//! slice through communication and pulse generation to the chip.

use std::borrow::Cow;

use qtenon_sim_engine::metrics::json_escape;
use qtenon_sim_engine::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The component lane an event belongs to (the "thread" in trace
/// viewers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceLane {
    /// Host core instruction issue.
    Host,
    /// Controller communication paths.
    Communication,
    /// The pulse pipeline.
    PulsePipeline,
    /// The quantum chip.
    QuantumChip,
    /// VQA phase attribution spans (compile, upload, execute, ...).
    Phase,
    /// The causal critical path, highlighted as its own flow lane.
    CritPath,
}

impl TraceLane {
    /// A stable numeric id for trace viewers.
    pub fn tid(self) -> u32 {
        match self {
            TraceLane::Host => 1,
            TraceLane::Communication => 2,
            TraceLane::PulsePipeline => 3,
            TraceLane::QuantumChip => 4,
            TraceLane::Phase => 5,
            TraceLane::CritPath => 6,
        }
    }

    /// The lane's display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceLane::Host => "host",
            TraceLane::Communication => "communication",
            TraceLane::PulsePipeline => "pulse-pipeline",
            TraceLane::QuantumChip => "quantum-chip",
            TraceLane::Phase => "phase",
            TraceLane::CritPath => "critpath",
        }
    }
}

/// Pre-interned `rbq:N` flow labels: the flow helpers are on the
/// per-instruction hot path, and formatting the tag fresh for every
/// event allocated a `String` per event. Tags beyond the interned range
/// fall back to an owned allocation.
static RBQ_NAMES: [&str; 32] = [
    "rbq:0", "rbq:1", "rbq:2", "rbq:3", "rbq:4", "rbq:5", "rbq:6", "rbq:7", "rbq:8", "rbq:9",
    "rbq:10", "rbq:11", "rbq:12", "rbq:13", "rbq:14", "rbq:15", "rbq:16", "rbq:17", "rbq:18",
    "rbq:19", "rbq:20", "rbq:21", "rbq:22", "rbq:23", "rbq:24", "rbq:25", "rbq:26", "rbq:27",
    "rbq:28", "rbq:29", "rbq:30", "rbq:31",
];

static RBQ_ISSUE_NAMES: [&str; 32] = [
    "issue rbq:0",
    "issue rbq:1",
    "issue rbq:2",
    "issue rbq:3",
    "issue rbq:4",
    "issue rbq:5",
    "issue rbq:6",
    "issue rbq:7",
    "issue rbq:8",
    "issue rbq:9",
    "issue rbq:10",
    "issue rbq:11",
    "issue rbq:12",
    "issue rbq:13",
    "issue rbq:14",
    "issue rbq:15",
    "issue rbq:16",
    "issue rbq:17",
    "issue rbq:18",
    "issue rbq:19",
    "issue rbq:20",
    "issue rbq:21",
    "issue rbq:22",
    "issue rbq:23",
    "issue rbq:24",
    "issue rbq:25",
    "issue rbq:26",
    "issue rbq:27",
    "issue rbq:28",
    "issue rbq:29",
    "issue rbq:30",
    "issue rbq:31",
];

/// The interned `rbq:N` flow label for `tag` (allocation-free for tags
/// below the interned range).
pub fn rbq_flow_name(tag: u8) -> Cow<'static, str> {
    match RBQ_NAMES.get(tag as usize) {
        Some(&name) => Cow::Borrowed(name),
        None => Cow::Owned(format!("rbq:{tag}")),
    }
}

/// The interned `issue rbq:N` slice label for `tag`.
pub fn rbq_issue_name(tag: u8) -> Cow<'static, str> {
    match RBQ_ISSUE_NAMES.get(tag as usize) {
        Some(&name) => Cow::Borrowed(name),
        None => Cow::Owned(format!("issue rbq:{tag}")),
    }
}

/// What kind of trace-viewer event a [`TraceEvent`] renders as.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A duration slice (`ph:"X"`).
    Complete,
    /// A zero-duration marker (`ph:"i"`).
    Instant,
    /// A sampled counter value (`ph:"C"`).
    Counter {
        /// The sampled value.
        value: f64,
    },
    /// The start of a flow arrow (`ph:"s"`).
    FlowStart {
        /// Flow id shared by every event of the flow.
        flow: u64,
    },
    /// An intermediate flow point (`ph:"t"`).
    FlowStep {
        /// Flow id shared by every event of the flow.
        flow: u64,
    },
    /// The end of a flow arrow (`ph:"f"`).
    FlowEnd {
        /// Flow id shared by every event of the flow.
        flow: u64,
    },
}

/// One traced event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event label (e.g. `q_set`, `q_run[500]`). Static labels are
    /// borrowed, so the hot path records them without allocating.
    pub name: Cow<'static, str>,
    /// The component lane.
    pub lane: TraceLane,
    /// Start time.
    pub start: SimTime,
    /// Duration (zero for non-slice events).
    pub duration: SimDuration,
    /// The viewer event kind.
    pub kind: TraceEventKind,
}

/// An append-only event log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with room for `capacity` events, so the
    /// first `capacity` records cannot reallocate.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::with_capacity(capacity),
        }
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.events.reserve(additional);
    }

    /// Appends a complete ("X") slice.
    pub fn record(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        lane: TraceLane,
        start: SimTime,
        duration: SimDuration,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            lane,
            start,
            duration,
            kind: TraceEventKind::Complete,
        });
    }

    /// Appends an instant ("i") marker.
    pub fn record_instant(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        lane: TraceLane,
        at: SimTime,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            lane,
            start: at,
            duration: SimDuration::ZERO,
            kind: TraceEventKind::Instant,
        });
    }

    /// Appends a counter ("C") sample.
    pub fn record_counter(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        lane: TraceLane,
        at: SimTime,
        value: f64,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            lane,
            start: at,
            duration: SimDuration::ZERO,
            kind: TraceEventKind::Counter { value },
        });
    }

    /// Appends a flow-start ("s") event opening flow `flow` on `lane`.
    pub fn record_flow_start(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        lane: TraceLane,
        at: SimTime,
        flow: u64,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            lane,
            start: at,
            duration: SimDuration::ZERO,
            kind: TraceEventKind::FlowStart { flow },
        });
    }

    /// Appends a flow-step ("t") event continuing flow `flow` on `lane`.
    pub fn record_flow_step(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        lane: TraceLane,
        at: SimTime,
        flow: u64,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            lane,
            start: at,
            duration: SimDuration::ZERO,
            kind: TraceEventKind::FlowStep { flow },
        });
    }

    /// Appends a flow-end ("f") event closing flow `flow` on `lane`.
    pub fn record_flow_end(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        lane: TraceLane,
        at: SimTime,
        flow: u64,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            lane,
            start: at,
            duration: SimDuration::ZERO,
            kind: TraceEventKind::FlowEnd { flow },
        });
    }

    /// The recorded events in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total busy time recorded on one lane (complete slices only; the
    /// zero-duration marker/flow events contribute nothing).
    pub fn lane_busy(&self, lane: TraceLane) -> SimDuration {
        self.events
            .iter()
            .filter(|e| e.lane == lane)
            .map(|e| e.duration)
            .sum()
    }

    /// The distinct lanes that carry events of the flow with id `flow`.
    pub fn flow_lanes(&self, flow: u64) -> Vec<TraceLane> {
        let mut lanes = Vec::new();
        for e in &self.events {
            let belongs = matches!(
                e.kind,
                TraceEventKind::FlowStart { flow: f }
                    | TraceEventKind::FlowStep { flow: f }
                    | TraceEventKind::FlowEnd { flow: f }
                if f == flow
            );
            if belongs && !lanes.contains(&e.lane) {
                lanes.push(e.lane);
            }
        }
        lanes
    }

    /// Serialises to the Chrome trace-event JSON array format
    /// (microsecond timestamps; "X" slices plus "i"/"C"/"s"/"t"/"f"
    /// events for markers, counters, and flows).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = json_escape(&e.name);
            let tid = e.lane.tid();
            let ts = e.start.elapsed().as_us();
            match e.kind {
                TraceEventKind::Complete => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{ts:.3},\"dur\":{:.3}}}",
                    e.duration.as_us(),
                )),
                TraceEventKind::Instant => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{ts:.3},\"s\":\"t\"}}"
                )),
                TraceEventKind::Counter { value } => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{ts:.3},\"args\":{{\"value\":{}}}}}",
                    if value.is_finite() { value } else { 0.0 },
                )),
                TraceEventKind::FlowStart { flow } => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"cat\":\"flow\",\"ph\":\"s\",\"pid\":1,\
                     \"tid\":{tid},\"ts\":{ts:.3},\"id\":{flow}}}"
                )),
                TraceEventKind::FlowStep { flow } => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"cat\":\"flow\",\"ph\":\"t\",\"pid\":1,\
                     \"tid\":{tid},\"ts\":{ts:.3},\"id\":{flow}}}"
                )),
                TraceEventKind::FlowEnd { flow } => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\
                     \"pid\":1,\"tid\":{tid},\"ts\":{ts:.3},\"id\":{flow}}}"
                )),
            }
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn records_and_sums_lanes() {
        let mut t = Trace::new();
        t.record(
            "q_set",
            TraceLane::Communication,
            at(0),
            SimDuration::from_ns(30),
        );
        t.record(
            "q_run",
            TraceLane::QuantumChip,
            at(30),
            SimDuration::from_us(5),
        );
        t.record(
            "put",
            TraceLane::Communication,
            at(100),
            SimDuration::from_ns(20),
        );
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.lane_busy(TraceLane::Communication),
            SimDuration::from_ns(50)
        );
        assert_eq!(t.lane_busy(TraceLane::Host), SimDuration::ZERO);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Trace::new();
        t.record(
            "q_gen",
            TraceLane::PulsePipeline,
            at(1000),
            SimDuration::from_us(1),
        );
        let json = t.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"q_gen\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":1.000"));
        assert!(json.contains(&format!("\"tid\":{}", TraceLane::PulsePipeline.tid())));
    }

    #[test]
    fn empty_trace_serialises() {
        assert_eq!(Trace::new().to_chrome_json(), "[]");
        assert!(Trace::new().is_empty());
    }

    #[test]
    fn quotes_are_escaped() {
        let mut t = Trace::new();
        t.record("a\"b", TraceLane::Host, at(0), SimDuration::ZERO);
        assert!(!t.to_chrome_json().contains("\"a\"b\""));
    }

    #[test]
    fn backslashes_and_control_chars_are_escaped() {
        let mut t = Trace::new();
        t.record(
            "a\\b\nc\td\u{1}e",
            TraceLane::Host,
            at(0),
            SimDuration::ZERO,
        );
        let json = t.to_chrome_json();
        // Every special byte is replaced by a JSON escape sequence; no
        // raw backslash-without-escape or control byte survives.
        assert!(json.contains(r"a\\b\nc\td\u0001e"), "json={json}");
        assert!(!json.bytes().any(|b| b < 0x20));
    }

    #[test]
    fn instant_counter_and_flow_events_serialise() {
        let mut t = Trace::new();
        t.record_instant("issue", TraceLane::Host, at(0));
        t.record_counter("outstanding", TraceLane::Communication, at(5), 3.0);
        t.record_flow_start("rbq:7", TraceLane::Host, at(0), 7);
        t.record_flow_step("rbq:7", TraceLane::Communication, at(10), 7);
        t.record_flow_end("rbq:7", TraceLane::QuantumChip, at(20), 7);
        let json = t.to_chrome_json();
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":3}"));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"t\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"bp\":\"e\""));
        assert!(json.contains("\"id\":7"));
        // The flow touches three distinct lanes.
        assert_eq!(t.flow_lanes(7).len(), 3);
        // Balanced braces: a cheap structural validity check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn lane_ids_are_distinct() {
        let lanes = [
            TraceLane::Host,
            TraceLane::Communication,
            TraceLane::PulsePipeline,
            TraceLane::QuantumChip,
            TraceLane::Phase,
            TraceLane::CritPath,
        ];
        let mut ids: Vec<u32> = lanes.iter().map(|l| l.tid()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn rbq_names_are_interned_and_correct() {
        for tag in 0..40u8 {
            assert_eq!(rbq_flow_name(tag), format!("rbq:{tag}"));
            assert_eq!(rbq_issue_name(tag), format!("issue rbq:{tag}"));
        }
        // In-range tags borrow a static; out-of-range tags fall back to
        // an owned allocation.
        assert!(matches!(rbq_flow_name(31), Cow::Borrowed(_)));
        assert!(matches!(rbq_flow_name(32), Cow::Owned(_)));
        assert!(matches!(rbq_issue_name(0), Cow::Borrowed(_)));
    }

    #[test]
    fn static_names_record_without_copying() {
        let mut t = Trace::with_capacity(2);
        t.record("static-label", TraceLane::Phase, at(0), SimDuration::ZERO);
        t.record_counter("depth", TraceLane::Phase, at(1), 2.0);
        assert!(matches!(t.events()[0].name, Cow::Borrowed("static-label")));
        assert!(matches!(t.events()[1].name, Cow::Borrowed("depth")));
    }
}
