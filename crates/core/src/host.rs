//! Host core cost models.
//!
//! The classical computation is executed for real in Rust while an
//! [`OpCounter`] tallies abstract operations; these models convert the
//! tally to cycles at 1 GHz. Per-class costs are effective (throughput)
//! costs: the in-order Rocket pays roughly one slot per simple op with
//! multi-cycle floating point, while the out-of-order BOOM-Large hides
//! latency behind its wider issue but converges with Rocket on
//! memory-bound phases — which is why Fig. 15 finds the two hosts almost
//! identical on this workload mix.

use serde::{Deserialize, Serialize};

use qtenon_sim_engine::{ClockDomain, OpClass, OpCounter, SimDuration};

use crate::config::CoreModel;

/// Effective cycles per operation class, scaled by 100 for fixed-point
/// arithmetic (e.g. 250 = 2.5 cycles/op).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostTable {
    /// Integer ALU.
    pub int_alu_x100: u64,
    /// FP add/mul.
    pub fp_alu_x100: u64,
    /// FP divide/transcendental.
    pub fp_complex_x100: u64,
    /// Loads/stores (average over hit rates).
    pub mem_x100: u64,
    /// Branches (average over prediction).
    pub branch_x100: u64,
}

impl CostTable {
    fn cost_x100(&self, class: OpClass) -> u64 {
        match class {
            OpClass::IntAlu => self.int_alu_x100,
            OpClass::FpAlu => self.fp_alu_x100,
            OpClass::FpComplex => self.fp_complex_x100,
            OpClass::Mem => self.mem_x100,
            OpClass::Branch => self.branch_x100,
        }
    }
}

/// A host core as a cycle-cost model.
///
/// # Examples
///
/// ```
/// use qtenon_core::config::CoreModel;
/// use qtenon_core::host::HostCoreModel;
/// use qtenon_sim_engine::{OpClass, OpCounter};
///
/// let rocket = HostCoreModel::new(CoreModel::Rocket);
/// let mut ops = OpCounter::new();
/// ops.record(OpClass::IntAlu, 1_000);
/// assert_eq!(rocket.cycles_for(&ops), 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostCoreModel {
    kind: CoreModel,
    clock: ClockDomain,
    costs: CostTable,
}

impl HostCoreModel {
    /// Creates the cost model for a core at 1 GHz (Table 4).
    pub fn new(kind: CoreModel) -> Self {
        let costs = match kind {
            CoreModel::Rocket => CostTable {
                int_alu_x100: 100,
                fp_alu_x100: 200,
                fp_complex_x100: 1_500,
                mem_x100: 250,
                branch_x100: 150,
            },
            CoreModel::BoomLarge => CostTable {
                int_alu_x100: 40,
                fp_alu_x100: 80,
                fp_complex_x100: 1_000,
                mem_x100: 200,
                branch_x100: 70,
            },
        };
        HostCoreModel {
            kind,
            clock: ClockDomain::from_ghz(1.0),
            costs,
        }
    }

    /// Which core this models.
    pub fn kind(&self) -> CoreModel {
        self.kind
    }

    /// The core clock.
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Cycles to retire the tallied operations.
    pub fn cycles_for(&self, ops: &OpCounter) -> u64 {
        let x100: u64 = OpClass::ALL
            .iter()
            .map(|&c| ops.get(c) * self.costs.cost_x100(c))
            .sum();
        x100.div_ceil(100)
    }

    /// Wall time to retire the tallied operations.
    pub fn duration_for(&self, ops: &OpCounter) -> SimDuration {
        self.clock.cycles(self.cycles_for(ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_ops() -> OpCounter {
        let mut ops = OpCounter::new();
        ops.record(OpClass::IntAlu, 1_000);
        ops.record(OpClass::FpAlu, 500);
        ops.record(OpClass::FpComplex, 10);
        ops.record(OpClass::Mem, 800);
        ops.record(OpClass::Branch, 200);
        ops
    }

    #[test]
    fn boom_is_faster_but_same_order() {
        let rocket = HostCoreModel::new(CoreModel::Rocket);
        let boom = HostCoreModel::new(CoreModel::BoomLarge);
        let ops = mixed_ops();
        let r = rocket.cycles_for(&ops);
        let b = boom.cycles_for(&ops);
        assert!(b < r, "boom {b} !< rocket {r}");
        // Fig. 15: the two hosts are "almost identical" — within ~2×.
        assert!(r < 3 * b, "rocket {r} vs boom {b}");
    }

    #[test]
    fn rocket_simple_ops_are_one_cycle() {
        let rocket = HostCoreModel::new(CoreModel::Rocket);
        let mut ops = OpCounter::new();
        ops.record(OpClass::IntAlu, 42);
        assert_eq!(rocket.cycles_for(&ops), 42);
    }

    #[test]
    fn duration_uses_1ghz() {
        let rocket = HostCoreModel::new(CoreModel::Rocket);
        let mut ops = OpCounter::new();
        ops.record(OpClass::IntAlu, 1_000);
        assert_eq!(rocket.duration_for(&ops), SimDuration::from_us(1));
    }

    #[test]
    fn empty_ops_cost_nothing() {
        let boom = HostCoreModel::new(CoreModel::BoomLarge);
        assert_eq!(boom.cycles_for(&OpCounter::new()), 0);
    }

    #[test]
    fn cycles_scale_linearly() {
        let rocket = HostCoreModel::new(CoreModel::Rocket);
        let ops = mixed_ops();
        let once = rocket.cycles_for(&ops);
        let ten = rocket.cycles_for(&ops.scaled(10));
        assert!((ten as i64 - 10 * once as i64).abs() <= 1);
    }
}
