//! The batched transmission policy — Algorithm 1 (Section 6.3).
//!
//! Transmitting each shot's measurement immediately issues one bus PUT per
//! shot and under-utilises the 256-bit bus (a 64-qubit result is only 64
//! bits). Algorithm 1 batches `K = ⌊B/N⌋` shots per PUT so each transfer
//! fills the bus width, quartering bus demand at the paper's design point.

use serde::{Deserialize, Serialize};

use crate::config::TransmissionPolicy;

/// One scheduled PUT: which shots it carries and how many bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransmissionBatch {
    /// Index of the first shot in the batch.
    pub first_shot: u64,
    /// Number of shots carried.
    pub shots: u64,
    /// Payload bytes (`shots × ⌈N/8⌉`).
    pub bytes: u64,
}

/// The full transmission plan for one `q_run`.
///
/// # Examples
///
/// ```
/// use qtenon_core::config::TransmissionPolicy;
/// use qtenon_core::schedule::TransmissionPlan;
///
/// // Paper's design point: 64 qubits on a 256-bit bus → 4 shots per PUT.
/// let plan = TransmissionPlan::new(TransmissionPolicy::Batched, 64, 256, 500);
/// assert_eq!(plan.batch_interval(), 4);
/// assert_eq!(plan.batches().len(), 125);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransmissionPlan {
    interval: u64,
    batches: Vec<TransmissionBatch>,
}

impl TransmissionPlan {
    /// Plans the PUTs for `total_shots` shots of an `n_qubits` circuit on
    /// a `bus_width_bits`-wide bus (Algorithm 1; `Immediate` forces
    /// `K = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` or `bus_width_bits` is zero.
    pub fn new(
        policy: TransmissionPolicy,
        n_qubits: u32,
        bus_width_bits: u32,
        total_shots: u64,
    ) -> Self {
        assert!(n_qubits > 0 && bus_width_bits > 0, "zero-size plan");
        // Line 1: K ← ⌊B/N⌋ (at least one shot per transmission).
        let interval = match policy {
            TransmissionPolicy::Immediate => 1,
            TransmissionPolicy::Batched => (bus_width_bits as u64 / n_qubits as u64).max(1),
        };
        let bytes_per_shot = (n_qubits as u64).div_ceil(8);
        let mut batches = Vec::new();
        let mut first = 0;
        // Lines 5–13: accumulate and flush every K shots…
        while first + interval <= total_shots {
            batches.push(TransmissionBatch {
                first_shot: first,
                shots: interval,
                bytes: interval * bytes_per_shot,
            });
            first += interval;
        }
        // Lines 14–16: …then flush the remainder.
        if first < total_shots {
            let rest = total_shots - first;
            batches.push(TransmissionBatch {
                first_shot: first,
                shots: rest,
                bytes: rest * bytes_per_shot,
            });
        }
        TransmissionPlan { interval, batches }
    }

    /// The transmission interval `K`.
    pub fn batch_interval(&self) -> u64 {
        self.interval
    }

    /// The scheduled PUTs in shot order.
    pub fn batches(&self) -> &[TransmissionBatch] {
        &self.batches
    }

    /// Total payload bytes across all PUTs.
    pub fn total_bytes(&self) -> u64 {
        self.batches.iter().map(|b| b.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point_k4() {
        // 64 qubits, 256-bit bus: transmission every 4 shots.
        let plan = TransmissionPlan::new(TransmissionPolicy::Batched, 64, 256, 500);
        assert_eq!(plan.batch_interval(), 4);
        assert_eq!(plan.batches().len(), 125);
        assert!(plan.batches().iter().all(|b| b.shots == 4 && b.bytes == 32));
    }

    #[test]
    fn immediate_is_one_per_shot() {
        let plan = TransmissionPlan::new(TransmissionPolicy::Immediate, 64, 256, 500);
        assert_eq!(plan.batch_interval(), 1);
        assert_eq!(plan.batches().len(), 500);
        assert_eq!(plan.batches()[0].bytes, 8);
    }

    #[test]
    fn remainder_batch_flushed() {
        let plan = TransmissionPlan::new(TransmissionPolicy::Batched, 64, 256, 10);
        // 2 full batches of 4 + remainder of 2.
        assert_eq!(plan.batches().len(), 3);
        assert_eq!(plan.batches()[2].shots, 2);
        assert_eq!(plan.batches()[2].first_shot, 8);
    }

    #[test]
    fn wide_circuits_never_batch_below_one() {
        // 320 qubits > 256-bit bus: K clamps to 1.
        let plan = TransmissionPlan::new(TransmissionPolicy::Batched, 320, 256, 10);
        assert_eq!(plan.batch_interval(), 1);
        assert_eq!(plan.batches()[0].bytes, 40);
    }

    #[test]
    fn total_bytes_is_shots_times_record() {
        for (n, shots) in [(8u32, 100u64), (64, 500), (96, 7)] {
            let plan = TransmissionPlan::new(TransmissionPolicy::Batched, n, 256, shots);
            assert_eq!(plan.total_bytes(), shots * (n as u64).div_ceil(8));
        }
    }

    #[test]
    fn batches_cover_all_shots_in_order() {
        let plan = TransmissionPlan::new(TransmissionPolicy::Batched, 48, 256, 501);
        let mut next = 0;
        for b in plan.batches() {
            assert_eq!(b.first_shot, next);
            next += b.shots;
        }
        assert_eq!(next, 501);
    }

    #[test]
    fn zero_shots_empty_plan() {
        let plan = TransmissionPlan::new(TransmissionPolicy::Batched, 64, 256, 0);
        assert!(plan.batches().is_empty());
        assert_eq!(plan.total_bytes(), 0);
    }
}
