//! The integrated Qtenon system: functional-plus-timed execution of the
//! five ISA instructions against the controller, memory, and chip models.
//!
//! [`QtenonSystem`] does not own a global clock; callers thread a
//! [`SimTime`] through each operation and receive its completion time, so
//! higher layers (the VQA runner) can overlap operations exactly as the
//! fine-grained synchronisation allows.

use qtenon_controller::bus::TransferTiming;
use qtenon_controller::pipeline::{PipelineReport, PulsePipeline, WorkItem};
use qtenon_controller::rbq::Tag;
use qtenon_controller::{
    AdiModel, ControllerError, MemoryBarrier, ReadoutProcessor, ReorderBufferQueue, TileLinkBus,
};
use qtenon_isa::{GateType, ProgramEntry, QAddress, QubitId};
use qtenon_mem::qcc::{AccessPort, QuantumControllerCache};
use qtenon_mem::MemoryHierarchy;
use qtenon_quantum::sim::Simulator;
use qtenon_quantum::{BitString, Circuit, CircuitTiming, FuseStats};
use qtenon_sim_engine::{
    CritKind, CritPathReport, CritPathTracker, EdgeId, FaultInjector, FaultSite, Histogram,
    MetricValue, MetricsRegistry, PhaseId, PhaseTable, Profiler, SimDuration, SimTime,
};

use std::borrow::Cow;

use crate::config::QtenonConfig;
use crate::host::HostCoreModel;
use crate::parallel::{self, ShardPlan};
use crate::report::{CommBreakdown, ResilienceSummary};
use crate::trace::{rbq_flow_name, rbq_issue_name, Trace, TraceLane};
use crate::SystemError;

/// Result of a `q_run`: the measured shots and timing facts.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// One bitstring per shot.
    pub shots: Vec<BitString>,
    /// Duration of a single shot (gates + measurement).
    pub shot_duration: SimDuration,
    /// Completion time of the full run (all shots + interface latency).
    pub complete: SimTime,
}

/// Pre-interned phase ids for the system-level attribution spans, so the
/// hot paths record against a [`PhaseId`] without any name lookup.
struct SystemPhases {
    bus_transfer: PhaseId,
    slt_resolve: PhaseId,
    pgu_dispatch: PhaseId,
    pgu_stall: PhaseId,
    host_read: PhaseId,
    host_write: PhaseId,
    rbq_wait: PhaseId,
    chip_execute: PhaseId,
    /// Wall-clock-only phase around statevector preparation (plan +
    /// kernel execution). It never records a sim-time span — preparation
    /// is outside the timing model — so it can never appear in the phase
    /// table or the `profile.*` metrics, only in the explicitly-unstable
    /// wall printout under `--profile`.
    kernel_prepare: PhaseId,
}

impl SystemPhases {
    fn intern(profiler: &mut Profiler) -> Self {
        SystemPhases {
            bus_transfer: profiler.phase("controller.bus_transfer"),
            slt_resolve: profiler.phase("controller.slt_resolve"),
            pgu_dispatch: profiler.phase("controller.pgu_dispatch"),
            pgu_stall: profiler.phase("controller.pgu_stall"),
            host_read: profiler.phase("mem.host_read"),
            host_write: profiler.phase("mem.host_write"),
            rbq_wait: profiler.phase("controller.rbq_wait"),
            chip_execute: profiler.phase("chip.execute"),
            kernel_prepare: profiler.phase("kernel.prepare"),
        }
    }
}

/// Pre-interned causal-edge ids for the system's provenance annotations,
/// so the hot paths record against an [`EdgeId`] without a name lookup.
/// These are the seven canonical hand-offs of the integrated datapath
/// (Fig. 3); the VQA runner closes the loop on `readout->host` with the
/// host's classical segments.
pub(crate) struct SystemEdges {
    pub host_bus: EdgeId,
    pub bus_slt: EdgeId,
    pub slt_pgu: EdgeId,
    pub pgu_pipeline: EdgeId,
    pub pipeline_chip: EdgeId,
    pub chip_readout: EdgeId,
    pub readout_host: EdgeId,
}

impl SystemEdges {
    pub(crate) fn intern(critpath: &mut CritPathTracker) -> Self {
        SystemEdges {
            host_bus: critpath.edge("host->bus"),
            bus_slt: critpath.edge("bus->slt"),
            slt_pgu: critpath.edge("slt->pgu"),
            pgu_pipeline: critpath.edge("pgu->pipeline"),
            pipeline_chip: critpath.edge("pipeline->chip"),
            chip_readout: critpath.edge("chip->readout"),
            readout_host: critpath.edge("readout->host"),
        }
    }
}

/// The tightly coupled system (Fig. 3).
pub struct QtenonSystem {
    config: QtenonConfig,
    qcc: QuantumControllerCache,
    pipeline: PulsePipeline,
    bus: TileLinkBus,
    barrier: MemoryBarrier,
    hierarchy: MemoryHierarchy,
    host: HostCoreModel,
    adi: AdiModel,
    simulator: Simulator,
    comm: CommBreakdown,
    measure_cursor: u64,
    dynamic_instructions: u64,
    trace: Option<Trace>,
    /// RBQ tags naming in-flight logical requests for flow tracing.
    rbq: ReorderBufferQueue<()>,
    /// The currently open flow (flow id, RBQ tag), if tracing.
    active_flow: Option<(u64, Tag)>,
    /// Monotonic flow-id allocator.
    flow_seq: u64,
    /// Deterministic fault injector (inert when all rates are zero).
    injector: FaultInjector,
    /// Readout processor model (timeout/re-arm cost under faults).
    readout: ReadoutProcessor,
    /// Readout re-arms performed after injected classification timeouts.
    readout_retries: u64,
    /// Host stalls taken while waiting for a free RBQ tag.
    rbq_stalls: u64,
    /// Stall time owed to the next instruction (RBQ tag exhaustion).
    pending_stall: SimDuration,
    /// Kernel/fusion accounting accumulated over every exact-backend
    /// preparation (all-zero when only the mean-field backend ran).
    fuse_stats: FuseStats,
    /// Shot-shard worker telemetry, merged in canonical shard order.
    /// Workers record only per-shot quantities, so the merged registry is
    /// identical at every thread count.
    shard_metrics: MetricsRegistry,
    /// Latency-attribution profiler: deterministic sim-time spans per
    /// phase, always collected (the profile flag only gates wall-clock).
    profiler: Profiler,
    /// Pre-interned phase ids for the spans this struct records.
    phases: SystemPhases,
    /// Causal critical-path tracker: a provenance arena linking each
    /// completed hand-off to the event that enabled it, always
    /// collected (pure sim-time arithmetic, like the profiler spans).
    critpath: CritPathTracker,
    /// Pre-interned causal-edge ids for the hand-offs ops annotate.
    edges: SystemEdges,
    /// Per-instruction latency distributions, in nanoseconds.
    lat_q_update: Histogram,
    lat_q_set: Histogram,
    lat_q_acquire: Histogram,
    lat_q_gen: Histogram,
    lat_q_run: Histogram,
}

impl std::fmt::Debug for QtenonSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QtenonSystem")
            .field("n_qubits", &self.config.n_qubits)
            .field("core", &self.config.core)
            .field("dynamic_instructions", &self.dynamic_instructions)
            .finish()
    }
}

impl QtenonSystem {
    /// Builds the system from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if any component rejects the configuration.
    pub fn new(config: QtenonConfig) -> Result<Self, SystemError> {
        let mut profiler = Profiler::new();
        profiler.set_wall_enabled(config.profile);
        let phases = SystemPhases::intern(&mut profiler);
        let mut critpath = CritPathTracker::new();
        let edges = SystemEdges::intern(&mut critpath);
        Ok(QtenonSystem {
            config,
            qcc: QuantumControllerCache::new(config.layout),
            pipeline: PulsePipeline::new(config.pipeline, config.layout)?,
            bus: TileLinkBus::new(config.bus),
            barrier: MemoryBarrier::new(),
            hierarchy: MemoryHierarchy::new(config.hierarchy)?,
            host: HostCoreModel::new(config.core),
            adi: config.adi,
            simulator: Simulator::fast(config.n_qubits, config.seed).with_fusion(config.fuse),
            comm: CommBreakdown::default(),
            measure_cursor: 0,
            dynamic_instructions: 0,
            trace: None,
            rbq: ReorderBufferQueue::new(),
            active_flow: None,
            flow_seq: 0,
            injector: FaultInjector::new(config.faults),
            readout: ReadoutProcessor::default(),
            readout_retries: 0,
            rbq_stalls: 0,
            pending_stall: SimDuration::ZERO,
            fuse_stats: FuseStats::default(),
            shard_metrics: MetricsRegistry::new(),
            profiler,
            phases,
            critpath,
            edges,
            lat_q_update: Histogram::new(),
            lat_q_set: Histogram::new(),
            lat_q_acquire: Histogram::new(),
            lat_q_gen: Histogram::new(),
            lat_q_run: Histogram::new(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &QtenonConfig {
        &self.config
    }

    /// The host core model.
    pub fn host(&self) -> HostCoreModel {
        self.host
    }

    /// The quantum controller cache (for inspection).
    pub fn qcc(&self) -> &QuantumControllerCache {
        &self.qcc
    }

    /// The soft memory barrier.
    pub fn barrier_mut(&mut self) -> &mut MemoryBarrier {
        &mut self.barrier
    }

    /// Communication accounting so far.
    pub fn comm(&self) -> CommBreakdown {
        self.comm
    }

    /// Dynamic instructions executed so far.
    pub fn dynamic_instructions(&self) -> u64 {
        self.dynamic_instructions
    }

    /// Enables or disables execution tracing (see [`crate::trace`]).
    pub fn set_tracing(&mut self, enabled: bool) {
        self.trace = if enabled { Some(Trace::new()) } else { None };
    }

    /// Takes the recorded trace, leaving tracing enabled with a fresh log.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.replace(Trace::new())
    }

    fn trace_event(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        lane: TraceLane,
        start: SimTime,
        duration: SimDuration,
    ) {
        if let Some(trace) = &mut self.trace {
            trace.record(name, lane, start, duration);
        }
    }

    /// Records a span on the dedicated phase lane of the trace (no-op when
    /// tracing is off). The VQA runner uses this to paint its iteration
    /// phases over the component lanes.
    pub fn trace_phase(&mut self, name: &'static str, start: SimTime, duration: SimDuration) {
        self.trace_event(name, TraceLane::Phase, start, duration);
    }

    /// Paints the current causal critical path into the trace as a
    /// highlighted flow on the dedicated CritPath lane: one flow-start
    /// at the chain's first hand-off, a step per intermediate edge, and
    /// a flow-end at the final event. No-op when tracing is off or the
    /// chain is empty.
    pub fn trace_critpath(&mut self) {
        if self.trace.is_none() {
            return;
        }
        let steps = self.critpath.path();
        let Some(((first_name, _, first_at), rest)) = steps.split_first() else {
            return;
        };
        self.flow_seq += 1;
        let flow = self.flow_seq;
        let trace = self.trace.as_mut().expect("tracing checked above");
        trace.record_flow_start(*first_name, TraceLane::CritPath, *first_at, flow);
        match rest.split_last() {
            Some(((last_name, _, last_at), middle)) => {
                for (name, _, at) in middle {
                    trace.record_flow_step(*name, TraceLane::CritPath, *at, flow);
                }
                trace.record_flow_end(*last_name, TraceLane::CritPath, *last_at, flow);
            }
            // A one-step chain still closes its flow so viewers draw it.
            None => trace.record_flow_end(*first_name, TraceLane::CritPath, *first_at, flow),
        }
    }

    /// Whether the RBQ flow protocol runs. Always on when tracing; also on
    /// under fault injection so tag leaks and watchdog reclaims are
    /// exercised even without a trace consumer.
    fn flows_enabled(&self) -> bool {
        self.trace.is_some() || self.injector.is_active()
    }

    /// Consumes any stall owed by RBQ tag exhaustion, shifting `now`.
    /// Zero (and so a no-op) whenever fault injection is inert.
    fn absorb_stall(&mut self, now: SimTime) -> SimTime {
        let stall = std::mem::replace(&mut self.pending_stall, SimDuration::ZERO);
        if stall > SimDuration::ZERO {
            self.profiler.record(self.phases.rbq_wait, stall);
        }
        now + stall
    }

    /// Schedules a bus transfer, routing through the retry-aware path
    /// only when fault injection is live.
    fn bus_transfer(&mut self, now: SimTime, bytes: u64) -> Result<TransferTiming, SystemError> {
        let timing = if self.injector.is_active() {
            self.bus
                .schedule_transfer_resilient(now, bytes, &mut self.injector)?
        } else {
            self.bus.schedule_transfer(now, bytes)
        };
        self.profiler
            .span(self.phases.bus_transfer, now, timing.complete);
        Ok(timing)
    }

    /// Returns the open flow id, opening one on the Host lane if needed.
    ///
    /// A flow names one logical request — issued by the host, carried over
    /// the communication paths, expanded by the pulse pipeline, executed on
    /// the chip — with an RBQ tag, so trace viewers draw a single arrow
    /// chain across the four lanes. Returns `None` when tracing is off or
    /// all 32 tags are in flight.
    fn ensure_flow(&mut self, now: SimTime) -> Option<u64> {
        if !self.flows_enabled() {
            return None;
        }
        if let Some((flow, _)) = self.active_flow {
            return Some(flow);
        }
        if self.injector.is_active() {
            // Watchdog pass: reclaim tags whose completion response was
            // lost to an injected fault before they pile up.
            self.rbq
                .reclaim_stuck(now, self.injector.plan().watchdog_timeout());
        }
        let tag = match self.rbq.issue_at(now) {
            Some(tag) => tag,
            None => {
                // All 32 tags in flight: stall the host with backoff and
                // let the watchdog free overdue tags, instead of dropping
                // the request or erroring out.
                let plan = *self.injector.plan();
                let mut stalled = SimDuration::ZERO;
                let mut reclaimed_tag = None;
                for attempt in 1..=plan.max_attempts.max(1) {
                    stalled = stalled + plan.backoff(attempt);
                    self.rbq
                        .reclaim_stuck(now + stalled, plan.watchdog_timeout());
                    if let Some(tag) = self.rbq.issue_at(now + stalled) {
                        reclaimed_tag = Some(tag);
                        break;
                    }
                }
                self.rbq_stalls += 1;
                self.pending_stall = self.pending_stall + stalled;
                reclaimed_tag?
            }
        };
        let flow = self.flow_seq;
        self.flow_seq += 1;
        self.active_flow = Some((flow, tag));
        let issue_cost = self.host.clock().cycles(1);
        if let Some(trace) = &mut self.trace {
            trace.record(
                rbq_issue_name(tag.value()),
                TraceLane::Host,
                now,
                issue_cost,
            );
            trace.record_flow_start(rbq_flow_name(tag.value()), TraceLane::Host, now, flow);
        }
        Some(flow)
    }

    /// Adds a flow-step on `lane` at `now` for the open flow, if any.
    fn flow_step(&mut self, lane: TraceLane, now: SimTime) {
        let Some(flow) = self.ensure_flow(now) else {
            return;
        };
        let tag = self.active_flow.expect("flow just ensured").1;
        if let Some(trace) = &mut self.trace {
            trace.record_flow_step(rbq_flow_name(tag.value()), lane, now, flow);
        }
    }

    /// Ends the open flow on `lane` at `now`, retiring its RBQ tag.
    fn flow_end(&mut self, lane: TraceLane, now: SimTime) {
        let Some(flow) = self.ensure_flow(now) else {
            return;
        };
        let (_, tag) = self.active_flow.take().expect("flow just ensured");
        if let Some(trace) = &mut self.trace {
            trace.record_flow_end(rbq_flow_name(tag.value()), lane, now, flow);
        }
        if self.injector.is_active() && self.injector.bernoulli(FaultSite::RbqStuck) {
            // The completion response is lost: the tag stays allocated
            // until the watchdog reclaims it.
            self.trace_event("fault:rbq_stuck", lane, now, SimDuration::ZERO);
            return;
        }
        // A tag the watchdog already reclaimed completes late; dropping
        // that response is the recovery contract, not an error.
        if self.rbq.complete(tag, ()).is_ok() {
            // Retire every realigned response. Without faults the
            // completed tag is always at the head; with leaked tags ahead
            // of it, retirement waits until the watchdog frees them.
            while self.rbq.pop_in_order().is_some() {}
        }
    }

    /// The latency-attribution profiler. Sim-time spans are always
    /// collected; wall-clock timers run only after
    /// [`QtenonSystem::set_profiling`]`(true)`.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Mutable profiler access, used by higher layers (the VQA runner) to
    /// intern and record their own phases into the same table.
    pub fn profiler_mut(&mut self) -> &mut Profiler {
        &mut self.profiler
    }

    /// Snapshot of the per-phase attribution table (deterministic: built
    /// from sim-time only).
    pub fn phase_table(&self) -> PhaseTable {
        self.profiler.table()
    }

    /// The causal critical-path tracker. Provenance nodes are always
    /// recorded (pure sim-time arithmetic, byte-identical across thread
    /// counts).
    pub fn critpath(&self) -> &CritPathTracker {
        &self.critpath
    }

    /// Mutable critpath access, used by higher layers (the VQA runner)
    /// to root the chain and record host-side classical segments.
    pub fn critpath_mut(&mut self) -> &mut CritPathTracker {
        &mut self.critpath
    }

    /// Freezes the tracker's current chain into a per-edge
    /// blocking-time [`CritPathReport`].
    pub fn critpath_report(&self) -> CritPathReport {
        self.critpath.report()
    }

    /// Records a host-side classical segment as a `readout->host` chain
    /// step ending at `at` (the seven canonical edges contain no
    /// host->host hand-off; the host's classical work closes the loop on
    /// the edge that delivered it data).
    pub fn critpath_host_segment(&mut self, at: SimTime) {
        self.critpath
            .advance(self.edges.readout_host, at, CritKind::Ack);
    }

    /// Enables or disables wall-clock capture in the profiler. Sim-time
    /// spans and every exported metric are unaffected, so snapshots are
    /// byte-identical whether profiling is on or off.
    pub fn set_profiling(&mut self, enabled: bool) {
        self.profiler.set_wall_enabled(enabled);
    }

    /// Cumulative SLT statistics.
    pub fn slt_stats(&self) -> qtenon_controller::SltStats {
        self.pipeline.slt_stats()
    }

    /// The fault injector's plan and counters (read-only).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Fault-injection and recovery counters accumulated so far.
    /// All-zero whenever the configured plan is inert.
    pub fn resilience(&self) -> ResilienceSummary {
        ResilienceSummary {
            faults_injected: self.injector.injected_total(),
            bus_retries: self.bus.retries(),
            pgu_stalls: self.pipeline.pgu_stalls(),
            pgu_redispatches: self.pipeline.pgu_redispatches(),
            slt_invalidations: self.slt_stats().parity_invalidations,
            rbq_reclaims: self.rbq.reclaimed(),
            readout_retries: self.readout_retries,
            ecc_corrections: self.qcc.ecc_corrections(),
        }
    }

    /// `q_update`: one register value over the RoCC path (one cycle).
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Mem`] for non-`.regfile` or private targets.
    pub fn q_update(
        &mut self,
        now: SimTime,
        qaddr: QAddress,
        value: u32,
    ) -> Result<SimTime, SystemError> {
        let now = self.absorb_stall(now);
        self.qcc
            .write_regfile(AccessPort::HostPublic, qaddr, value)?;
        let d = self.host.clock().cycles(1);
        self.comm.q_update += d;
        self.comm.q_update_count += 1;
        self.dynamic_instructions += 1;
        self.lat_q_update.record(d.as_ps() / 1_000);
        self.flow_step(TraceLane::Communication, now);
        self.trace_event("q_update", TraceLane::Communication, now, d);
        self.critpath
            .advance(self.edges.host_bus, now + d, CritKind::Grant);
        Ok(now + d)
    }

    /// `q_set`: bulk-load program entries into a qubit chunk over
    /// TileLink (data path ❷), reading the image from host memory.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Mem`] for bad destination addresses.
    pub fn q_set_program(
        &mut self,
        now: SimTime,
        classical_addr: u64,
        qaddr: QAddress,
        entries: &[ProgramEntry],
    ) -> Result<SimTime, SystemError> {
        let now = self.absorb_stall(now);
        for (i, entry) in entries.iter().enumerate() {
            let dst = qaddr.offset(i as u64)?;
            self.qcc
                .write_program(AccessPort::HostPublic, dst, *entry)?;
        }
        // Source read walks the host hierarchy; the bus then moves the
        // 9-byte records. The two pipelines overlap, so charge the max.
        let bytes = entries.len() as u64 * 9;
        let read = self.hierarchy.access_range(classical_addr, bytes, false);
        self.profiler.record(self.phases.host_read, read);
        let transfer = self.bus_transfer(now, bytes)?;
        let complete = (now + read).max(transfer.complete);
        let d = complete.saturating_since(now);
        self.comm.q_set += d;
        self.comm.q_set_count += 1;
        self.dynamic_instructions += 1;
        self.lat_q_set.record(d.as_ps() / 1_000);
        self.flow_step(TraceLane::Communication, now);
        self.trace_event("q_set", TraceLane::Communication, now, d);
        self.critpath
            .advance(self.edges.host_bus, complete, CritKind::Grant);
        Ok(complete)
    }

    /// `q_acquire`: pull `.measure` entries back to host memory.
    ///
    /// Returns the data and the completion time. Under fault injection,
    /// each `.measure` read passes through the ECC decoder (correcting
    /// injected upsets) and an injected readout-classification timeout
    /// re-arms the readout processor with backoff up to the plan's retry
    /// budget.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Mem`] for bad source addresses and
    /// [`SystemError::Controller`] when the readout retry budget is
    /// exhausted.
    pub fn q_acquire(
        &mut self,
        now: SimTime,
        qaddr: QAddress,
        length: u64,
        classical_addr: u64,
    ) -> Result<(Vec<u64>, SimTime), SystemError> {
        let now = self.absorb_stall(now);
        let mut data = Vec::with_capacity(length as usize);
        for i in 0..length {
            let src = qaddr.offset(i)?;
            data.push(self.qcc.read_measure(AccessPort::HostPublic, src)?);
        }
        let bytes = length * 8;
        let transfer = self.bus_transfer(now, bytes)?;
        let write = self.hierarchy.access_range(classical_addr, bytes, true);
        self.profiler.record(self.phases.host_write, write);
        let mut complete = transfer.complete.max(now + write);
        if self.injector.is_active() {
            let timeouts = self.injector.geometric_failures(FaultSite::ReadoutTimeout);
            let budget = self.injector.plan().max_attempts.max(1);
            if timeouts >= budget {
                self.readout_retries += u64::from(budget - 1);
                return Err(SystemError::Controller(
                    ControllerError::ReadoutRetriesExhausted { attempts: budget },
                ));
            }
            if timeouts > 0 {
                let penalty = self.readout.retry_penalty(timeouts, self.injector.plan());
                self.readout_retries += u64::from(timeouts);
                complete = complete + penalty;
                self.trace_event(
                    "fault:readout_timeout",
                    TraceLane::Communication,
                    now,
                    SimDuration::ZERO,
                );
            }
        }
        self.barrier
            .mark_synced(classical_addr, bytes, transfer.complete);
        let d = complete.saturating_since(now);
        self.comm.q_acquire += d;
        self.comm.q_acquire_count += 1;
        self.dynamic_instructions += 1;
        self.lat_q_acquire.record(d.as_ps() / 1_000);
        self.flow_step(TraceLane::Communication, now);
        self.trace_event("q_acquire", TraceLane::Communication, now, d);
        self.critpath
            .advance(self.edges.chip_readout, complete, CritKind::Drain);
        Ok((data, complete))
    }

    /// A controller-initiated PUT of measurement results to host memory
    /// (the fine-grained path of Fig. 9b). Accounted as `q_acquire`-class
    /// traffic; marks the barrier when the request hits the bus.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Controller`] when injected bus faults
    /// exhaust the transfer's retry budget.
    pub fn put_results(
        &mut self,
        now: SimTime,
        classical_addr: u64,
        bytes: u64,
    ) -> Result<SimTime, SystemError> {
        let now = self.absorb_stall(now);
        let transfer = self.bus_transfer(now, bytes)?;
        self.barrier
            .mark_synced(classical_addr, bytes, transfer.complete);
        let d = transfer.complete.saturating_since(now);
        self.comm.q_acquire += d;
        self.comm.q_acquire_count += 1;
        self.lat_q_acquire.record(d.as_ps() / 1_000);
        self.flow_step(TraceLane::Communication, now);
        self.trace_event("put", TraceLane::Communication, now, d);
        // Early batches complete while the chip is still running; the
        // tracker's monotone clamp charges only the exposed tail.
        self.critpath
            .advance(self.edges.chip_readout, transfer.complete, CritKind::Drain);
        Ok(transfer.complete)
    }

    /// `q_gen`: run the pulse pipeline over regfile-resolved work items,
    /// writing generated pulses into the private `.pulse` segment.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Controller`] if a work item names a qubit
    /// outside the layout, and [`SystemError::Mem`] if a pulse write
    /// fails (cannot happen for layout-derived addresses).
    pub fn q_gen(
        &mut self,
        now: SimTime,
        items: &[(QubitId, GateType, u32)],
    ) -> Result<(PipelineReport, SimTime), SystemError> {
        let now = self.absorb_stall(now);
        let work: Vec<WorkItem> = items
            .iter()
            .map(|&(qubit, gate, data27)| WorkItem {
                qubit,
                gate,
                data27,
            })
            .collect();
        let wall = self.profiler.wall_start();
        let (report, resolved) = if self.injector.is_active() {
            self.pipeline
                .process_resilient(now, &work, &mut self.injector)?
        } else {
            self.pipeline.process(now, &work)?
        };
        self.profiler.wall_end(self.phases.pgu_dispatch, wall);
        for (item, pulse) in work.iter().zip(&resolved) {
            if pulse.generated {
                // Synthetic-but-deterministic pulse payload derived from
                // the work item; real systems compute an envelope here.
                let seed = ((item.data27 as u64) << 8) | item.gate.encode() as u64;
                let words: [u64; 10] = std::array::from_fn(|i| {
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64)
                });
                self.qcc
                    .write_pulse(AccessPort::Controller, pulse.qaddr, words)?;
            }
        }
        self.dynamic_instructions += 1;
        self.lat_q_gen.record(report.total_time.as_ps() / 1_000);
        self.profiler
            .record(self.phases.slt_resolve, report.front_time);
        self.profiler
            .record(self.phases.pgu_dispatch, report.pgu_busy);
        if report.stall_time > SimDuration::ZERO {
            self.profiler
                .record(self.phases.pgu_stall, report.stall_time);
        }
        self.flow_step(TraceLane::PulsePipeline, now);
        self.trace_event(
            format!("q_gen[{}]", report.entries),
            TraceLane::PulsePipeline,
            now,
            report.total_time,
        );
        // Three chain steps through the pipeline front: the SLT resolve
        // hands to the PGU, the PGU to the pulse pipeline, the pipeline
        // finishes at q_gen's completion. Stages overlap in the model,
        // so intermediate steps are capped at the op's completion time.
        let gen_done = now + report.total_time;
        self.critpath.advance(
            self.edges.bus_slt,
            (now + report.front_time).min(gen_done),
            CritKind::Pop,
        );
        self.critpath.advance(
            self.edges.slt_pgu,
            (now + report.front_time + report.pgu_busy).min(gen_done),
            CritKind::Dispatch,
        );
        self.critpath
            .advance(self.edges.pgu_pipeline, gen_done, CritKind::Dispatch);
        Ok((report, gen_done))
    }

    /// `q_run`: execute the bound circuit for `shots` repetitions,
    /// depositing packed measurement words into `.measure`.
    ///
    /// Sampling fans out across the configured worker threads in
    /// contiguous shot shards; every shot draws from its own
    /// `(seed, global shot index)` RNG stream and shard results merge in
    /// canonical shard order, so the outcome is bitwise identical at any
    /// thread count. The `.measure` deposit (and its per-shot fault
    /// draws) stays serial over the merged shots — the QCC is a single
    /// shared device.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Quantum`] for simulation failures and
    /// [`SystemError::Mem`] if `.measure` overflows.
    pub fn q_run(
        &mut self,
        now: SimTime,
        circuit: &Circuit,
        shots: u64,
    ) -> Result<RunOutcome, SystemError> {
        let now = self.absorb_stall(now);
        let timing = CircuitTiming::of(circuit, &self.config.gate_times);
        let prep_wall = self.profiler.wall_start();
        let prepared = self.simulator.prepare(circuit)?;
        self.profiler
            .wall_end(self.phases.kernel_prepare, prep_wall);
        self.fuse_stats.absorb(&prepared.fuse_stats());
        let base = self.simulator.advance_cursor(shots);
        let plan = ShardPlan::new(shots, self.config.threads);
        let wall = self.profiler.wall_start();
        let simulator = &self.simulator;
        let shard_outputs = parallel::run_sharded(&plan, |shard| {
            let mut bits = Vec::with_capacity(shard.shots as usize);
            let mut ones = Histogram::new();
            for s in shard.first_shot..shard.first_shot + shard.shots {
                let shot = prepared.sample_shot(&mut simulator.shot_rng(base + s));
                ones.record(u64::from(shot.count_ones()));
                bits.push(shot);
            }
            let mut worker_metrics = MetricsRegistry::new();
            worker_metrics.counter("core.parallel.shots_sampled", shard.shots);
            worker_metrics.histogram("core.parallel.ones_per_shot", &ones);
            (bits, worker_metrics)
        });
        let mut results: Vec<BitString> = Vec::with_capacity(shots as usize);
        for (bits, worker_metrics) in shard_outputs {
            results.extend(bits);
            self.shard_metrics.merge(&worker_metrics);
        }
        self.profiler.wall_end(self.phases.chip_execute, wall);
        // Pack each shot's bits into consecutive 64-bit measure entries.
        self.measure_cursor = 0;
        let layout = self.config.layout;
        let faults_active = self.injector.is_active();
        for (i, bits) in results.iter().enumerate() {
            // Bit-flip draws come from the shot's own fault sub-stream,
            // keyed by global shot index, so the schedule is independent
            // of shard boundaries; counters fold back in shot order.
            let mut shot_injector = faults_active.then(|| self.injector.for_shot(base + i as u64));
            for &word in bits.words() {
                let addr = layout.measure_entry(self.measure_cursor).map_err(|_| {
                    SystemError::Config(format!(
                        ".measure overflow at {} entries",
                        self.measure_cursor
                    ))
                })?;
                self.qcc.write_measure(AccessPort::Controller, addr, word)?;
                if let Some(inj) = shot_injector.as_mut() {
                    if inj.bernoulli(FaultSite::QccBitFlip) {
                        // A single-event upset lands on the freshly written
                        // word; the ECC decoder corrects it on the next read.
                        self.qcc
                            .poison_measure(addr, 1u64 << (self.measure_cursor & 63))?;
                    }
                }
                self.measure_cursor = (self.measure_cursor + 1) % layout.measure_entries();
            }
            if let Some(inj) = shot_injector {
                self.injector.absorb(&inj);
            }
        }
        let complete = now
            + self.adi.interface_latency
            + timing.shot_duration * shots
            + self.adi.readout_latency();
        self.dynamic_instructions += 1;
        self.lat_q_run
            .record(complete.saturating_since(now).as_ps() / 1_000);
        self.profiler.span(self.phases.chip_execute, now, complete);
        self.flow_end(TraceLane::QuantumChip, now);
        self.trace_event(
            format!("q_run[{shots}]"),
            TraceLane::QuantumChip,
            now,
            complete.saturating_since(now),
        );
        self.critpath
            .advance(self.edges.pipeline_chip, complete, CritKind::Complete);
        Ok(RunOutcome {
            shots: results,
            shot_duration: timing.shot_duration,
            complete,
        })
    }

    /// Registers every modelled component's statistics under the stable
    /// dotted namespaces `mem.*`, `controller.*`, and `core.*`.
    ///
    /// Calling this repeatedly overwrites earlier values, so one registry
    /// can track a system across snapshots.
    pub fn export_metrics(&self, m: &mut MetricsRegistry) {
        self.profiler.export_metrics(m, "profile");
        self.critpath.report().export_metrics(m, "critpath.edge");
        self.hierarchy.export_metrics(m, "mem");
        self.qcc.export_metrics(m, "mem.qcc");
        self.pipeline.export_metrics(m, "controller");
        self.bus.export_metrics(m, "controller.bus");
        self.barrier.export_metrics(m, "controller.barrier");
        self.rbq.export_metrics(m, "controller.rbq");
        m.counter("core.instructions", self.dynamic_instructions);
        m.counter("core.instr.q_update.count", self.comm.q_update_count);
        m.gauge("core.instr.q_update.total_ns", self.comm.q_update.as_ns());
        m.histogram("core.instr.q_update.latency_ns", &self.lat_q_update);
        m.counter("core.instr.q_set.count", self.comm.q_set_count);
        m.gauge("core.instr.q_set.total_ns", self.comm.q_set.as_ns());
        m.histogram("core.instr.q_set.latency_ns", &self.lat_q_set);
        m.counter("core.instr.q_acquire.count", self.comm.q_acquire_count);
        m.gauge("core.instr.q_acquire.total_ns", self.comm.q_acquire.as_ns());
        m.histogram("core.instr.q_acquire.latency_ns", &self.lat_q_acquire);
        m.histogram("core.instr.q_gen.latency_ns", &self.lat_q_gen);
        m.histogram("core.instr.q_run.latency_ns", &self.lat_q_run);
        // Shot-shard worker telemetry, re-registered with the same
        // overwrite semantics as everything else (the shard-order merge
        // already happened inside q_run).
        for (path, value) in self.shard_metrics.iter() {
            match value {
                MetricValue::Counter(v) => m.counter(path, *v),
                MetricValue::Gauge(v) => m.gauge(path, *v),
                MetricValue::Histogram(h) => m.histogram(path, h),
            }
        }
        // Kernel/fusion accounting appears only when the exact backend
        // ran (mean-field preparation never lowers through the kernel
        // layer), keeping mean-field snapshots byte-identical to the
        // pre-kernel model's.
        if !self.fuse_stats.is_empty() {
            let f = &self.fuse_stats;
            m.counter("quantum.fuse.gates_in", f.gates_in);
            m.counter("quantum.fuse.gates_fused", f.gates_fused);
            m.counter("quantum.fuse.runs", f.runs);
            m.counter("quantum.fuse.fused_runs", f.fused_runs);
            m.counter("quantum.fuse.identities_elided", f.identities_elided);
            m.counter("quantum.fuse.kernels.diag", f.diag_kernels);
            m.counter("quantum.fuse.kernels.general", f.general_kernels);
            m.counter("quantum.fuse.kernels.cz", f.cz_kernels);
        }
        // Fault and recovery namespaces appear only under an active plan,
        // keeping fault-free snapshots identical to the fault-unaware
        // model's.
        if self.injector.is_active() {
            self.injector.export_metrics(m, "faults");
            let r = self.resilience();
            m.counter("resilience.retries", r.total_retries());
            m.counter("resilience.bus_retries", r.bus_retries);
            m.counter("resilience.pgu_stalls", r.pgu_stalls);
            m.counter("resilience.pgu_redispatches", r.pgu_redispatches);
            m.counter("resilience.slt_invalidation", r.slt_invalidations);
            m.counter("resilience.rbq_reclaims", r.rbq_reclaims);
            m.counter("resilience.rbq_stalls", self.rbq_stalls);
            m.counter("resilience.readout_retries", r.readout_retries);
            m.counter("resilience.ecc_corrections", r.ecc_corrections);
        }
    }

    /// Resets transient state between independent experiment runs while
    /// keeping the warm SLT (use [`QtenonSystem::cold_reset`] to drop it).
    pub fn reset_accounting(&mut self) {
        self.comm = CommBreakdown::default();
        self.dynamic_instructions = 0;
        self.bus.reset();
        self.barrier.reset();
        self.rbq = ReorderBufferQueue::new();
        self.active_flow = None;
        self.injector = FaultInjector::new(self.config.faults);
        self.readout_retries = 0;
        self.rbq_stalls = 0;
        self.pending_stall = SimDuration::ZERO;
        self.fuse_stats = FuseStats::default();
        self.shard_metrics = MetricsRegistry::new();
        self.profiler.reset();
        self.critpath.reset();
        self.lat_q_update.reset();
        self.lat_q_set.reset();
        self.lat_q_acquire.reset();
        self.lat_q_gen.reset();
        self.lat_q_run.reset();
    }

    /// Drops all cached pulse state as well (a from-scratch system).
    pub fn cold_reset(&mut self) {
        self.reset_accounting();
        self.pipeline.reset();
        self.hierarchy.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreModel, QtenonConfig};
    use qtenon_isa::EncodedAngle;

    fn system(n: u32) -> QtenonSystem {
        QtenonSystem::new(QtenonConfig::table4(n, CoreModel::Rocket).unwrap()).unwrap()
    }

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn q_update_is_one_cycle_and_functional() {
        let mut sys = system(8);
        let addr = sys.config().layout.regfile_entry(3).unwrap();
        let done = sys.q_update(t0(), addr, 0xabcd).unwrap();
        assert_eq!(done.saturating_since(t0()), SimDuration::from_ns(1));
        assert_eq!(sys.qcc().regfile_by_index(3), 0xabcd);
        assert_eq!(sys.comm().q_update_count, 1);
    }

    #[test]
    fn q_update_rejects_program_segment() {
        let mut sys = system(8);
        let addr = sys
            .config()
            .layout
            .program_entry(QubitId::new(0), 0)
            .unwrap();
        assert!(sys.q_update(t0(), addr, 1).is_err());
    }

    #[test]
    fn q_set_writes_entries_and_charges_bus_time() {
        let mut sys = system(8);
        let layout = sys.config().layout;
        let qaddr = layout.program_entry(QubitId::new(2), 0).unwrap();
        let entries =
            vec![ProgramEntry::rotation(GateType::Rx, EncodedAngle::from_radians(0.3)); 16];
        let done = sys.q_set_program(t0(), 0x8000, qaddr, &entries).unwrap();
        assert!(done > t0());
        let read_back = sys
            .qcc()
            .read_program(AccessPort::HostPublic, qaddr.offset(15).unwrap())
            .unwrap();
        assert_eq!(read_back, entries[15]);
        assert_eq!(sys.comm().q_set_count, 1);
        assert!(sys.comm().q_set > SimDuration::ZERO);
    }

    #[test]
    fn q_gen_generates_then_skips() {
        let mut sys = system(8);
        let items = vec![(
            QubitId::new(0),
            GateType::Ry,
            EncodedAngle::from_radians(1.0).code(),
        )];
        let (cold, _) = sys.q_gen(t0(), &items).unwrap();
        assert_eq!(cold.generated, 1);
        let (warm, _) = sys.q_gen(t0(), &items).unwrap();
        assert_eq!(warm.generated, 0);
        assert_eq!(sys.slt_stats().hits, 1);
    }

    #[test]
    fn q_run_deposits_measure_words() {
        let mut sys = system(4);
        let mut c = Circuit::new(4);
        c.rx(0, std::f64::consts::PI).measure_all();
        let outcome = sys.q_run(t0(), &c, 10).unwrap();
        assert_eq!(outcome.shots.len(), 10);
        // Qubit 0 always measures 1.
        assert!(outcome.shots.iter().all(|s| s.get(0)));
        let layout = sys.config().layout;
        let first = sys
            .qcc()
            .read_measure(AccessPort::HostPublic, layout.measure_entry(0).unwrap())
            .unwrap();
        assert_eq!(first & 1, 1);
        // Timing: 2 × 100 ns ADI + 10 × (20 + 600) ns.
        assert_eq!(
            outcome.complete.saturating_since(t0()),
            SimDuration::from_ns(200 + 10 * 1220)
        );
    }

    #[test]
    fn q_run_is_bitwise_identical_at_any_thread_count() {
        use qtenon_sim_engine::FaultPlan;
        let run = |threads: usize, faults: FaultPlan| {
            let cfg = QtenonConfig::table4(6, CoreModel::Rocket)
                .unwrap()
                .with_threads(threads)
                .with_faults(faults);
            let mut sys = QtenonSystem::new(cfg).unwrap();
            let mut c = Circuit::new(6);
            c.ry(0, 1.0).ry(3, 0.7).cz(0, 3).measure_all();
            let out = sys.q_run(t0(), &c, 128).unwrap();
            let mut m = MetricsRegistry::new();
            sys.export_metrics(&mut m);
            (out.shots, m.snapshot().to_json(), sys.resilience())
        };
        for faults in [FaultPlan::default(), FaultPlan::all(0.05).with_seed(0xFA17)] {
            let serial = run(1, faults);
            for threads in [2usize, 4, 8] {
                let parallel = run(threads, faults);
                assert_eq!(parallel.0, serial.0, "shots diverged at {threads} threads");
                assert_eq!(
                    parallel.1, serial.1,
                    "metrics JSON diverged at {threads} threads"
                );
                assert_eq!(parallel.2, serial.2);
            }
        }
    }

    #[test]
    fn fused_and_unfused_q_run_are_bitwise_identical() {
        let run = |fuse: bool| {
            let cfg = QtenonConfig::table4(8, CoreModel::Rocket)
                .unwrap()
                .with_fuse(fuse);
            let mut sys = QtenonSystem::new(cfg).unwrap();
            let mut c = Circuit::new(8);
            c.rz(0, 0.3).rx(0, 0.7).ry(0, -0.2).cz(0, 1);
            c.rx(5, 1.1).rz(5, 0.4).measure_all();
            let out = sys.q_run(t0(), &c, 128).unwrap();
            let mut m = MetricsRegistry::new();
            sys.export_metrics(&mut m);
            (out.shots, out.complete, m)
        };
        let fused = run(true);
        let unfused = run(false);
        assert_eq!(fused.0, unfused.0, "shots diverged under fusion");
        assert_eq!(fused.1, unfused.1);
        // The only permitted metric difference is the fusion accounting
        // itself.
        use qtenon_sim_engine::MetricValue;
        // Two fused runs: q0's three-gate run and q5's two-gate run.
        assert_eq!(
            fused.2.get("quantum.fuse.fused_runs"),
            Some(&MetricValue::Counter(2))
        );
        assert_eq!(
            unfused.2.get("quantum.fuse.fused_runs"),
            Some(&MetricValue::Counter(0))
        );
        let strip = |m: &MetricsRegistry| {
            let mut out = MetricsRegistry::new();
            for (path, value) in m.iter() {
                if path.starts_with("quantum.fuse.") {
                    continue;
                }
                match value {
                    MetricValue::Counter(v) => out.counter(path, *v),
                    MetricValue::Gauge(v) => out.gauge(path, *v),
                    MetricValue::Histogram(h) => out.histogram(path, h),
                }
            }
            out.snapshot().to_json()
        };
        assert_eq!(strip(&fused.2), strip(&unfused.2));
    }

    #[test]
    fn fuse_metrics_appear_only_for_the_exact_backend() {
        let run = |n_qubits: u32| {
            let mut sys =
                QtenonSystem::new(QtenonConfig::table4(n_qubits, CoreModel::Rocket).unwrap())
                    .unwrap();
            let mut c = Circuit::new(n_qubits);
            c.rx(0, 1.0).rz(0, 0.5).cz(0, 1).measure_all();
            sys.q_run(t0(), &c, 16).unwrap();
            let mut m = MetricsRegistry::new();
            sys.export_metrics(&mut m);
            m
        };
        // 8 qubits: exact backend, accounting present.
        use qtenon_sim_engine::MetricValue;
        let exact = run(8);
        assert_eq!(
            exact.get("quantum.fuse.gates_in"),
            Some(&MetricValue::Counter(3))
        );
        assert_eq!(
            exact.get("quantum.fuse.kernels.cz"),
            Some(&MetricValue::Counter(1))
        );
        // 64 qubits: mean-field backend, namespace absent entirely.
        let mean_field = run(64);
        assert!(mean_field
            .iter()
            .all(|(path, _)| !path.starts_with("quantum.fuse.")));
    }

    #[test]
    fn shard_metrics_cover_every_sampled_shot() {
        let mut sys = QtenonSystem::new(
            QtenonConfig::table4(4, CoreModel::Rocket)
                .unwrap()
                .with_threads(4),
        )
        .unwrap();
        let mut c = Circuit::new(4);
        c.rx(0, std::f64::consts::PI).measure_all();
        sys.q_run(t0(), &c, 100).unwrap();
        let mut m = MetricsRegistry::new();
        sys.export_metrics(&mut m);
        use qtenon_sim_engine::MetricValue;
        assert_eq!(
            m.get("core.parallel.shots_sampled"),
            Some(&MetricValue::Counter(100))
        );
        match m.get("core.parallel.ones_per_shot") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count(), 100);
                // rx(π) pins qubit 0 to |1⟩, so every shot has ≥ 1 one.
                assert!(h.min().unwrap() >= 1);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        // Repeated export must overwrite, not double-count.
        sys.export_metrics(&mut m);
        assert_eq!(
            m.get("core.parallel.shots_sampled"),
            Some(&MetricValue::Counter(100))
        );
    }

    #[test]
    fn system_graph_send_sync_audit() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        // The whole system migrates between threads (Send), but its QCC
        // interior mutability forbids sharing (&System is not handed to
        // workers); the worker-facing pieces are fully shareable.
        assert_send::<QtenonSystem>();
        assert_sync::<qtenon_quantum::PreparedCircuit>();
        assert_sync::<Simulator>();
        assert_send::<BitString>();
    }

    #[test]
    fn q_acquire_returns_written_data_and_syncs_barrier() {
        let mut sys = system(4);
        let mut c = Circuit::new(4);
        c.x(0); // not native: build natively instead
        let mut c = Circuit::new(4);
        c.rx(0, std::f64::consts::PI).measure_all();
        sys.q_run(t0(), &c, 4).unwrap();
        let maddr = sys.config().layout.measure_entry(0).unwrap();
        let (data, done) = sys.q_acquire(t0(), maddr, 4, 0xA000).unwrap();
        assert_eq!(data.len(), 4);
        assert!(data.iter().all(|w| w & 1 == 1));
        assert!(done > t0());
        assert!(sys.barrier_mut().is_synced(0xA000));
        assert!(sys.barrier_mut().is_synced(0xA000 + 31));
        assert!(!sys.barrier_mut().is_synced(0xA000 + 32));
    }

    #[test]
    fn put_results_accounts_as_acquire_traffic() {
        let mut sys = system(8);
        let done = sys.put_results(t0(), 0xB000, 32).unwrap();
        assert!(done > t0());
        assert_eq!(sys.comm().q_acquire_count, 1);
        assert!(sys.barrier_mut().is_synced(0xB000));
    }

    #[test]
    fn resets_preserve_or_drop_slt() {
        let mut sys = system(8);
        let items = vec![(QubitId::new(1), GateType::Rz, 12345u32)];
        sys.q_gen(t0(), &items).unwrap();
        sys.reset_accounting();
        let (warm, _) = sys.q_gen(t0(), &items).unwrap();
        assert_eq!(warm.generated, 0); // SLT survives accounting reset
        sys.cold_reset();
        let (cold, _) = sys.q_gen(t0(), &items).unwrap();
        assert_eq!(cold.generated, 1);
    }

    #[test]
    fn dynamic_instruction_counter_increments() {
        let mut sys = system(8);
        let addr = sys.config().layout.regfile_entry(0).unwrap();
        sys.q_update(t0(), addr, 1).unwrap();
        sys.q_update(t0(), addr, 2).unwrap();
        assert_eq!(sys.dynamic_instructions(), 2);
    }

    #[test]
    fn metrics_span_all_three_namespaces() {
        let mut sys = system(4);
        let addr = sys.config().layout.regfile_entry(0).unwrap();
        sys.q_update(t0(), addr, 7).unwrap();
        let items = vec![(QubitId::new(0), GateType::Rx, 123u32)];
        sys.q_gen(t0(), &items).unwrap();
        let mut m = qtenon_sim_engine::MetricsRegistry::new();
        sys.export_metrics(&mut m);
        assert!(m.len() >= 20, "only {} metric paths", m.len());
        for ns in ["mem.", "controller.", "core."] {
            assert!(
                m.paths().iter().any(|p| p.starts_with(ns)),
                "no {ns}* metrics"
            );
        }
        // Spot-check values flow through.
        use qtenon_sim_engine::MetricValue;
        assert_eq!(
            m.get("controller.slt.lookups"),
            Some(&MetricValue::Counter(1))
        );
        assert_eq!(m.get("core.instructions"), Some(&MetricValue::Counter(2)));
    }

    #[test]
    fn inert_plan_exports_no_fault_metrics() {
        let mut sys = system(4);
        let addr = sys.config().layout.regfile_entry(0).unwrap();
        sys.q_update(t0(), addr, 7).unwrap();
        let items = vec![(QubitId::new(0), GateType::Rx, 123u32)];
        sys.q_gen(t0(), &items).unwrap();
        assert!(sys.resilience().is_zero());
        let mut m = MetricsRegistry::new();
        sys.export_metrics(&mut m);
        assert!(!m
            .paths()
            .iter()
            .any(|p| p.starts_with("faults.") || p.starts_with("resilience.")));
    }

    #[test]
    fn faulty_run_recovers_and_reproduces_counters() {
        use qtenon_sim_engine::FaultPlan;
        let run = || {
            let plan = FaultPlan::all(0.05).with_seed(0xFA17);
            let cfg = QtenonConfig::table4(4, CoreModel::Rocket)
                .unwrap()
                .with_faults(plan);
            let mut sys = QtenonSystem::new(cfg).unwrap();
            let layout = sys.config().layout;
            let qaddr = layout.program_entry(QubitId::new(0), 0).unwrap();
            let entries =
                vec![ProgramEntry::rotation(GateType::Rx, EncodedAngle::from_radians(0.3)); 8];
            let mut c = Circuit::new(4);
            c.rx(0, std::f64::consts::PI).measure_all();
            let mut t = t0();
            for i in 0..25u32 {
                t = sys.q_set_program(t, 0x8000, qaddr, &entries).unwrap();
                let items = vec![(
                    QubitId::new(0),
                    GateType::Ry,
                    EncodedAngle::from_radians(0.01 * f64::from(i)).code(),
                )];
                let (_, tg) = sys.q_gen(t, &items).unwrap();
                let out = sys.q_run(tg, &c, 4).unwrap();
                let maddr = layout.measure_entry(0).unwrap();
                let (data, done) = sys.q_acquire(out.complete, maddr, 4, 0xA000).unwrap();
                // ECC corrects injected upsets before data leaves `.measure`.
                assert!(data.iter().all(|w| w & 1 == 1));
                t = done;
            }
            let mut m = MetricsRegistry::new();
            sys.export_metrics(&mut m);
            assert!(m.paths().iter().any(|p| p.starts_with("faults.injected.")));
            assert!(m.get("resilience.retries").is_some());
            sys.resilience()
        };
        let a = run();
        let b = run();
        // The run completed despite injected faults, recovered at least
        // once, and the whole counter set reproduces under the same seed.
        assert!(a.faults_injected > 0, "no faults fired: {a:?}");
        assert!(a.total_retries() > 0, "no recovery actions: {a:?}");
        assert_eq!(a, b);
    }

    #[test]
    fn profiler_attributes_system_phases() {
        let mut sys = system(4);
        let items = vec![(QubitId::new(0), GateType::Rx, 123u32)];
        let (_, t) = sys.q_gen(t0(), &items).unwrap();
        let mut c = Circuit::new(4);
        c.rx(0, 1.0).measure_all();
        let out = sys.q_run(t, &c, 3).unwrap();
        let maddr = sys.config().layout.measure_entry(0).unwrap();
        sys.q_acquire(out.complete, maddr, 1, 0xA000).unwrap();
        let table = sys.phase_table();
        for phase in [
            "controller.slt_resolve",
            "controller.pgu_dispatch",
            "controller.bus_transfer",
            "mem.host_write",
            "chip.execute",
        ] {
            assert!(table.row(phase).is_some(), "missing phase {phase}");
        }
        let mut m = MetricsRegistry::new();
        sys.export_metrics(&mut m);
        assert!(m.get("profile.chip.execute.count").is_some());
        assert!(m.get("profile.chip.execute.sim_ns").is_some());
        // Enabling wall-clock capture must not change exported metrics.
        sys.set_profiling(true);
        let mut m2 = MetricsRegistry::new();
        sys.export_metrics(&mut m2);
        assert_eq!(m.snapshot().to_json(), m2.snapshot().to_json());
        // Accounting reset clears the attribution table.
        sys.reset_accounting();
        assert!(sys.phase_table().is_empty());
    }

    #[test]
    fn flows_link_one_rbq_tag_across_lanes() {
        use crate::trace::TraceLane;
        let mut sys = system(4);
        sys.set_tracing(true);
        let addr = sys.config().layout.regfile_entry(0).unwrap();
        sys.q_update(t0(), addr, 1).unwrap();
        let items = vec![(QubitId::new(0), GateType::Rx, 77u32)];
        let (_, t) = sys.q_gen(t0(), &items).unwrap();
        let mut c = Circuit::new(4);
        c.rx(0, 1.0).measure_all();
        sys.q_run(t, &c, 2).unwrap();
        let trace = sys.take_trace().unwrap();
        let lanes = trace.flow_lanes(0);
        assert!(
            lanes.len() >= 3,
            "flow 0 spans only {} lanes: {lanes:?}",
            lanes.len()
        );
        assert!(lanes.contains(&TraceLane::Host));
        assert!(lanes.contains(&TraceLane::QuantumChip));
        // The next request opens a fresh flow with a recycled tag.
        sys.q_update(t0(), addr, 2).unwrap();
        let trace = sys.take_trace().unwrap();
        assert!(!trace.flow_lanes(1).is_empty());
    }
}
