//! Deterministic multi-job batch scheduling over one shared worker pool.
//!
//! PR 4's shot-sharded engine executes exactly one VQA job at a time;
//! this module is the platform layer on top of it: N independent jobs —
//! each with its own configuration, seed, and optional fault plan — are
//! admitted into a bounded queue (FIFO within a priority level, higher
//! priorities first) and executed by a pool of job workers, each of
//! which shot-shards its job across the pool's remaining threads
//! ([`PoolPlan`] splits `threads` into `job_workers × shard_threads`).
//!
//! # Determinism
//!
//! Every job's artefacts — its [`RunReport`] and metrics-JSON export —
//! are byte-identical to running that job alone:
//!
//! 1. A job's seed is fixed at admission: the explicit `seed` in its
//!    spec, else [`stream_seed`]`(fleet_seed, submission_index)`. It
//!    never depends on scheduling order or completion order.
//! 2. Jobs share no mutable state: each runs in its own
//!    [`VqaRunner`](crate::vqa::VqaRunner) via the same
//!    [`run_standalone`] function the standalone path uses.
//! 3. Within a job, the shot-sharded engine is thread-count invariant,
//!    so the pool's `shard_threads` choice never shows up in results.
//! 4. Results are collected into canonical submission order regardless
//!    of completion order.
//!
//! Only fleet-level wall-clock observables (`jobs.*` wait/turnaround
//! histograms, throughput gauges) depend on the pool shape — they
//! describe the schedule, not the jobs.
//!
//! # Fault containment
//!
//! PR 8 adds the recovery layer: each attempt runs under
//! `catch_unwind`, so a panicking job becomes a
//! [`JobOutcome::Quarantined`] line in the ledger instead of killing the
//! fleet; per-job sim-time deadlines cut the VQA loop at iteration
//! boundaries into [`JobOutcome::TimedOut`] with partial-progress stats;
//! and transient execution failures re-enter the queue with a
//! per-attempt seed from [`stream_seed`]`(job_seed, attempt)` under a
//! bounded retry budget, after which the job is quarantined. Retry
//! decisions are [`retry_decision`] — a pure function of (spec, attempt,
//! outcome) — and backoff is expressed in *admission-order dispatch
//! slots*, not wall-clock, so every pool width produces the identical
//! outcome [`BatchReport::ledger`].
//!
//! # Examples
//!
//! ```
//! use qtenon_core::jobs::{BatchScheduler, JobSpec};
//! use qtenon_workloads::WorkloadKind;
//!
//! let mut sched = BatchScheduler::new(42);
//! sched.submit(JobSpec::new("a", WorkloadKind::Vqe, 8))?;
//! sched.submit(JobSpec::new("b", WorkloadKind::Qaoa, 8).with_priority(3))?;
//! let batch = sched.run(2)?;
//! // Canonical submission order, even though "b" ran first (priority 3).
//! assert_eq!(batch.results[0].name, "a");
//! assert_eq!(batch.results[1].name, "b");
//! # Ok::<(), qtenon_core::jobs::JobError>(())
//! ```

use std::cmp::Reverse;
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qtenon_compiler::{CacheStats, CompilationCache};
use qtenon_isa::QccLayout;
use qtenon_sim_engine::{
    stream_seed, FaultPlan, Histogram, MetricValue, MetricsRegistry, SimDuration,
};
use qtenon_workloads::{
    GradientDescentOptimizer, Optimizer, SpsaOptimizer, Workload, WorkloadKind,
};

use crate::config::{CoreModel, QtenonConfig, SyncMode, TransmissionPolicy};
use crate::report::RunReport;
use crate::vqa::VqaRunner;

/// Default bounded-queue capacity.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Default fleet seed (matches the single-run default in `QtenonConfig`).
pub const DEFAULT_FLEET_SEED: u64 = 0x51;

/// Which optimizer a job uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOptimizer {
    /// SPSA (two evaluations per iteration).
    Spsa,
    /// Gradient descent via the parameter-shift rule.
    Gd,
}

impl JobOptimizer {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            JobOptimizer::Spsa => "SPSA",
            JobOptimizer::Gd => "GD",
        }
    }

    /// Builds the optimizer for a job seed.
    pub fn build(self, seed: u64) -> Box<dyn Optimizer> {
        match self {
            JobOptimizer::Spsa => Box::new(SpsaOptimizer::new(seed)),
            JobOptimizer::Gd => Box::new(GradientDescentOptimizer::new(0.05)),
        }
    }
}

/// One VQA job: everything needed to build its config, workload, and
/// optimizer. The spec is pure data — submitting it never runs anything.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job name (for reports and artefact filenames).
    pub name: String,
    /// Workload family.
    pub kind: WorkloadKind,
    /// Qubit count.
    pub n_qubits: u32,
    /// Host core model.
    pub core: CoreModel,
    /// Optimizer.
    pub optimizer: JobOptimizer,
    /// Optimizer iterations.
    pub iterations: usize,
    /// Shots per circuit evaluation.
    pub shots: u64,
    /// Admission priority: higher runs earlier; FIFO within a level.
    pub priority: u8,
    /// Explicit seed; `None` derives one from the fleet seed and the
    /// job's submission index at admission time.
    pub seed: Option<u64>,
    /// Synchronisation mode.
    pub sync: SyncMode,
    /// Measurement transmission policy.
    pub transmission: TransmissionPolicy,
    /// Optional fault-injection plan for this job only.
    pub faults: Option<FaultPlan>,
    /// Transient-failure retry budget: how many times a failed attempt
    /// re-enters the queue before the job is quarantined. 0 (the
    /// default) preserves the pre-containment behaviour: one attempt,
    /// failures surface as [`JobOutcome::Failed`].
    pub retry_budget: u32,
    /// Optional per-job sim-time deadline, enforced cooperatively at
    /// iteration boundaries in the VQA loop. `None` never times out.
    pub deadline: Option<SimDuration>,
    /// Chaos hook: panic deliberately at the start of every attempt.
    /// Exercises the quarantine path end to end (tests, CI, `--chaos`).
    pub chaos_panic: bool,
    /// Chaos hook: fail (transiently) every attempt whose index is below
    /// this count, deterministically. `chaos_fail_attempts: 2` means
    /// attempts 0 and 1 error and attempt 2 runs normally — the scripted
    /// recovery the retry path is measured against.
    pub chaos_fail_attempts: u32,
    /// Gate fusion in the exact statevector backend (default on). A pure
    /// performance toggle — fused and unfused execution are bitwise
    /// interchangeable — surfaced so `batch --no-fuse` can flip a whole
    /// fleet for the differential artefact checks.
    pub fuse: bool,
    /// Participation in the fleet compilation cache (default on). Only
    /// meaningful when the batch itself runs with a cache: a job with
    /// `cache: false` always compiles cold, even in a cached fleet.
    /// Like `fuse`, a pure wall-clock knob — hits are byte-identical to
    /// cold compiles, so this never changes any artefact.
    pub cache: bool,
}

impl JobSpec {
    /// A spec with the paper-default policies, SPSA, 2 iterations, and
    /// 100 shots.
    pub fn new(name: &str, kind: WorkloadKind, n_qubits: u32) -> Self {
        JobSpec {
            name: name.to_string(),
            kind,
            n_qubits,
            core: CoreModel::Rocket,
            optimizer: JobOptimizer::Spsa,
            iterations: 2,
            shots: 100,
            priority: 0,
            seed: None,
            sync: SyncMode::default(),
            transmission: TransmissionPolicy::default(),
            faults: None,
            retry_budget: 0,
            deadline: None,
            chaos_panic: false,
            chaos_fail_attempts: 0,
            fuse: true,
            cache: true,
        }
    }

    /// Returns a copy with a different host core.
    pub fn with_core(mut self, core: CoreModel) -> Self {
        self.core = core;
        self
    }

    /// Returns a copy with a different optimizer.
    pub fn with_optimizer(mut self, optimizer: JobOptimizer) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Returns a copy with a different iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Returns a copy with a different shot count.
    pub fn with_shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Returns a copy with a different admission priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Returns a copy with an explicit seed (opting out of fleet-seed
    /// derivation).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Returns a copy with a different synchronisation mode.
    pub fn with_sync(mut self, sync: SyncMode) -> Self {
        self.sync = sync;
        self
    }

    /// Returns a copy with a different transmission policy.
    pub fn with_transmission(mut self, transmission: TransmissionPolicy) -> Self {
        self.transmission = transmission;
        self
    }

    /// Returns a copy with a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Returns a copy with a transient-failure retry budget.
    pub fn with_retry_budget(mut self, retries: u32) -> Self {
        self.retry_budget = retries;
        self
    }

    /// Returns a copy with a per-job sim-time deadline.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns a copy that panics deliberately on every attempt (chaos
    /// hook pinning the quarantine path).
    pub fn with_chaos_panic(mut self) -> Self {
        self.chaos_panic = true;
        self
    }

    /// Returns a copy whose first `attempts` attempts fail transiently
    /// (chaos hook pinning the retry path).
    pub fn with_chaos_fail_attempts(mut self, attempts: u32) -> Self {
        self.chaos_fail_attempts = attempts;
        self
    }

    /// Returns a copy with gate fusion enabled or disabled.
    pub fn with_fuse(mut self, fuse: bool) -> Self {
        self.fuse = fuse;
        self
    }

    /// Returns a copy with fleet-cache participation enabled or
    /// disabled.
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }
}

/// Typed scheduler failures. Admission rejections and malformed specs
/// are values, never panics — a full queue degrades, it does not abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The bounded queue is full; the job was rejected at admission.
    QueueFull {
        /// The queue capacity that was exceeded.
        capacity: usize,
    },
    /// `run` was called with no admitted jobs.
    EmptyBatch,
    /// A job spec could not be parsed or validated.
    Spec {
        /// What was wrong.
        reason: String,
    },
    /// A job failed while executing.
    Execution {
        /// The job's name.
        job: String,
        /// The underlying failure.
        reason: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::QueueFull { capacity } => {
                write!(f, "job queue full (capacity {capacity})")
            }
            JobError::EmptyBatch => write!(f, "no jobs admitted"),
            JobError::Spec { reason } => write!(f, "bad job spec: {reason}"),
            JobError::Execution { job, reason } => {
                write!(f, "job {job:?} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Identifier handed out at admission: the job's submission index, which
/// is also its position in [`BatchReport::results`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(usize);

impl JobId {
    /// The id for a known submission index (what `submit` returned for
    /// the `index`-th admission).
    pub fn from_index(index: usize) -> Self {
        JobId(index)
    }

    /// The submission index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// How a worker pool is split between job-level and shot-level
/// parallelism: as many job workers as there are jobs (capped at the
/// thread budget), remaining threads shared out as shot-shard workers
/// per job. Purely a wall-clock decision — results never depend on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolPlan {
    /// Concurrent jobs.
    pub job_workers: usize,
    /// Shot-shard threads inside each job.
    pub shard_threads: usize,
}

impl PoolPlan {
    /// Splits `threads` across `jobs` (both clamped to at least 1).
    pub fn new(jobs: usize, threads: usize) -> Self {
        let threads = threads.max(1);
        let job_workers = jobs.clamp(1, threads);
        PoolPlan {
            job_workers,
            shard_threads: (threads / job_workers).max(1),
        }
    }
}

/// The byte-stable per-job artefacts: exactly what a standalone run of
/// the same spec and seed produces, at any pool shape.
#[derive(Debug, Clone, PartialEq)]
pub struct JobArtifacts {
    /// The full run report.
    pub report: RunReport,
    /// The metrics-JSON export (`--metrics` writes exactly this string).
    pub metrics_json: String,
    /// Shots sampled by the quantum chip model over the whole run.
    pub shots_sampled: u64,
}

/// The terminal state of one job after containment ran its course: the
/// four-state outcome machine every job ends in exactly once.
///
/// `Completed` and `TimedOut` carry artefacts (a timed-out job's report
/// covers the iterations that did finish); `Failed` and `Quarantined`
/// carry the attributed cause. `attempts` counts every attempt made,
/// including the final one.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// All requested iterations ran; artefacts are byte-identical to a
    /// standalone run of the same spec and seed.
    Completed {
        /// The byte-stable artefacts.
        artifacts: JobArtifacts,
        /// Attempts consumed (1 when no retry was needed).
        attempts: u32,
    },
    /// The job's error was permanent, or transient with no retry budget
    /// configured.
    Failed {
        /// The attributed failure.
        error: JobError,
        /// Attempts consumed.
        attempts: u32,
    },
    /// The per-job deadline fired at an iteration boundary; the
    /// artefacts cover the completed prefix.
    TimedOut {
        /// Partial-progress artefacts (a whole number of iterations).
        artifacts: JobArtifacts,
        /// Iterations that completed before the deadline.
        completed_iterations: usize,
        /// Iterations originally requested.
        requested_iterations: usize,
        /// Attempts consumed.
        attempts: u32,
    },
    /// The job panicked, or exhausted its retry budget: it is isolated
    /// from the fleet with the reason attributed.
    Quarantined {
        /// Why the job was quarantined (panic message or last error).
        reason: String,
        /// Attempts consumed.
        attempts: u32,
    },
}

impl JobOutcome {
    /// True only for [`JobOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed { .. })
    }

    /// The artefacts, when the job produced any (`Completed` and
    /// `TimedOut`).
    pub fn artifacts(&self) -> Option<&JobArtifacts> {
        match self {
            JobOutcome::Completed { artifacts, .. } | JobOutcome::TimedOut { artifacts, .. } => {
                Some(artifacts)
            }
            _ => None,
        }
    }

    /// Attempts consumed reaching this outcome.
    pub fn attempts(&self) -> u32 {
        match self {
            JobOutcome::Completed { attempts, .. }
            | JobOutcome::Failed { attempts, .. }
            | JobOutcome::TimedOut { attempts, .. }
            | JobOutcome::Quarantined { attempts, .. } => *attempts,
        }
    }

    /// The stable ledger label.
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Completed { .. } => "completed",
            JobOutcome::Failed { .. } => "failed",
            JobOutcome::TimedOut { .. } => "timed-out",
            JobOutcome::Quarantined { .. } => "quarantined",
        }
    }

    /// The deterministic ledger detail column: sim-time totals and
    /// attributed causes only — never wall-clock.
    pub fn detail(&self) -> String {
        match self {
            JobOutcome::Completed { artifacts, .. } => {
                format!("total_ns={}", artifacts.report.total.as_ps() / 1_000)
            }
            JobOutcome::Failed { error, .. } => error.to_string(),
            JobOutcome::TimedOut {
                completed_iterations,
                requested_iterations,
                ..
            } => format!("iterations={completed_iterations}/{requested_iterations}"),
            JobOutcome::Quarantined { reason, .. } => reason.clone(),
        }
    }
}

/// One job's outcome plus its fleet-side timeline.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Admission identifier (equals this result's index in the batch).
    pub id: JobId,
    /// Job name.
    pub name: String,
    /// The seed the job actually ran with.
    pub seed: u64,
    /// Admission priority.
    pub priority: u8,
    /// The job's terminal state. One failing job never poisons its
    /// neighbours.
    pub outcome: JobOutcome,
    /// Batch start → job picked up by a worker.
    pub wait: Duration,
    /// Batch start → job finished.
    pub turnaround: Duration,
    /// Fleet-cache attribution, fixed deterministically at dispatch
    /// planning from submission order alone: `"cold"` for the first job
    /// holding each program key, `"shared"` for later holders of a key
    /// already admitted, `"off"` when the batch or the job opted out,
    /// `"-"` when the job is unkeyable (its workload cannot be built).
    /// Never derived from runtime hit counters, which race across pool
    /// widths — so the ledger stays byte-identical at any width.
    pub cache: &'static str,
}

/// Everything a batch run produced, in canonical submission order.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job results, indexed by submission order.
    pub results: Vec<JobResult>,
    /// How the pool was split.
    pub pool: PoolPlan,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Jobs rejected at admission (bounded queue overflow).
    pub rejected: u64,
    /// Fleet compilation-cache statistics for the run; `None` when the
    /// batch ran without a cache. Fleet-level only: hit ordering races
    /// across pool widths, so these counters never appear in any per-job
    /// artefact.
    pub cache_stats: Option<CacheStats>,
}

impl BatchReport {
    /// Jobs that completed successfully.
    pub fn completed(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome.is_completed())
            .count()
    }

    /// Jobs that did not complete (failed, timed out, or quarantined).
    pub fn failed(&self) -> usize {
        self.results.len() - self.completed()
    }

    /// Jobs that hit their deadline.
    pub fn timed_out(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::TimedOut { .. }))
            .count()
    }

    /// Jobs quarantined (panicked or retry budget exhausted).
    pub fn quarantined(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Quarantined { .. }))
            .count()
    }

    /// Retries across the whole batch: attempts beyond each job's first.
    pub fn total_retries(&self) -> u64 {
        self.results
            .iter()
            .map(|r| u64::from(r.outcome.attempts().saturating_sub(1)))
            .sum()
    }

    /// Total shots sampled across jobs that produced artefacts.
    pub fn total_shots_sampled(&self) -> u64 {
        self.results
            .iter()
            .filter_map(|r| r.outcome.artifacts())
            .map(|a| a.shots_sampled)
            .sum()
    }

    /// The deterministic outcome ledger: one line per job in submission
    /// order with seed, priority, outcome, attempts, and a sim-time-only
    /// detail column. Byte-identical at every pool width (it contains no
    /// wall-clock observables), which is exactly what the CI chaos-smoke
    /// job `cmp`s. An empty batch renders a fixed placeholder.
    pub fn ledger(&self) -> String {
        if self.results.is_empty() {
            return Self::empty_ledger();
        }
        let mut out = String::from("idx\tname\tseed\tprio\toutcome\tattempts\tcache\tdetail\n");
        for r in &self.results {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                r.id.index(),
                r.name,
                r.seed,
                r.priority,
                r.outcome.label(),
                r.outcome.attempts(),
                r.cache,
                r.outcome.detail(),
            ));
        }
        out
    }

    /// The fixed placeholder an empty (or fully filtered) batch renders —
    /// never a NaN table.
    pub fn empty_ledger() -> String {
        "job ledger: no jobs\n".to_string()
    }

    /// Completed jobs per wall-clock second.
    pub fn jobs_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.completed() as f64 / secs
        } else {
            0.0
        }
    }

    /// Sampled shots per wall-clock second.
    pub fn shots_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_shots_sampled() as f64 / secs
        } else {
            0.0
        }
    }

    /// Registers fleet-level statistics under the `jobs.*` namespace.
    ///
    /// These are the schedule's observables — wait and turnaround
    /// histograms, pool shape, throughput — and are deliberately outside
    /// the per-job determinism contract (they move with the machine's
    /// wall clock). Per-job artefacts live in
    /// [`JobArtifacts::metrics_json`] and are byte-stable.
    pub fn export_metrics(&self, m: &mut MetricsRegistry) {
        m.counter("jobs.submitted", self.results.len() as u64);
        m.counter("jobs.completed", self.completed() as u64);
        m.counter("jobs.failed", self.failed() as u64);
        m.counter("jobs.rejected", self.rejected);
        m.gauge("jobs.queue.depth", self.results.len() as f64);
        m.gauge("jobs.pool.job_workers", self.pool.job_workers as f64);
        m.gauge("jobs.pool.shard_threads", self.pool.shard_threads as f64);
        let mut wait = Histogram::new();
        let mut turnaround = Histogram::new();
        for r in &self.results {
            wait.record(r.wait.as_nanos() as u64);
            turnaround.record(r.turnaround.as_nanos() as u64);
        }
        m.histogram("jobs.wait_ns", &wait);
        m.histogram("jobs.turnaround_ns", &turnaround);
        m.gauge("jobs.wall_ns", self.wall.as_nanos() as f64);
        m.gauge("jobs.throughput.jobs_per_s", self.jobs_per_second());
        m.gauge("jobs.throughput.shots_per_s", self.shots_per_second());
        m.counter("jobs.shots_sampled", self.total_shots_sampled());

        // Containment observables (`resilience.jobs.*`): outcome tallies
        // and retry pressure are deterministic; the time-to-recovery
        // histogram is wall-clock and, like `jobs.*`, deliberately
        // outside the determinism contract.
        m.counter("resilience.jobs.completed", self.completed() as u64);
        m.counter(
            "resilience.jobs.failed",
            self.results
                .iter()
                .filter(|r| matches!(r.outcome, JobOutcome::Failed { .. }))
                .count() as u64,
        );
        m.counter("resilience.jobs.timed_out", self.timed_out() as u64);
        m.counter("resilience.jobs.quarantined", self.quarantined() as u64);
        m.counter("resilience.jobs.retries", self.total_retries());
        m.counter("resilience.jobs.deadline_hits", self.timed_out() as u64);
        let mut attempts = Histogram::new();
        let mut recovery = Histogram::new();
        for r in &self.results {
            attempts.record(u64::from(r.outcome.attempts()));
            if r.outcome.is_completed() && r.outcome.attempts() > 1 {
                recovery.record(r.turnaround.as_nanos() as u64);
            }
        }
        m.histogram("resilience.jobs.attempts", &attempts);
        m.histogram("resilience.jobs.time_to_recovery_ns", &recovery);

        // Fleet compilation-cache observables (`cache.fleet.*`). Like
        // `jobs.*` these belong to the fleet, not to any job: hit/miss
        // ordering depends on worker interleaving, so the counters are
        // exported here and never in per-job artefacts.
        if let Some(stats) = &self.cache_stats {
            stats.export(m);
        }
    }
}

/// How one attempt of one job ended, before any retry policy is applied.
/// [`run_attempt`] produces the first three variants; `Panicked` is
/// added by [`run_attempt_caught`] when `catch_unwind` traps a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// All requested iterations ran.
    Completed(JobArtifacts),
    /// The deadline fired at an iteration boundary.
    TimedOut {
        /// Artefacts for the completed prefix.
        artifacts: JobArtifacts,
        /// Iterations that completed before the deadline.
        completed_iterations: usize,
        /// Iterations originally requested.
        requested_iterations: usize,
    },
    /// The attempt failed with a typed error. `permanent` failures
    /// (config/workload/system construction) can never succeed on retry;
    /// execution failures are transient — a retry reruns with a fresh
    /// per-attempt seed and may draw a survivable fault schedule.
    Errored {
        /// The typed failure.
        error: JobError,
        /// True when no retry can change the outcome.
        permanent: bool,
    },
    /// The attempt panicked (trapped by `catch_unwind`).
    Panicked {
        /// The panic payload, downcast to text when possible.
        message: String,
    },
}

/// What the scheduler does with a finished attempt: record a terminal
/// [`JobOutcome`], or requeue the job.
#[derive(Debug, Clone, PartialEq)]
pub enum RetryDecision {
    /// The job is done; record this outcome in its slot.
    Final(JobOutcome),
    /// Requeue: run attempt `next_attempt` after `backoff_slots` more
    /// dispatch slots have been consumed (geometric: `2^attempt`).
    Retry {
        /// The attempt index to run next (1-based after the first).
        next_attempt: u32,
        /// Admission-order backoff before the retry becomes ready.
        backoff_slots: u64,
    },
}

/// The retry/quarantine policy: a pure function of the spec, the 0-based
/// index of the attempt that just finished, and its outcome. No clock,
/// no pool state — which is why every pool width replays the identical
/// decision sequence and produces the identical ledger.
///
/// The state machine:
///
/// - `Completed` / `TimedOut` → final (a deadline is a budget, not a
///   transient fault — retrying would just burn it again);
/// - `Panicked` → [`JobOutcome::Quarantined`] immediately (a panic means
///   broken invariants, not bad luck);
/// - permanent errors → [`JobOutcome::Failed`] immediately;
/// - transient errors → retry while `attempt < retry_budget`, with
///   geometric backoff `2^attempt` dispatch slots; once the budget is
///   exhausted the job is quarantined (or, with a zero budget, simply
///   fails — the pre-containment behaviour).
pub fn retry_decision(spec: &JobSpec, attempt: u32, outcome: AttemptOutcome) -> RetryDecision {
    let attempts = attempt + 1;
    match outcome {
        AttemptOutcome::Completed(artifacts) => RetryDecision::Final(JobOutcome::Completed {
            artifacts,
            attempts,
        }),
        AttemptOutcome::TimedOut {
            artifacts,
            completed_iterations,
            requested_iterations,
        } => RetryDecision::Final(JobOutcome::TimedOut {
            artifacts,
            completed_iterations,
            requested_iterations,
            attempts,
        }),
        AttemptOutcome::Panicked { message } => RetryDecision::Final(JobOutcome::Quarantined {
            reason: format!("panicked: {message}"),
            attempts,
        }),
        AttemptOutcome::Errored { error, permanent } => {
            if !permanent && attempt < spec.retry_budget {
                RetryDecision::Retry {
                    next_attempt: attempt + 1,
                    backoff_slots: 1u64 << attempt.min(20),
                }
            } else if !permanent && spec.retry_budget > 0 {
                RetryDecision::Final(JobOutcome::Quarantined {
                    reason: format!(
                        "retry budget ({}) exhausted; last error: {error}",
                        spec.retry_budget
                    ),
                    attempts,
                })
            } else {
                RetryDecision::Final(JobOutcome::Failed { error, attempts })
            }
        }
    }
}

/// The seed attempt number `attempt` runs with: the job's admission seed
/// for the first attempt (so zero-retry batches are byte-identical to
/// the pre-containment scheduler), then `stream_seed(job_seed, attempt)`
/// — deterministic, collision-free, and independent of which worker or
/// pool width executes the retry.
pub fn attempt_seed(job_seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        job_seed
    } else {
        stream_seed(job_seed, u64::from(attempt))
    }
}

/// Runs one attempt of one job exactly as the fleet does — same config
/// construction, same workload derivation, same optimizer — so in-fleet
/// and standalone artefacts are byte-identical by construction.
/// `threads` is the shot-shard count and never affects the artefacts.
///
/// This function may panic (that is the point of the chaos hook, and
/// nothing stops library code from panicking); schedulers call
/// [`run_attempt_caught`] instead.
pub fn run_attempt(spec: &JobSpec, job_seed: u64, attempt: u32, threads: usize) -> AttemptOutcome {
    run_attempt_cached(spec, job_seed, attempt, threads, None)
}

/// [`run_attempt`] with an optional fleet compilation cache. When a
/// cache is supplied and the spec participates (`spec.cache`), the
/// compile and pulse streams are served through it; a hit returns
/// byte-identical artefacts to a cold compile (see
/// `qtenon_compiler::cache`), so cached and uncached attempts are
/// interchangeable. Per-run cache counters are *not* recorded into the
/// job's [`RunReport`] — a shared cache makes them pool-width dependent.
pub fn run_attempt_cached(
    spec: &JobSpec,
    job_seed: u64,
    attempt: u32,
    threads: usize,
    cache: Option<&Arc<CompilationCache>>,
) -> AttemptOutcome {
    if spec.chaos_panic {
        panic!(
            "chaos: deliberate panic in job {:?} (attempt {attempt})",
            spec.name
        );
    }
    if attempt < spec.chaos_fail_attempts {
        return AttemptOutcome::Errored {
            error: JobError::Execution {
                job: spec.name.clone(),
                reason: format!("chaos: scripted transient failure on attempt {attempt}"),
            },
            permanent: false,
        };
    }
    let seed = attempt_seed(job_seed, attempt);
    let fail = |reason: String| JobError::Execution {
        job: spec.name.clone(),
        reason,
    };
    let permanent = |error: JobError| AttemptOutcome::Errored {
        error,
        permanent: true,
    };
    let config = match QtenonConfig::table4(spec.n_qubits, spec.core) {
        Ok(c) => c,
        Err(e) => return permanent(fail(e.to_string())),
    };
    let mut config = config
        .with_sync(spec.sync)
        .with_transmission(spec.transmission)
        .with_seed(seed)
        .with_threads(threads)
        .with_fuse(spec.fuse);
    if let Some(faults) = spec.faults {
        config = config.with_faults(faults);
    }
    let workload = match Workload::benchmark(spec.kind, spec.n_qubits, seed) {
        Ok(w) => w,
        Err(e) => return permanent(fail(e.to_string())),
    };
    let built = match cache {
        Some(shared) if spec.cache => VqaRunner::with_cache(config, workload, Arc::clone(shared)),
        _ => VqaRunner::new(config, workload),
    };
    let mut runner = match built {
        Ok(r) => r,
        Err(e) => return permanent(fail(e.to_string())),
    };
    let mut optimizer = spec.optimizer.build(seed);
    let (report, status) = match runner.run_with_deadline(
        optimizer.as_mut(),
        spec.iterations,
        spec.shots,
        spec.deadline,
    ) {
        Ok(done) => done,
        Err(e) => {
            // Execution failures are transient by classification: a
            // retry reruns under a fresh seed (different fault
            // draws), which is exactly the recovery the budget buys.
            return AttemptOutcome::Errored {
                error: fail(e.to_string()),
                permanent: false,
            };
        }
    };
    let mut m = MetricsRegistry::new();
    runner.export_metrics(&mut m);
    let shots_sampled = match m.get("core.parallel.shots_sampled") {
        Some(MetricValue::Counter(c)) => *c,
        _ => 0,
    };
    let artifacts = JobArtifacts {
        report,
        metrics_json: m.snapshot().to_json(),
        shots_sampled,
    };
    if status.hit {
        AttemptOutcome::TimedOut {
            artifacts,
            completed_iterations: status.completed_iterations,
            requested_iterations: status.requested_iterations,
        }
    } else {
        AttemptOutcome::Completed(artifacts)
    }
}

/// [`run_attempt`] under `catch_unwind`: a panicking job (deliberate or
/// genuine) becomes [`AttemptOutcome::Panicked`] instead of unwinding
/// into the worker pool. The payload is downcast to text when it is a
/// string (which `panic!` payloads are).
pub fn run_attempt_caught(
    spec: &JobSpec,
    job_seed: u64,
    attempt: u32,
    threads: usize,
) -> AttemptOutcome {
    run_attempt_caught_cached(spec, job_seed, attempt, threads, None)
}

/// [`run_attempt_caught`] with an optional fleet compilation cache —
/// the variant the batch scheduler's workers call.
pub fn run_attempt_caught_cached(
    spec: &JobSpec,
    job_seed: u64,
    attempt: u32,
    threads: usize,
    cache: Option<&Arc<CompilationCache>>,
) -> AttemptOutcome {
    match catch_unwind(AssertUnwindSafe(|| {
        run_attempt_cached(spec, job_seed, attempt, threads, cache)
    })) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            AttemptOutcome::Panicked { message }
        }
    }
}

/// Runs one job standalone (first attempt, no retry) and returns its
/// artefacts — the byte-identity reference the fleet is checked against.
/// A deadline-cut run still returns its partial artefacts.
///
/// # Errors
///
/// Returns [`JobError::Execution`] wrapping the underlying failure.
pub fn run_standalone(spec: &JobSpec, seed: u64, threads: usize) -> Result<JobArtifacts, JobError> {
    match run_attempt(spec, seed, 0, threads) {
        AttemptOutcome::Completed(artifacts) | AttemptOutcome::TimedOut { artifacts, .. } => {
            Ok(artifacts)
        }
        AttemptOutcome::Errored { error, .. } => Err(error),
        // Unreachable from run_attempt, which panics rather than
        // reporting Panicked — kept total for completeness.
        AttemptOutcome::Panicked { message } => Err(JobError::Execution {
            job: spec.name.clone(),
            reason: format!("panicked: {message}"),
        }),
    }
}

/// A job admitted into the queue with its seed already fixed.
#[derive(Debug, Clone)]
struct QueuedJob {
    id: usize,
    seed: u64,
    spec: JobSpec,
}

/// The deterministic multi-job batch scheduler: bounded admission, FIFO
/// + priority ordering, two-level parallel execution, canonical-order
/// collection.
#[derive(Debug)]
pub struct BatchScheduler {
    fleet_seed: u64,
    capacity: usize,
    queue: Vec<QueuedJob>,
    rejected: u64,
    cache: bool,
    cache_capacity: usize,
}

impl BatchScheduler {
    /// A scheduler with the default queue capacity.
    pub fn new(fleet_seed: u64) -> Self {
        BatchScheduler::with_capacity(fleet_seed, DEFAULT_QUEUE_CAPACITY)
    }

    /// A scheduler with an explicit bounded-queue capacity (clamped to at
    /// least 1).
    pub fn with_capacity(fleet_seed: u64, capacity: usize) -> Self {
        BatchScheduler {
            fleet_seed,
            capacity: capacity.max(1),
            queue: Vec::new(),
            rejected: 0,
            cache: false,
            cache_capacity: qtenon_compiler::cache::DEFAULT_CAPACITY,
        }
    }

    /// Returns the scheduler with the fleet compilation cache enabled or
    /// disabled for the next `run`. Off by default at the library level;
    /// `qtenon batch` turns it on. A pure wall-clock knob: hits are
    /// byte-identical to cold compiles, so per-job artefacts and the
    /// ledger never depend on it.
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Returns the scheduler with a different cache entry budget per
    /// level (0 is clamped to 1).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Whether the next `run` shares a fleet compilation cache.
    pub fn cache_enabled(&self) -> bool {
        self.cache
    }

    /// Jobs currently admitted.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no jobs are admitted.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Jobs rejected so far by the bounded queue.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The seed a submitted job will run with.
    pub fn seed_of(&self, id: JobId) -> Option<u64> {
        self.queue.get(id.index()).map(|j| j.seed)
    }

    /// Admits a job, fixing its seed at this moment: the spec's explicit
    /// seed, else `stream_seed(fleet_seed, submission_index)`. Seeds
    /// therefore never depend on scheduling or completion order.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::QueueFull`] when the bounded queue is at
    /// capacity; the rejection is counted, not fatal.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, JobError> {
        if self.queue.len() >= self.capacity {
            self.rejected += 1;
            return Err(JobError::QueueFull {
                capacity: self.capacity,
            });
        }
        let id = self.queue.len();
        let seed = spec
            .seed
            .unwrap_or_else(|| stream_seed(self.fleet_seed, id as u64));
        self.queue.push(QueuedJob { id, seed, spec });
        Ok(JobId(id))
    }

    /// The order workers pick jobs up: by descending priority, FIFO
    /// within a level. Pure data — no clock, no randomness.
    pub fn schedule_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.queue.len()).collect();
        order.sort_by_key(|&i| (Reverse(self.queue[i].spec.priority), i));
        order
    }

    /// Per-job cache attribution for the ledger, computed serially from
    /// submission order *before* any worker runs: the first job holding
    /// each program key is `"cold"`, later holders are `"shared"`,
    /// opted-out jobs are `"off"`, unkeyable jobs are `"-"`. Derived
    /// from the same canonical key the cache itself uses (first-attempt
    /// seed), never from runtime hit counters — so every pool width
    /// renders the identical column.
    fn cache_attribution(&self) -> Vec<&'static str> {
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        self.queue
            .iter()
            .map(|job| {
                if !self.cache || !job.spec.cache {
                    return "off";
                }
                let seed = attempt_seed(job.seed, 0);
                let Ok(layout) = QccLayout::for_qubits(job.spec.n_qubits) else {
                    return "-";
                };
                let Ok(workload) = Workload::benchmark(job.spec.kind, job.spec.n_qubits, seed)
                else {
                    return "-";
                };
                let key = CompilationCache::program_key(&workload.circuit, &layout);
                if seen.insert(key) {
                    "cold"
                } else {
                    "shared"
                }
            })
            .collect()
    }

    /// Runs every admitted job over a pool of `threads` threads and
    /// returns the batch report in canonical submission order.
    ///
    /// [`PoolPlan::new`]`(jobs, threads)` decides the split; workers pull
    /// work off a shared run queue — the priority order first, then any
    /// retries whose admission-order backoff has elapsed — so higher
    /// priorities start first but nothing about the results depends on
    /// who finishes when. Every attempt runs under `catch_unwind`
    /// ([`run_attempt_caught`]) and is fed through [`retry_decision`]:
    /// a panicking or failing job becomes a typed [`JobOutcome`] in its
    /// slot while the rest of the fleet keeps going.
    ///
    /// Backoff is counted in *dispatch slots* (jobs handed to workers),
    /// not wall-clock: a retry scheduled at slot `s` with backoff `b`
    /// becomes ready once `s + b` dispatches have happened. When only
    /// not-yet-ready retries remain and nothing is in flight, the
    /// earliest one runs immediately — backoff orders work, it never
    /// stalls the pool. None of this affects outcomes, which are fixed
    /// by [`attempt_seed`] and [`retry_decision`] alone.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::EmptyBatch`] if nothing was admitted.
    pub fn run(&self, threads: usize) -> Result<BatchReport, JobError> {
        if self.queue.is_empty() {
            return Err(JobError::EmptyBatch);
        }
        let order = self.schedule_order();
        let pool = PoolPlan::new(self.queue.len(), threads);
        // Attribution and the shared cache are fixed before any worker
        // spawns: the ledger column depends on submission order alone.
        let attribution = self.cache_attribution();
        let fleet_cache: Option<Arc<CompilationCache>> = if self.cache {
            Some(CompilationCache::shared(self.cache_capacity))
        } else {
            None
        };
        let started = Instant::now();

        /// A failed attempt waiting out its backoff.
        struct Pending {
            ready_slot: u64,
            priority: u8,
            id: usize,
            attempt: u32,
        }
        struct RunQueue {
            /// First attempts, in schedule (priority, FIFO) order.
            initial: VecDeque<usize>,
            /// Retries with their admission-order ready slots.
            retries: Vec<Pending>,
            /// Dispatch slots consumed so far (the backoff clock).
            slot: u64,
            /// Attempts currently executing on some worker.
            in_flight: usize,
        }
        impl RunQueue {
            /// Pops the most urgent dispatchable attempt, if any:
            /// ready retries first (earliest slot, then priority, then
            /// id), else the schedule-order head, else — when the pool
            /// has fully drained — the earliest unready retry.
            fn pop_next(&mut self) -> Option<(usize, u32)> {
                let min_retry = |retries: &[Pending]| {
                    retries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, p)| (p.ready_slot, Reverse(p.priority), p.id))
                        .map(|(i, _)| i)
                };
                if let Some(i) = min_retry(&self.retries) {
                    if self.retries[i].ready_slot <= self.slot {
                        let p = self.retries.swap_remove(i);
                        return Some((p.id, p.attempt));
                    }
                }
                if let Some(id) = self.initial.pop_front() {
                    return Some((id, 0));
                }
                if self.in_flight == 0 {
                    // Only unready retries remain and no completion can
                    // advance the slot clock: take the earliest rather
                    // than stall (backoff orders, never hangs).
                    if let Some(i) = min_retry(&self.retries) {
                        let p = self.retries.swap_remove(i);
                        self.slot = self.slot.max(p.ready_slot);
                        return Some((p.id, p.attempt));
                    }
                }
                None
            }

            fn drained(&self) -> bool {
                self.initial.is_empty() && self.retries.is_empty() && self.in_flight == 0
            }
        }

        let state = Mutex::new(RunQueue {
            initial: order.iter().copied().collect(),
            retries: Vec::new(),
            slot: 0,
            in_flight: 0,
        });
        let work_ready = Condvar::new();
        let (state, work_ready, queue) = (&state, &work_ready, &self.queue);
        let (attribution, fleet_cache) = (&attribution, &fleet_cache);

        let per_worker: Vec<Vec<(usize, JobResult)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..pool.job_workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            // Block until an attempt is dispatchable or
                            // the whole batch has drained.
                            let dispatched = {
                                let mut q = state.lock().expect("run queue lock");
                                loop {
                                    if let Some((id, attempt)) = q.pop_next() {
                                        q.slot += 1;
                                        q.in_flight += 1;
                                        break Some((id, attempt));
                                    }
                                    if q.drained() {
                                        break None;
                                    }
                                    q = work_ready.wait(q).expect("run queue lock");
                                }
                            };
                            let Some((id, attempt)) = dispatched else {
                                break;
                            };
                            let job = &queue[id];
                            let wait = started.elapsed();
                            let outcome = run_attempt_caught_cached(
                                &job.spec,
                                job.seed,
                                attempt,
                                pool.shard_threads,
                                fleet_cache.as_ref(),
                            );
                            match retry_decision(&job.spec, attempt, outcome) {
                                RetryDecision::Final(outcome) => {
                                    mine.push((
                                        job.id,
                                        JobResult {
                                            id: JobId(job.id),
                                            name: job.spec.name.clone(),
                                            seed: job.seed,
                                            priority: job.spec.priority,
                                            outcome,
                                            wait,
                                            turnaround: started.elapsed(),
                                            cache: attribution[job.id],
                                        },
                                    ));
                                    let mut q = state.lock().expect("run queue lock");
                                    q.in_flight -= 1;
                                    work_ready.notify_all();
                                }
                                RetryDecision::Retry {
                                    next_attempt,
                                    backoff_slots,
                                } => {
                                    let mut q = state.lock().expect("run queue lock");
                                    let ready_slot = q.slot.saturating_add(backoff_slots);
                                    q.retries.push(Pending {
                                        ready_slot,
                                        priority: job.spec.priority,
                                        id,
                                        attempt: next_attempt,
                                    });
                                    q.in_flight -= 1;
                                    work_ready.notify_all();
                                }
                            }
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    // Job panics are contained by `run_attempt_caught`;
                    // a worker can only die from a bug in the scheduler
                    // itself, which is rightly fatal.
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let wall = started.elapsed();

        // Canonical collection: scatter by submission index, regardless
        // of which worker finished which job when.
        let mut slots: Vec<Option<JobResult>> = vec![None; self.queue.len()];
        for (id, result) in per_worker.into_iter().flatten() {
            slots[id] = Some(result);
        }
        let results: Vec<JobResult> = slots
            .into_iter()
            .map(|s| s.expect("every admitted job produces exactly one result"))
            .collect();
        Ok(BatchReport {
            results,
            pool,
            wall,
            rejected: self.rejected,
            cache_stats: fleet_cache.as_ref().map(|c| c.stats()),
        })
    }
}

/// A whole batch parsed from a JSON spec file (the `qtenon batch --jobs`
/// input format).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpec {
    /// Fleet seed for jobs without an explicit seed.
    pub fleet_seed: u64,
    /// Bounded-queue capacity.
    pub capacity: usize,
    /// Fleet-default retry budget for jobs without their own `retries`.
    pub retries: u32,
    /// Fleet-default deadline for jobs without their own `deadline_ns`.
    pub deadline: Option<SimDuration>,
    /// Whether the batch shares a fleet compilation cache (default on —
    /// `qtenon batch --no-cache` or a top-level `"cache": false` opts
    /// out).
    pub cache: bool,
    /// Cache entry budget per level.
    pub cache_capacity: usize,
    /// The jobs, in file order, with seeds already materialised — so
    /// filtering or reordering the list later cannot change any job's
    /// seed or artefacts.
    pub jobs: Vec<JobSpec>,
}

impl BatchSpec {
    /// Parses the spec format:
    ///
    /// ```json
    /// {
    ///   "fleet_seed": 42,
    ///   "capacity": 16,
    ///   "cache": true,
    ///   "cache_capacity": 1024,
    ///   "jobs": [
    ///     {"name": "vqe-64", "workload": "vqe", "qubits": 64,
    ///      "iterations": 2, "shots": 500, "priority": 3,
    ///      "core": "boom", "optimizer": "gd", "sync": "fence",
    ///      "transmission": "immediate", "seed": 7,
    ///      "faults": "all=0.01,max_attempts=8",
    ///      "retries": 3, "deadline_ns": 40000000,
    ///      "chaos_panic": false, "chaos_fail_attempts": 0, "fuse": true,
    ///      "cache": true}
    ///   ]
    /// }
    /// ```
    ///
    /// Everything but `jobs` is optional; unknown keys are rejected so
    /// typos fail loudly. Top-level `retries` and `deadline_ns` set
    /// fleet defaults that per-job fields override. Each job's seed is
    /// materialised here from its position in the `jobs` array
    /// (`stream_seed(fleet_seed, index)` unless explicit).
    ///
    /// An empty `jobs` array parses successfully — the CLI renders the
    /// fixed empty ledger and exits 0; only actually *running* an empty
    /// batch is a [`JobError::EmptyBatch`].
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Spec`] for malformed JSON or bad fields.
    pub fn from_json(text: &str) -> Result<Self, JobError> {
        let root = json::parse(text).map_err(|reason| JobError::Spec { reason })?;
        let fleet_seed = match root.get("fleet_seed") {
            Some(v) => field_u64(v, "fleet_seed")?,
            None => DEFAULT_FLEET_SEED,
        };
        let capacity = match root.get("capacity") {
            Some(v) => field_u64(v, "capacity")? as usize,
            None => DEFAULT_QUEUE_CAPACITY,
        };
        let retries = match root.get("retries") {
            Some(v) => u32::try_from(field_u64(v, "retries")?)
                .map_err(|_| spec_err("\"retries\" exceeds u32".to_string()))?,
            None => 0,
        };
        let deadline = match root.get("deadline_ns") {
            Some(v) => Some(SimDuration::from_ns(field_u64(v, "deadline_ns")?)),
            None => None,
        };
        let cache = match root.get("cache") {
            Some(v) => v
                .as_bool()
                .ok_or_else(|| spec_err("\"cache\" must be a boolean".to_string()))?,
            None => true,
        };
        let cache_capacity = match root.get("cache_capacity") {
            Some(v) => (field_u64(v, "cache_capacity")? as usize).max(1),
            None => qtenon_compiler::cache::DEFAULT_CAPACITY,
        };
        for (key, _) in root.entries().unwrap_or(&[]) {
            if !matches!(
                key.as_str(),
                "fleet_seed" | "capacity" | "jobs" | "retries" | "deadline_ns" | "cache"
                    | "cache_capacity"
            ) {
                return Err(JobError::Spec {
                    reason: format!("unknown top-level key {key:?}"),
                });
            }
        }
        let jobs_value = root.get("jobs").ok_or_else(|| JobError::Spec {
            reason: "missing \"jobs\" array".to_string(),
        })?;
        let entries = jobs_value.as_arr().ok_or_else(|| JobError::Spec {
            reason: "\"jobs\" is not an array".to_string(),
        })?;
        let defaults = JobDefaults { retries, deadline };
        let mut jobs = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            jobs.push(parse_job(entry, i, fleet_seed, defaults)?);
        }
        Ok(BatchSpec {
            fleet_seed,
            capacity,
            retries,
            deadline,
            cache,
            cache_capacity,
            jobs,
        })
    }

    /// Builds a scheduler with every job admitted.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::QueueFull`] if the spec holds more jobs than
    /// its own capacity allows.
    pub fn into_scheduler(self) -> Result<BatchScheduler, JobError> {
        let mut sched = BatchScheduler::with_capacity(self.fleet_seed, self.capacity)
            .with_cache(self.cache)
            .with_cache_capacity(self.cache_capacity);
        for job in self.jobs {
            sched.submit(job)?;
        }
        Ok(sched)
    }
}

fn spec_err(reason: String) -> JobError {
    JobError::Spec { reason }
}

/// Fleet-level containment defaults a job inherits unless it sets its
/// own `retries` / `deadline_ns`.
#[derive(Clone, Copy)]
struct JobDefaults {
    retries: u32,
    deadline: Option<SimDuration>,
}

fn field_u64(v: &json::Value, key: &str) -> Result<u64, JobError> {
    v.as_u64()
        .ok_or_else(|| spec_err(format!("{key:?} must be a non-negative integer")))
}

fn field_str<'a>(v: &'a json::Value, key: &str) -> Result<&'a str, JobError> {
    v.as_str()
        .ok_or_else(|| spec_err(format!("{key:?} must be a string")))
}

fn parse_job(
    entry: &json::Value,
    index: usize,
    fleet_seed: u64,
    defaults: JobDefaults,
) -> Result<JobSpec, JobError> {
    let pairs = entry
        .entries()
        .ok_or_else(|| spec_err(format!("jobs[{index}] is not an object")))?;
    let mut spec = JobSpec::new(&format!("job{index}"), WorkloadKind::Qaoa, 8);
    spec.retry_budget = defaults.retries;
    spec.deadline = defaults.deadline;
    for (key, value) in pairs {
        match key.as_str() {
            "name" => spec.name = field_str(value, key)?.to_string(),
            "workload" => {
                spec.kind = match field_str(value, key)?.to_ascii_lowercase().as_str() {
                    "qaoa" => WorkloadKind::Qaoa,
                    "vqe" => WorkloadKind::Vqe,
                    "qnn" => WorkloadKind::Qnn,
                    other => {
                        return Err(spec_err(format!(
                            "jobs[{index}]: unknown workload {other:?} (want qaoa|vqe|qnn)"
                        )))
                    }
                }
            }
            "qubits" => spec.n_qubits = field_u64(value, key)? as u32,
            "core" => {
                spec.core = match field_str(value, key)?.to_ascii_lowercase().as_str() {
                    "rocket" => CoreModel::Rocket,
                    "boom" => CoreModel::BoomLarge,
                    other => {
                        return Err(spec_err(format!(
                            "jobs[{index}]: unknown core {other:?} (want rocket|boom)"
                        )))
                    }
                }
            }
            "optimizer" => {
                spec.optimizer = match field_str(value, key)?.to_ascii_lowercase().as_str() {
                    "spsa" => JobOptimizer::Spsa,
                    "gd" => JobOptimizer::Gd,
                    other => {
                        return Err(spec_err(format!(
                            "jobs[{index}]: unknown optimizer {other:?} (want spsa|gd)"
                        )))
                    }
                }
            }
            "iterations" => spec.iterations = field_u64(value, key)? as usize,
            "shots" => spec.shots = field_u64(value, key)?,
            "priority" => {
                let p = field_u64(value, key)?;
                spec.priority = u8::try_from(p)
                    .map_err(|_| spec_err(format!("jobs[{index}]: priority {p} exceeds 255")))?;
            }
            "seed" => spec.seed = Some(field_u64(value, key)?),
            "sync" => {
                spec.sync = match field_str(value, key)?.to_ascii_lowercase().as_str() {
                    "fence" => SyncMode::Fence,
                    "fine" => SyncMode::FineGrained,
                    other => {
                        return Err(spec_err(format!(
                            "jobs[{index}]: unknown sync {other:?} (want fence|fine)"
                        )))
                    }
                }
            }
            "transmission" => {
                spec.transmission = match field_str(value, key)?.to_ascii_lowercase().as_str() {
                    "immediate" => TransmissionPolicy::Immediate,
                    "batched" => TransmissionPolicy::Batched,
                    other => {
                        return Err(spec_err(format!(
                            "jobs[{index}]: unknown transmission {other:?} (want immediate|batched)"
                        )))
                    }
                }
            }
            "faults" => {
                spec.faults = Some(
                    FaultPlan::parse(field_str(value, key)?)
                        .map_err(|e| spec_err(format!("jobs[{index}]: bad fault spec: {e}")))?,
                )
            }
            "retries" => {
                let r = field_u64(value, key)?;
                spec.retry_budget = u32::try_from(r)
                    .map_err(|_| spec_err(format!("jobs[{index}]: retries {r} exceeds u32")))?;
            }
            "deadline_ns" => {
                spec.deadline = Some(SimDuration::from_ns(field_u64(value, key)?));
            }
            "chaos_panic" => {
                spec.chaos_panic = value.as_bool().ok_or_else(|| {
                    spec_err(format!("jobs[{index}]: \"chaos_panic\" must be a boolean"))
                })?;
            }
            "chaos_fail_attempts" => {
                let r = field_u64(value, key)?;
                spec.chaos_fail_attempts = u32::try_from(r).map_err(|_| {
                    spec_err(format!(
                        "jobs[{index}]: chaos_fail_attempts {r} exceeds u32"
                    ))
                })?;
            }
            "fuse" => {
                spec.fuse = value.as_bool().ok_or_else(|| {
                    spec_err(format!("jobs[{index}]: \"fuse\" must be a boolean"))
                })?;
            }
            "cache" => {
                spec.cache = value.as_bool().ok_or_else(|| {
                    spec_err(format!("jobs[{index}]: \"cache\" must be a boolean"))
                })?;
            }
            other => {
                return Err(spec_err(format!("jobs[{index}]: unknown key {other:?}")));
            }
        }
    }
    // Materialise the seed by file position so later filtering or
    // reordering cannot change what this job runs with.
    spec.seed = Some(
        spec.seed
            .unwrap_or_else(|| stream_seed(fleet_seed, index as u64)),
    );
    Ok(spec)
}

/// A minimal recursive-descent JSON reader, just enough for batch spec
/// files (the workspace deliberately has no serde_json dependency — all
/// JSON output is hand-written too, see `MetricsSnapshot::to_json`).
/// Supports objects, arrays, strings with simple escapes, numbers,
/// booleans, and null.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The object's key/value pairs, in file order.
        pub fn entries(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(pairs) => Some(pairs),
                _ => None,
            }
        }

        /// The array's items.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// String payload.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Boolean payload.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// Non-negative integer payload (rejects fractions).
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }
    }

    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(format!("unexpected input at byte {}", self.pos)),
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while matches!(
                self.peek(),
                Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
            ) {
                self.pos += 1;
            }
            // The slice is pure ASCII by construction.
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| format!("bad number at byte {start}"))?;
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number {text:?}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out: Vec<u8> = Vec::new();
            loop {
                let b = self
                    .peek()
                    .ok_or_else(|| "unterminated string".to_string())?;
                self.pos += 1;
                match b {
                    b'"' => {
                        return String::from_utf8(out)
                            .map_err(|_| "invalid utf-8 in string".to_string())
                    }
                    b'\\' => {
                        let esc = self
                            .peek()
                            .ok_or_else(|| "unterminated escape".to_string())?;
                        self.pos += 1;
                        out.push(match esc {
                            b'"' => b'"',
                            b'\\' => b'\\',
                            b'/' => b'/',
                            b'n' => b'\n',
                            b't' => b'\t',
                            b'r' => b'\r',
                            other => return Err(format!("unsupported escape \\{}", other as char)),
                        });
                    }
                    other => out.push(other),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut pairs = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let value = self.value()?;
                pairs.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_plan_splits_threads_across_jobs() {
        assert_eq!(
            PoolPlan::new(8, 4),
            PoolPlan {
                job_workers: 4,
                shard_threads: 1
            }
        );
        assert_eq!(
            PoolPlan::new(2, 8),
            PoolPlan {
                job_workers: 2,
                shard_threads: 4
            }
        );
        assert_eq!(
            PoolPlan::new(1, 8),
            PoolPlan {
                job_workers: 1,
                shard_threads: 8
            }
        );
        assert_eq!(
            PoolPlan::new(3, 4),
            PoolPlan {
                job_workers: 3,
                shard_threads: 1
            }
        );
        // Degenerate shapes clamp instead of panicking.
        assert_eq!(
            PoolPlan::new(0, 4),
            PoolPlan {
                job_workers: 1,
                shard_threads: 4
            }
        );
        assert_eq!(
            PoolPlan::new(5, 0),
            PoolPlan {
                job_workers: 1,
                shard_threads: 1
            }
        );
    }

    #[test]
    fn schedule_order_is_priority_then_fifo() {
        let mut sched = BatchScheduler::new(1);
        for (name, priority) in [("a", 0u8), ("b", 5), ("c", 5), ("d", 1)] {
            sched
                .submit(JobSpec::new(name, WorkloadKind::Vqe, 8).with_priority(priority))
                .unwrap();
        }
        assert_eq!(sched.schedule_order(), vec![1, 2, 3, 0]);
    }

    #[test]
    fn bounded_queue_rejects_with_typed_error() {
        let mut sched = BatchScheduler::with_capacity(1, 2);
        sched
            .submit(JobSpec::new("a", WorkloadKind::Vqe, 8))
            .unwrap();
        sched
            .submit(JobSpec::new("b", WorkloadKind::Vqe, 8))
            .unwrap();
        let err = sched
            .submit(JobSpec::new("c", WorkloadKind::Vqe, 8))
            .unwrap_err();
        assert_eq!(err, JobError::QueueFull { capacity: 2 });
        assert_eq!(sched.rejected(), 1);
        assert_eq!(sched.len(), 2);
    }

    #[test]
    fn seeds_fixed_at_admission() {
        let mut sched = BatchScheduler::new(0xFEED);
        let a = sched
            .submit(JobSpec::new("a", WorkloadKind::Vqe, 8))
            .unwrap();
        let b = sched
            .submit(JobSpec::new("b", WorkloadKind::Vqe, 8).with_seed(7))
            .unwrap();
        assert_eq!(sched.seed_of(a), Some(stream_seed(0xFEED, 0)));
        assert_eq!(sched.seed_of(b), Some(7));
    }

    #[test]
    fn empty_batch_is_typed_error() {
        let sched = BatchScheduler::new(1);
        assert_eq!(sched.run(4).unwrap_err(), JobError::EmptyBatch);
    }

    #[test]
    fn batch_runs_in_canonical_order_with_stable_artifacts() {
        let mut sched = BatchScheduler::new(42);
        sched
            .submit(
                JobSpec::new("low", WorkloadKind::Vqe, 8)
                    .with_iterations(1)
                    .with_shots(24),
            )
            .unwrap();
        sched
            .submit(
                JobSpec::new("high", WorkloadKind::Qaoa, 8)
                    .with_iterations(1)
                    .with_shots(24)
                    .with_priority(9),
            )
            .unwrap();
        let batch = sched.run(2).unwrap();
        // Canonical submission order despite "high" being scheduled first.
        assert_eq!(batch.results[0].name, "low");
        assert_eq!(batch.results[1].name, "high");
        assert_eq!(batch.completed(), 2);
        assert_eq!(batch.failed(), 0);
        for result in &batch.results {
            let standalone =
                run_standalone(&sched.queue[result.id.index()].spec, result.seed, 1).unwrap();
            let fleet = result.outcome.artifacts().unwrap();
            assert_eq!(fleet.report, standalone.report);
            assert_eq!(fleet.metrics_json, standalone.metrics_json);
        }
    }

    #[test]
    fn failing_job_does_not_poison_the_batch() {
        let mut sched = BatchScheduler::new(42);
        // 0 qubits cannot build a layout: execution fails with a typed
        // error in its slot.
        sched
            .submit(JobSpec::new("bad", WorkloadKind::Vqe, 0))
            .unwrap();
        sched
            .submit(
                JobSpec::new("good", WorkloadKind::Vqe, 8)
                    .with_iterations(1)
                    .with_shots(24),
            )
            .unwrap();
        let batch = sched.run(2).unwrap();
        assert_eq!(batch.completed(), 1);
        assert_eq!(batch.failed(), 1);
        // A config failure is permanent: it fails in one attempt even
        // though nothing forbids a retry budget on the spec.
        assert!(matches!(
            batch.results[0].outcome,
            JobOutcome::Failed {
                error: JobError::Execution { .. },
                attempts: 1
            }
        ));
        assert!(batch.results[1].outcome.is_completed());
    }

    #[test]
    fn panicking_job_is_quarantined_not_fatal() {
        let mut sched = BatchScheduler::new(42);
        sched
            .submit(JobSpec::new("poison", WorkloadKind::Vqe, 8).with_chaos_panic())
            .unwrap();
        sched
            .submit(
                JobSpec::new("healthy", WorkloadKind::Qaoa, 8)
                    .with_iterations(1)
                    .with_shots(24),
            )
            .unwrap();
        let batch = sched.run(2).unwrap();
        assert_eq!(batch.completed(), 1);
        assert_eq!(batch.quarantined(), 1);
        match &batch.results[0].outcome {
            JobOutcome::Quarantined { reason, attempts } => {
                assert!(reason.contains("panic"), "{reason}");
                assert!(reason.contains("poison"), "{reason}");
                assert_eq!(*attempts, 1);
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // The healthy neighbour is byte-identical to standalone.
        let standalone = run_standalone(&sched.queue[1].spec, batch.results[1].seed, 1).unwrap();
        assert_eq!(batch.results[1].outcome.artifacts(), Some(&standalone));
    }

    #[test]
    fn scripted_transient_failures_recover_within_budget() {
        let mut sched = BatchScheduler::new(42);
        sched
            .submit(
                JobSpec::new("flaky", WorkloadKind::Qaoa, 8)
                    .with_iterations(1)
                    .with_shots(24)
                    .with_chaos_fail_attempts(2)
                    .with_retry_budget(3),
            )
            .unwrap();
        let batch = sched.run(1).unwrap();
        match &batch.results[0].outcome {
            JobOutcome::Completed { attempts, .. } => assert_eq!(*attempts, 3),
            other => panic!("expected recovery on attempt 2, got {other:?}"),
        }
        assert_eq!(batch.total_retries(), 2);
        // The recovered attempt ran with the attempt-2 seed stream.
        let spec = &sched.queue[0].spec;
        let job_seed = sched.seed_of(JobId::from_index(0)).unwrap();
        let mut bare = spec.clone();
        bare.chaos_fail_attempts = 0;
        let reference = run_standalone(&bare, attempt_seed(job_seed, 2), 1).unwrap();
        assert_eq!(batch.results[0].outcome.artifacts(), Some(&reference));
    }

    #[test]
    fn budget_exhaustion_quarantines_with_attribution() {
        let mut sched = BatchScheduler::new(42);
        sched
            .submit(
                JobSpec::new("doomed", WorkloadKind::Qaoa, 8)
                    .with_chaos_fail_attempts(u32::MAX)
                    .with_retry_budget(2),
            )
            .unwrap();
        let batch = sched.run(4).unwrap();
        match &batch.results[0].outcome {
            JobOutcome::Quarantined { reason, attempts } => {
                assert_eq!(*attempts, 3, "budget 2 = 1 initial + 2 retries");
                assert!(reason.contains("retry budget"), "{reason}");
                assert!(reason.contains("doomed"), "{reason}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }

    #[test]
    fn retry_decision_is_pure_and_matches_the_state_machine() {
        let spec = JobSpec::new("j", WorkloadKind::Vqe, 8).with_retry_budget(2);
        let transient = || AttemptOutcome::Errored {
            error: JobError::Execution {
                job: "j".into(),
                reason: "boom".into(),
            },
            permanent: false,
        };
        // Transient failures retry with geometric backoff...
        assert_eq!(
            retry_decision(&spec, 0, transient()),
            RetryDecision::Retry {
                next_attempt: 1,
                backoff_slots: 1
            }
        );
        assert_eq!(
            retry_decision(&spec, 1, transient()),
            RetryDecision::Retry {
                next_attempt: 2,
                backoff_slots: 2
            }
        );
        // ...until the budget runs out: quarantined with attribution.
        assert!(matches!(
            retry_decision(&spec, 2, transient()),
            RetryDecision::Final(JobOutcome::Quarantined { attempts: 3, .. })
        ));
        // Zero budget keeps the pre-containment shape: Failed, 1 attempt.
        let legacy = JobSpec::new("j", WorkloadKind::Vqe, 8);
        assert!(matches!(
            retry_decision(&legacy, 0, transient()),
            RetryDecision::Final(JobOutcome::Failed { attempts: 1, .. })
        ));
        // Permanent errors never retry, budget or not.
        assert!(matches!(
            retry_decision(
                &spec,
                0,
                AttemptOutcome::Errored {
                    error: JobError::Execution {
                        job: "j".into(),
                        reason: "bad config".into()
                    },
                    permanent: true
                }
            ),
            RetryDecision::Final(JobOutcome::Failed { attempts: 1, .. })
        ));
        // Panics quarantine immediately.
        assert!(matches!(
            retry_decision(
                &spec,
                0,
                AttemptOutcome::Panicked {
                    message: "ouch".into()
                }
            ),
            RetryDecision::Final(JobOutcome::Quarantined { attempts: 1, .. })
        ));
    }

    #[test]
    fn attempt_seed_is_admission_seed_first_then_streamed() {
        assert_eq!(attempt_seed(0xABCD, 0), 0xABCD);
        assert_eq!(attempt_seed(0xABCD, 1), stream_seed(0xABCD, 1));
        assert_eq!(attempt_seed(0xABCD, 3), stream_seed(0xABCD, 3));
        assert_ne!(attempt_seed(0xABCD, 1), attempt_seed(0xABCD, 2));
    }

    #[test]
    fn ledger_is_deterministic_across_pool_widths() {
        let fleet = || {
            let mut sched = BatchScheduler::new(7);
            sched
                .submit(
                    JobSpec::new("a", WorkloadKind::Vqe, 8)
                        .with_iterations(1)
                        .with_shots(24),
                )
                .unwrap();
            sched
                .submit(JobSpec::new("b", WorkloadKind::Qaoa, 8).with_chaos_panic())
                .unwrap();
            sched
                .submit(
                    JobSpec::new("c", WorkloadKind::Qnn, 8)
                        .with_iterations(1)
                        .with_shots(24)
                        .with_chaos_fail_attempts(1)
                        .with_retry_budget(2)
                        .with_priority(5),
                )
                .unwrap();
            sched
        };
        let serial = fleet().run(1).unwrap().ledger();
        let pooled = fleet().run(4).unwrap().ledger();
        assert_eq!(serial, pooled, "ledger must not depend on pool width");
        assert!(serial.contains("quarantined"));
        assert!(serial.contains("completed"));
    }

    #[test]
    fn empty_report_renders_fixed_placeholder_ledger() {
        let report = BatchReport {
            results: Vec::new(),
            pool: PoolPlan::new(0, 1),
            wall: Duration::ZERO,
            rejected: 0,
            cache_stats: None,
        };
        assert_eq!(report.ledger(), BatchReport::empty_ledger());
        assert_eq!(report.ledger(), "job ledger: no jobs\n");
        // Throughput of an empty batch is 0, never NaN.
        assert_eq!(report.jobs_per_second(), 0.0);
    }

    #[test]
    fn cached_fleet_artefacts_are_byte_identical_to_uncached_at_every_width() {
        // Four jobs sharing one explicit seed → identical circuits, so
        // the cache serves three of the four compiles. Artefacts must
        // still match the cache-free serial reference bit for bit.
        let fleet = |cache: bool, threads: usize| {
            let mut sched = BatchScheduler::new(9).with_cache(cache);
            for i in 0..4 {
                sched
                    .submit(
                        JobSpec::new(&format!("j{i}"), WorkloadKind::Vqe, 8)
                            .with_iterations(1)
                            .with_shots(24)
                            .with_seed(77),
                    )
                    .unwrap();
            }
            sched.run(threads).unwrap()
        };
        let reference = fleet(false, 1);
        assert!(reference.cache_stats.is_none());
        for threads in [1, 2, 8] {
            let cached = fleet(true, threads);
            assert_eq!(cached.failed(), 0);
            for (a, b) in reference.results.iter().zip(&cached.results) {
                let cold = a.outcome.artifacts().unwrap();
                let hit = b.outcome.artifacts().unwrap();
                assert_eq!(cold.report, hit.report, "width {threads}");
                assert_eq!(cold.metrics_json, hit.metrics_json, "width {threads}");
            }
            let stats = cached.cache_stats.expect("cached batch reports stats");
            // One program lookup per job always; the hit/miss split is
            // only deterministic serially (concurrent duplicates can
            // race to a miss; first-writer-wins keeps them identical).
            assert_eq!(stats.program_hits + stats.program_misses, 4, "width {threads}");
            assert!(stats.program_misses >= 1, "width {threads}");
            if threads == 1 {
                assert_eq!(stats.program_hits, 3);
                assert_eq!(stats.program_misses, 1);
                assert!(stats.pulse_hits > 0);
            }
        }
    }

    #[test]
    fn ledger_attribution_is_cold_shared_off_and_width_invariant() {
        let fleet = |threads: usize| {
            let mut sched = BatchScheduler::new(3).with_cache(true);
            // Two duplicates (same seed → same circuit), one distinct,
            // one opted out.
            for name in ["dup-a", "dup-b"] {
                sched
                    .submit(
                        JobSpec::new(name, WorkloadKind::Vqe, 8)
                            .with_iterations(1)
                            .with_shots(24)
                            .with_seed(5),
                    )
                    .unwrap();
            }
            sched
                .submit(
                    JobSpec::new("lone", WorkloadKind::Qnn, 8)
                        .with_iterations(1)
                        .with_shots(24),
                )
                .unwrap();
            sched
                .submit(
                    JobSpec::new("optout", WorkloadKind::Vqe, 8)
                        .with_iterations(1)
                        .with_shots(24)
                        .with_seed(5)
                        .with_cache(false),
                )
                .unwrap();
            sched.run(threads).unwrap()
        };
        let serial = fleet(1);
        let labels: Vec<&str> = serial.results.iter().map(|r| r.cache).collect();
        assert_eq!(labels, ["cold", "shared", "cold", "off"]);
        assert_eq!(
            serial.ledger(),
            fleet(8).ledger(),
            "cached ledger must not depend on pool width"
        );
        assert!(serial.ledger().starts_with(
            "idx\tname\tseed\tprio\toutcome\tattempts\tcache\tdetail\n"
        ));
        // With the batch cache off, every job renders "off".
        let mut off = BatchScheduler::new(3);
        off.submit(
            JobSpec::new("x", WorkloadKind::Vqe, 8)
                .with_iterations(1)
                .with_shots(24),
        )
        .unwrap();
        let off = off.run(1).unwrap();
        assert_eq!(off.results[0].cache, "off");
    }

    #[test]
    fn cache_metrics_exported_only_when_batch_is_cached() {
        let run = |cache: bool| {
            let mut sched = BatchScheduler::new(11).with_cache(cache).with_cache_capacity(8);
            for i in 0..2 {
                sched
                    .submit(
                        JobSpec::new(&format!("m{i}"), WorkloadKind::Vqe, 8)
                            .with_iterations(1)
                            .with_shots(24)
                            .with_seed(4),
                    )
                    .unwrap();
            }
            // Serial: the 1-miss-then-1-hit split is deterministic.
            let batch = sched.run(1).unwrap();
            let mut m = MetricsRegistry::new();
            batch.export_metrics(&mut m);
            m
        };
        let cached = run(true);
        assert_eq!(
            cached.get("cache.fleet.program.hits"),
            Some(&MetricValue::Counter(1))
        );
        assert_eq!(
            cached.get("cache.fleet.program.misses"),
            Some(&MetricValue::Counter(1))
        );
        assert!(cached.get("cache.fleet.hit_rate").is_some());
        let uncached = run(false);
        assert!(uncached.get("cache.fleet.program.hits").is_none());
    }

    #[test]
    fn batch_spec_parses_cache_knobs_and_defaults_on() {
        let spec = BatchSpec::from_json(r#"{"jobs": []}"#).unwrap();
        assert!(spec.cache);
        assert_eq!(
            spec.cache_capacity,
            qtenon_compiler::cache::DEFAULT_CAPACITY
        );
        let spec = BatchSpec::from_json(
            r#"{"cache": false, "cache_capacity": 0,
                "jobs": [{"name": "a", "cache": false}]}"#,
        )
        .unwrap();
        assert!(!spec.cache);
        assert_eq!(spec.cache_capacity, 1);
        assert!(!spec.jobs[0].cache);
        let sched = spec.into_scheduler().unwrap();
        assert!(!sched.cache_enabled());
        assert!(BatchSpec::from_json(r#"{"cache": 3, "jobs": []}"#).is_err());
        assert!(
            BatchSpec::from_json(r#"{"jobs": [{"name": "a", "cache": "yes"}]}"#).is_err()
        );
    }

    #[test]
    fn resilience_metrics_cover_the_outcome_machine() {
        let mut sched = BatchScheduler::new(42);
        sched
            .submit(
                JobSpec::new("ok", WorkloadKind::Vqe, 8)
                    .with_iterations(1)
                    .with_shots(24),
            )
            .unwrap();
        sched
            .submit(JobSpec::new("panic", WorkloadKind::Vqe, 8).with_chaos_panic())
            .unwrap();
        sched
            .submit(
                JobSpec::new("flaky", WorkloadKind::Qaoa, 8)
                    .with_iterations(1)
                    .with_shots(24)
                    .with_chaos_fail_attempts(1)
                    .with_retry_budget(1),
            )
            .unwrap();
        let batch = sched.run(2).unwrap();
        let mut m = MetricsRegistry::new();
        batch.export_metrics(&mut m);
        assert_eq!(
            m.get("resilience.jobs.completed"),
            Some(&MetricValue::Counter(2))
        );
        assert_eq!(
            m.get("resilience.jobs.quarantined"),
            Some(&MetricValue::Counter(1))
        );
        assert_eq!(
            m.get("resilience.jobs.retries"),
            Some(&MetricValue::Counter(1))
        );
        assert_eq!(
            m.get("resilience.jobs.timed_out"),
            Some(&MetricValue::Counter(0))
        );
        match m.get("resilience.jobs.attempts") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), 3),
            other => panic!("expected histogram, got {other:?}"),
        }
        match m.get("resilience.jobs.time_to_recovery_ns") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn fleet_metrics_live_under_jobs_namespace() {
        let mut sched = BatchScheduler::new(42);
        sched
            .submit(
                JobSpec::new("a", WorkloadKind::Vqe, 8)
                    .with_iterations(1)
                    .with_shots(24),
            )
            .unwrap();
        let batch = sched.run(1).unwrap();
        let mut m = MetricsRegistry::new();
        batch.export_metrics(&mut m);
        assert_eq!(m.get("jobs.submitted"), Some(&MetricValue::Counter(1)));
        assert_eq!(m.get("jobs.completed"), Some(&MetricValue::Counter(1)));
        assert_eq!(m.get("jobs.failed"), Some(&MetricValue::Counter(0)));
        assert!(m.get("jobs.wait_ns").is_some());
        assert!(m.get("jobs.turnaround_ns").is_some());
        assert!(m.get("jobs.throughput.jobs_per_s").is_some());
        assert!(batch.total_shots_sampled() > 0);
    }

    #[test]
    fn batch_spec_parses_and_materialises_seeds() {
        let text = r#"{
            "fleet_seed": 9,
            "capacity": 4,
            "jobs": [
                {"name": "a", "workload": "vqe", "qubits": 16, "shots": 200,
                 "priority": 2, "core": "boom", "optimizer": "gd",
                 "sync": "fence", "transmission": "immediate"},
                {"workload": "qnn", "qubits": 8, "seed": 77,
                 "faults": "all=0.01,max_attempts=8"}
            ]
        }"#;
        let spec = BatchSpec::from_json(text).unwrap();
        assert_eq!(spec.fleet_seed, 9);
        assert_eq!(spec.capacity, 4);
        assert_eq!(spec.jobs.len(), 2);
        let a = &spec.jobs[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.kind, WorkloadKind::Vqe);
        assert_eq!(a.n_qubits, 16);
        assert_eq!(a.shots, 200);
        assert_eq!(a.priority, 2);
        assert_eq!(a.core, CoreModel::BoomLarge);
        assert_eq!(a.optimizer, JobOptimizer::Gd);
        assert_eq!(a.sync, SyncMode::Fence);
        assert_eq!(a.transmission, TransmissionPolicy::Immediate);
        assert_eq!(a.seed, Some(stream_seed(9, 0)));
        let b = &spec.jobs[1];
        assert_eq!(b.name, "job1");
        assert_eq!(b.kind, WorkloadKind::Qnn);
        assert_eq!(b.seed, Some(77));
        assert!(b.faults.expect("fault plan").is_active());
    }

    #[test]
    fn batch_spec_rejects_unknown_keys_but_allows_empty_batches() {
        let err = BatchSpec::from_json(r#"{"jobs": [{"qubist": 8}]}"#).unwrap_err();
        assert!(matches!(err, JobError::Spec { ref reason } if reason.contains("qubist")));
        // An empty jobs array is a valid (vacuous) spec: the CLI renders
        // the fixed placeholder ledger and exits 0.
        let empty = BatchSpec::from_json(r#"{"jobs": []}"#).unwrap();
        assert!(empty.jobs.is_empty());
        // Only running it is an error.
        let err = empty.into_scheduler().unwrap().run(2).unwrap_err();
        assert_eq!(err, JobError::EmptyBatch);
        let err = BatchSpec::from_json(r#"{"jobs": "nope"}"#).unwrap_err();
        assert!(matches!(err, JobError::Spec { .. }));
        let err = BatchSpec::from_json("{").unwrap_err();
        assert!(matches!(err, JobError::Spec { .. }));
    }

    #[test]
    fn batch_spec_parses_containment_fields_with_fleet_defaults() {
        let text = r#"{
            "retries": 2,
            "deadline_ns": 500000,
            "jobs": [
                {"name": "inherits", "qubits": 8},
                {"name": "overrides", "qubits": 8, "retries": 5,
                 "deadline_ns": 9000, "chaos_panic": true,
                 "chaos_fail_attempts": 1}
            ]
        }"#;
        let spec = BatchSpec::from_json(text).unwrap();
        assert_eq!(spec.retries, 2);
        assert_eq!(spec.deadline, Some(SimDuration::from_ns(500_000)));
        let inherits = &spec.jobs[0];
        assert_eq!(inherits.retry_budget, 2);
        assert_eq!(inherits.deadline, Some(SimDuration::from_ns(500_000)));
        assert!(!inherits.chaos_panic);
        assert_eq!(inherits.chaos_fail_attempts, 0);
        let overrides = &spec.jobs[1];
        assert_eq!(overrides.retry_budget, 5);
        assert_eq!(overrides.deadline, Some(SimDuration::from_ns(9_000)));
        assert!(overrides.chaos_panic);
        assert_eq!(overrides.chaos_fail_attempts, 1);
        // Bad types fail loudly.
        let err = BatchSpec::from_json(r#"{"jobs": [{"chaos_panic": "yes"}]}"#).unwrap_err();
        assert!(matches!(err, JobError::Spec { ref reason } if reason.contains("chaos_panic")));
    }

    #[test]
    fn batch_spec_capacity_bounds_into_scheduler() {
        let text = r#"{"capacity": 1, "jobs": [{"qubits": 8}, {"qubits": 8}]}"#;
        let spec = BatchSpec::from_json(text).unwrap();
        let err = spec.into_scheduler().unwrap_err();
        assert_eq!(err, JobError::QueueFull { capacity: 1 });
    }

    #[test]
    fn json_reader_handles_the_basics() {
        let v = json::parse(r#"{"s": "a\"b", "n": 12, "neg": -3, "arr": [true, false, null]}"#)
            .unwrap();
        assert_eq!(v.get("s").and_then(|s| s.as_str()), Some("a\"b"));
        assert_eq!(v.get("n").and_then(|n| n.as_u64()), Some(12));
        assert_eq!(v.get("neg").and_then(|n| n.as_u64()), None);
        assert_eq!(
            v.get("arr").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(3)
        );
        assert!(json::parse("[1, 2,]").is_err(), "trailing comma rejected");
        assert!(json::parse("{\"a\": }").is_err());
        assert!(json::parse("1 2").is_err());
    }
}
