//! Chaos-campaign harness: fault-injection rates × retry policies swept
//! over a synthetic fleet, with per-cell invariant checks.
//!
//! A campaign cell runs one fleet — healthy jobs, fault-injected jobs, a
//! scripted-flaky job, a deadline-bounded job, and (optionally) a
//! deliberately-panicking job — at every configured pool width, then
//! asserts the containment contract:
//!
//! 1. **No hangs**: every `BatchScheduler::run` returns (the scheduler's
//!    backoff is admission-order, so an otherwise-idle pool always takes
//!    the earliest retry instead of stalling);
//! 2. **Bounded retries**: no job consumes more than `retry_budget + 1`
//!    attempts;
//! 3. **Width-invariant ledgers**: the outcome ledger is byte-identical
//!    at every pool width;
//! 4. **Survivor byte-identity**: every job that completed inside the
//!    fleet has artefacts byte-identical to a standalone run of the same
//!    spec and seed.
//!
//! The same [`ChaosCampaign`] drives `qtenon batch --chaos` and the
//! `experiments chaos` study; CI's `chaos-smoke` job runs a small
//! campaign at two pool widths and `cmp`s the ledgers.

use qtenon_sim_engine::{stream_seed, FaultPlan, MetricsRegistry, SimDuration};
use qtenon_workloads::WorkloadKind;

use crate::jobs::{run_standalone, BatchScheduler, JobError, JobOutcome, JobSpec};

/// A fault-rate × retry-budget sweep over a synthetic fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCampaign {
    /// Fleet seed; every cell derives its job seeds from it.
    pub fleet_seed: u64,
    /// Component fault-injection rates to sweep (0.0 cells double as the
    /// no-fault control).
    pub rates: Vec<f64>,
    /// Retry budgets to sweep.
    pub retry_budgets: Vec<u32>,
    /// Pool widths every cell is replayed at (ledgers must agree).
    pub pool_widths: Vec<usize>,
    /// Optimizer iterations per job.
    pub iterations: usize,
    /// Shots per evaluation.
    pub shots: u64,
    /// Include the deliberately-panicking synthetic job that pins the
    /// quarantine path.
    pub include_panic_job: bool,
}

impl ChaosCampaign {
    /// The small default campaign: 3 rates × 2 budgets at widths 1 and 4
    /// — a few seconds of work, suitable for CI smoke and `--chaos`.
    pub fn quick() -> Self {
        ChaosCampaign {
            fleet_seed: 0xC405,
            rates: vec![0.0, 0.02, 0.08],
            retry_budgets: vec![0, 3],
            pool_widths: vec![1, 4],
            iterations: 2,
            shots: 48,
            include_panic_job: true,
        }
    }

    /// Scales the campaign (used by `--full` experiment runs).
    pub fn with_scale(mut self, iterations: usize, shots: u64) -> Self {
        self.iterations = iterations;
        self.shots = shots;
        self
    }

    /// Overrides the pool widths.
    pub fn with_pool_widths(mut self, widths: Vec<usize>) -> Self {
        self.pool_widths = widths;
        self
    }

    /// The synthetic fleet one cell runs. Deterministic in
    /// (fleet_seed, rate, budget) only — cells never share RNG state.
    pub fn fleet(&self, rate: f64, budget: u32) -> Vec<JobSpec> {
        let fault_seed = stream_seed(self.fleet_seed, (rate * 1e6) as u64);
        let mut jobs = vec![
            // Healthy control job.
            JobSpec::new("clean-vqe", WorkloadKind::Vqe, 8)
                .with_iterations(self.iterations)
                .with_shots(self.shots)
                .with_retry_budget(budget),
            // Component-level fault injection at the swept rate.
            JobSpec::new("faulty-qaoa", WorkloadKind::Qaoa, 8)
                .with_iterations(self.iterations)
                .with_shots(self.shots)
                .with_retry_budget(budget)
                .with_faults(plan_at(rate, fault_seed)),
            // Scripted flake: fails its first attempt, recovers when the
            // budget allows a second.
            JobSpec::new("flaky-qnn", WorkloadKind::Qnn, 8)
                .with_iterations(self.iterations)
                .with_shots(self.shots)
                .with_retry_budget(budget)
                .with_chaos_fail_attempts(1),
            // Deadline-bounded job: asks for far more iterations than
            // its budget covers, so it reliably times out with partial
            // progress (sim-time deadlines are deterministic).
            JobSpec::new("deadline-qaoa", WorkloadKind::Qaoa, 8)
                .with_iterations(self.iterations + 6)
                .with_shots(self.shots)
                .with_retry_budget(budget)
                .with_deadline(SimDuration::from_ns(1)),
        ];
        if self.include_panic_job {
            jobs.push(
                JobSpec::new("panic-vqe", WorkloadKind::Vqe, 8)
                    .with_retry_budget(budget)
                    .with_chaos_panic(),
            );
        }
        jobs
    }

    /// Runs the whole sweep and checks every invariant per cell.
    ///
    /// # Errors
    ///
    /// Returns [`JobError`] only for harness-level failures (admission
    /// overflow, empty fleet) — job failures are the point and land in
    /// the cells.
    pub fn run(&self) -> Result<ChaosReport, JobError> {
        let mut cells = Vec::new();
        for &rate in &self.rates {
            for &budget in &self.retry_budgets {
                cells.push(self.run_cell(rate, budget)?);
            }
        }
        Ok(ChaosReport {
            cells,
            pool_widths: self.pool_widths.clone(),
        })
    }

    /// Runs one (rate, budget) cell at every pool width.
    fn run_cell(&self, rate: f64, budget: u32) -> Result<ChaosCell, JobError> {
        let specs = self.fleet(rate, budget);
        let mut ledgers = Vec::new();
        let mut reference = None;
        for &width in &self.pool_widths {
            let mut sched = BatchScheduler::new(self.fleet_seed);
            let mut seeds = Vec::new();
            for spec in &specs {
                let id = sched.submit(spec.clone())?;
                seeds.push(sched.seed_of(id).expect("submitted job has a seed"));
            }
            let batch = sched.run(width)?;
            ledgers.push(batch.ledger());
            if reference.is_none() {
                reference = Some((batch, seeds));
            }
        }
        let (batch, seeds) = reference.expect("at least one pool width");
        let widths_agree = ledgers.windows(2).all(|w| w[0] == w[1]);

        // Bounded retries: budget + 1 attempts at most, per job.
        let retries_bounded = batch
            .results
            .iter()
            .all(|r| r.outcome.attempts() <= budget + 1);

        // Survivors byte-identical to standalone runs of the same spec
        // and admission seed (the retry path re-seeds per attempt, so
        // recovered jobs are checked against their recovery attempt).
        let mut survivors_match = true;
        for (result, (spec, seed)) in batch.results.iter().zip(specs.iter().zip(&seeds)) {
            if let JobOutcome::Completed {
                artifacts,
                attempts,
            } = &result.outcome
            {
                let mut bare = spec.clone();
                bare.chaos_fail_attempts = 0;
                let reference_seed = crate::jobs::attempt_seed(*seed, attempts - 1);
                match run_standalone(&bare, reference_seed, 1) {
                    Ok(standalone) => {
                        if standalone != *artifacts {
                            survivors_match = false;
                        }
                    }
                    Err(_) => survivors_match = false,
                }
            }
        }

        Ok(ChaosCell {
            rate,
            retry_budget: budget,
            jobs: batch.results.len(),
            completed: batch.completed(),
            timed_out: batch.timed_out(),
            quarantined: batch.quarantined(),
            failed: batch.failed() - batch.timed_out() - batch.quarantined(),
            retries: batch.total_retries(),
            ledger: ledgers.into_iter().next().expect("at least one ledger"),
            widths_agree,
            retries_bounded,
            survivors_match,
        })
    }
}

/// The per-site fault plan a cell's injected job runs: every site at
/// `rate`, seeded so different rates draw independent schedules.
fn plan_at(rate: f64, seed: u64) -> FaultPlan {
    if rate <= 0.0 {
        FaultPlan::default().with_seed(seed)
    } else {
        FaultPlan::all(rate).with_seed(seed)
    }
}

/// One (rate, budget) cell's outcome tallies and invariant verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCell {
    /// The swept component fault rate.
    pub rate: f64,
    /// The swept retry budget.
    pub retry_budget: u32,
    /// Fleet size.
    pub jobs: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs that hit their deadline.
    pub timed_out: usize,
    /// Jobs quarantined (panic or budget exhaustion).
    pub quarantined: usize,
    /// Jobs that failed outright.
    pub failed: usize,
    /// Total retries consumed.
    pub retries: u64,
    /// The (width-invariant) outcome ledger.
    pub ledger: String,
    /// Ledger byte-identical at every pool width.
    pub widths_agree: bool,
    /// No job exceeded `retry_budget + 1` attempts.
    pub retries_bounded: bool,
    /// Completed jobs byte-identical to standalone runs.
    pub survivors_match: bool,
}

impl ChaosCell {
    /// All three invariants hold for this cell.
    pub fn invariants_hold(&self) -> bool {
        self.widths_agree && self.retries_bounded && self.survivors_match
    }
}

/// Every cell of a campaign plus the widths they were replayed at.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Cells in sweep order (rates outer, budgets inner).
    pub cells: Vec<ChaosCell>,
    /// The pool widths every cell ran at.
    pub pool_widths: Vec<usize>,
}

impl ChaosReport {
    /// True when every cell upheld every invariant.
    pub fn all_invariants_hold(&self) -> bool {
        self.cells.iter().all(ChaosCell::invariants_hold)
    }

    /// Campaign-level aggregates under `resilience.jobs.campaign.*`.
    pub fn export_metrics(&self, m: &mut MetricsRegistry) {
        m.counter("resilience.jobs.campaign.cells", self.cells.len() as u64);
        m.counter(
            "resilience.jobs.campaign.completed",
            self.cells.iter().map(|c| c.completed as u64).sum(),
        );
        m.counter(
            "resilience.jobs.campaign.quarantined",
            self.cells.iter().map(|c| c.quarantined as u64).sum(),
        );
        m.counter(
            "resilience.jobs.campaign.timed_out",
            self.cells.iter().map(|c| c.timed_out as u64).sum(),
        );
        m.counter(
            "resilience.jobs.campaign.retries",
            self.cells.iter().map(|c| c.retries).sum(),
        );
        m.counter(
            "resilience.jobs.campaign.invariant_violations",
            self.cells.iter().filter(|c| !c.invariants_hold()).count() as u64,
        );
    }

    /// A deterministic text table (one row per cell) — what
    /// `experiments chaos` prints and mirrors to disk.
    pub fn to_table(&self) -> String {
        let widths = self
            .pool_widths
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join("/");
        let mut out = format!(
            "rate\tbudget\tcompleted\ttimed-out\tquarantined\tfailed\tretries\tinvariants (widths {widths})\n"
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:.2}\t{}\t{}/{}\t{}\t{}\t{}\t{}\t{}\n",
                c.rate,
                c.retry_budget,
                c.completed,
                c.jobs,
                c.timed_out,
                c.quarantined,
                c.failed,
                c.retries,
                if c.invariants_hold() {
                    "ok"
                } else {
                    "VIOLATED"
                },
            ));
        }
        out
    }

    /// The concatenated per-cell ledgers — the byte-stable artefact CI
    /// `cmp`s across pool widths.
    pub fn ledgers(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&format!(
                "# cell rate={:.2} budget={}\n{}",
                c.rate, c.retry_budget, c.ledger
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChaosCampaign {
        ChaosCampaign {
            fleet_seed: 0xC405,
            rates: vec![0.0, 0.05],
            retry_budgets: vec![0, 2],
            pool_widths: vec![1, 2],
            iterations: 1,
            shots: 16,
            include_panic_job: true,
        }
    }

    #[test]
    fn quick_campaign_upholds_all_invariants() {
        let report = tiny().run().unwrap();
        assert_eq!(report.cells.len(), 4);
        for cell in &report.cells {
            assert!(cell.widths_agree, "ledger diverged: {:?}", cell);
            assert!(cell.retries_bounded, "unbounded retries: {:?}", cell);
            assert!(cell.survivors_match, "survivor drifted: {:?}", cell);
        }
        assert!(report.all_invariants_hold());
    }

    #[test]
    fn campaign_exercises_the_whole_outcome_machine() {
        let report = tiny().run().unwrap();
        // Panic job quarantines in every cell; deadline job times out in
        // every cell; the clean job always completes.
        for cell in &report.cells {
            assert!(cell.quarantined >= 1, "{cell:?}");
            assert!(cell.timed_out >= 1, "{cell:?}");
            assert!(cell.completed >= 1, "{cell:?}");
        }
        // With a budget, the scripted flake recovers (a retry happened);
        // without one it fails.
        let no_budget = &report.cells[0];
        let with_budget = &report.cells[1];
        assert_eq!(no_budget.retry_budget, 0);
        assert!(no_budget.failed >= 1, "{no_budget:?}");
        assert_eq!(no_budget.retries, 0);
        assert!(with_budget.retries >= 1, "{with_budget:?}");
        assert!(with_budget.completed > no_budget.completed);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = tiny().run().unwrap();
        let b = tiny().run().unwrap();
        assert_eq!(a.ledgers(), b.ledgers());
        assert_eq!(a.to_table(), b.to_table());
    }

    #[test]
    fn campaign_metrics_land_under_the_resilience_namespace() {
        use qtenon_sim_engine::MetricValue;
        let report = tiny().run().unwrap();
        let mut m = MetricsRegistry::new();
        report.export_metrics(&mut m);
        assert_eq!(
            m.get("resilience.jobs.campaign.cells"),
            Some(&MetricValue::Counter(4))
        );
        assert_eq!(
            m.get("resilience.jobs.campaign.invariant_violations"),
            Some(&MetricValue::Counter(0))
        );
        match m.get("resilience.jobs.campaign.quarantined") {
            Some(MetricValue::Counter(c)) => assert!(*c >= 4),
            other => panic!("expected counter, got {other:?}"),
        }
    }
}
