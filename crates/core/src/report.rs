//! Time-accounting structures behind every figure.

use serde::{Deserialize, Serialize};

use qtenon_controller::SltStats;
use qtenon_sim_engine::{CritPathReport, PhaseTable, SimDuration};

/// Busy time per system component over a run. Because Qtenon overlaps
/// components, the end-to-end wall time is *not* the sum of these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Quantum chip execution (gates + measurement).
    pub quantum: SimDuration,
    /// Quantum-host communication (all data-path traffic).
    pub communication: SimDuration,
    /// Pulse generation (controller pipeline).
    pub pulse_generation: SimDuration,
    /// Host computation (compilation, cost evaluation, optimisation).
    pub host: SimDuration,
}

impl TimeBreakdown {
    /// Sum of component busy times (the no-overlap upper bound).
    pub fn busy_total(&self) -> SimDuration {
        self.quantum + self.communication + self.pulse_generation + self.host
    }

    /// Component shares of a given wall time, in the order
    /// `[quantum, communication, pulse, host]`.
    pub fn shares_of(&self, wall: SimDuration) -> [f64; 4] {
        let f = |d: SimDuration| {
            if wall.is_zero() {
                0.0
            } else {
                d.fraction_of(wall)
            }
        };
        [
            f(self.quantum),
            f(self.communication),
            f(self.pulse_generation),
            f(self.host),
        ]
    }
}

impl std::ops::Add for TimeBreakdown {
    type Output = TimeBreakdown;
    fn add(self, rhs: TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            quantum: self.quantum + rhs.quantum,
            communication: self.communication + rhs.communication,
            pulse_generation: self.pulse_generation + rhs.pulse_generation,
            host: self.host + rhs.host,
        }
    }
}

impl std::ops::AddAssign for TimeBreakdown {
    fn add_assign(&mut self, rhs: TimeBreakdown) {
        *self = *self + rhs;
    }
}

/// Communication time and instruction counts split by data-communication
/// instruction (Fig. 14's breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommBreakdown {
    /// Time in `q_set` transfers.
    pub q_set: SimDuration,
    /// Time in `q_update` register writes.
    pub q_update: SimDuration,
    /// Time in `q_acquire`/PUT result movement.
    pub q_acquire: SimDuration,
    /// Dynamic `q_set` count.
    pub q_set_count: u64,
    /// Dynamic `q_update` count.
    pub q_update_count: u64,
    /// Dynamic `q_acquire`/PUT count.
    pub q_acquire_count: u64,
}

impl CommBreakdown {
    /// Total communication time.
    pub fn total(&self) -> SimDuration {
        self.q_set + self.q_update + self.q_acquire
    }

    /// Time shares in the order `[q_set, q_update, q_acquire]`.
    pub fn shares(&self) -> [f64; 3] {
        let total = self.total();
        if total.is_zero() {
            return [0.0; 3];
        }
        [
            self.q_set.fraction_of(total),
            self.q_update.fraction_of(total),
            self.q_acquire.fraction_of(total),
        ]
    }
}

impl std::ops::AddAssign for CommBreakdown {
    fn add_assign(&mut self, rhs: CommBreakdown) {
        self.q_set += rhs.q_set;
        self.q_update += rhs.q_update;
        self.q_acquire += rhs.q_acquire;
        self.q_set_count += rhs.q_set_count;
        self.q_update_count += rhs.q_update_count;
        self.q_acquire_count += rhs.q_acquire_count;
    }
}

/// Fault-injection and recovery counters accumulated over a run.
///
/// All-zero (the [`Default`]) whenever the configured
/// [`FaultPlan`](qtenon_sim_engine::FaultPlan) is inert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceSummary {
    /// Faults the injector actually fired across every site.
    pub faults_injected: u64,
    /// TileLink transfers re-sent after a drop or corruption.
    pub bus_retries: u64,
    /// PGU stall events absorbed by extending the dispatch window.
    pub pgu_stalls: u64,
    /// Pulse computations re-dispatched after a PGU failure.
    pub pgu_redispatches: u64,
    /// SLT ways invalidated by parity poisoning (degraded to recompute).
    pub slt_invalidations: u64,
    /// RBQ tags reclaimed by the completion watchdog.
    pub rbq_reclaims: u64,
    /// Readout re-arms after a classification timeout.
    pub readout_retries: u64,
    /// `.measure` upsets corrected by the ECC decoder.
    pub ecc_corrections: u64,
}

impl ResilienceSummary {
    /// Total recovery actions of every kind — the headline
    /// `resilience.retries` counter.
    pub fn total_retries(&self) -> u64 {
        self.bus_retries
            + self.pgu_stalls
            + self.pgu_redispatches
            + self.slt_invalidations
            + self.rbq_reclaims
            + self.readout_retries
            + self.ecc_corrections
    }

    /// Whether any fault fired or any recovery action ran.
    pub fn is_zero(&self) -> bool {
        self.faults_injected == 0 && self.total_retries() == 0
    }
}

impl std::ops::AddAssign for ResilienceSummary {
    fn add_assign(&mut self, rhs: ResilienceSummary) {
        self.faults_injected += rhs.faults_injected;
        self.bus_retries += rhs.bus_retries;
        self.pgu_stalls += rhs.pgu_stalls;
        self.pgu_redispatches += rhs.pgu_redispatches;
        self.slt_invalidations += rhs.slt_invalidations;
        self.rbq_reclaims += rhs.rbq_reclaims;
        self.readout_retries += rhs.readout_retries;
        self.ecc_corrections += rhs.ecc_corrections;
    }
}

/// Compilation-cache activity observed by one run.
///
/// All-zero (the [`Default`]) whenever the run executed without a cache,
/// and only ever recorded for runs that own their cache privately — a
/// cache shared across a worker pool makes per-run hit counts depend on
/// scheduling interleaving, so batch jobs never record this section and
/// their artefacts stay byte-identical at any pool width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheActivity {
    /// Program-level cache hits.
    pub program_hits: u64,
    /// Program-level cache misses (cold compiles).
    pub program_misses: u64,
    /// Pulse-level cache hits.
    pub pulse_hits: u64,
    /// Pulse-level cache misses (cold work-item generation).
    pub pulse_misses: u64,
    /// Bound-circuit cache hits.
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub bound_hits: u64,
    /// Bound-circuit cache misses (cold parameter binds).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub bound_misses: u64,
}

/// Serde helper: skip a counter that never moved.
fn is_zero_u64(v: &u64) -> bool {
    *v == 0
}

impl CacheActivity {
    /// Total cache lookups across all levels.
    pub fn lookups(&self) -> u64 {
        self.program_hits
            + self.program_misses
            + self.pulse_hits
            + self.pulse_misses
            + self.bound_hits
            + self.bound_misses
    }

    /// Whether the run saw no cache activity at all. Used to skip the
    /// section during serialization, keeping cache-off reports
    /// byte-identical to pre-cache ones.
    pub fn is_zero(&self) -> bool {
        self.lookups() == 0
    }

    /// Hit fraction; `None` for zero lookups so renderers print a fixed
    /// placeholder instead of a NaN.
    pub fn hit_rate(&self) -> Option<f64> {
        let lookups = self.lookups();
        if lookups == 0 {
            None
        } else {
            Some((self.program_hits + self.pulse_hits + self.bound_hits) as f64 / lookups as f64)
        }
    }

    /// Human-readable one-liner; never NaN, fixed text when idle.
    pub fn describe(&self) -> String {
        match self.hit_rate() {
            None => "compile cache: idle (0 lookups)".to_string(),
            Some(rate) => format!(
                "compile cache: {}/{} lookups hit ({:.1}%)",
                self.program_hits + self.pulse_hits + self.bound_hits,
                self.lookups(),
                rate * 100.0
            ),
        }
    }
}

impl std::ops::AddAssign for CacheActivity {
    fn add_assign(&mut self, rhs: CacheActivity) {
        self.program_hits += rhs.program_hits;
        self.program_misses += rhs.program_misses;
        self.pulse_hits += rhs.pulse_hits;
        self.pulse_misses += rhs.pulse_misses;
        self.bound_hits += rhs.bound_hits;
        self.bound_misses += rhs.bound_misses;
    }
}

/// The complete result of one end-to-end VQA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// End-to-end wall time (with overlap).
    pub total: SimDuration,
    /// Per-component busy time.
    pub breakdown: TimeBreakdown,
    /// Communication split per instruction type.
    pub comm: CommBreakdown,
    /// Dynamic Qtenon instructions executed.
    pub dynamic_instructions: u64,
    /// Static Qtenon instructions in the program text (loops collapsed).
    pub static_instructions: u64,
    /// Pulses actually computed by PGUs.
    pub pulses_generated: u64,
    /// Pulse pipeline cache statistics.
    pub slt: SltStats,
    /// Host cycles spent on classical computation.
    pub host_cycles: u64,
    /// Cost value after each iteration.
    pub cost_history: Vec<f64>,
    /// The final cost.
    pub final_cost: f64,
    /// Fraction of pulse computations avoided relative to regenerating
    /// every pulse every evaluation (Table 5's "reduction").
    pub pulse_reduction: f64,
    /// Fault-injection and recovery counters (all zero without faults).
    #[serde(default)]
    pub resilience: ResilienceSummary,
    /// Per-phase latency attribution (deterministic sim-time spans).
    #[serde(default)]
    pub phases: PhaseTable,
    /// Per-edge critical-path attribution (who-blocks-whom blocking
    /// time along the causal chain).
    #[serde(default)]
    pub critpath: CritPathReport,
    /// Compilation-cache activity. Unlike the sections above this one is
    /// *skipped* while all-zero: cache-off and empty-cache runs must
    /// serialize byte-identically to pre-cache output.
    #[serde(default, skip_serializing_if = "CacheActivity::is_zero")]
    pub cache: CacheActivity,
}

impl RunReport {
    /// Classical wall time: everything that is not quantum execution.
    ///
    /// The paper's "classical execution time" speedups (Figs. 11a/12a)
    /// compare this quantity across systems.
    pub fn classical_time(&self) -> SimDuration {
        self.total.saturating_sub(self.breakdown.quantum)
    }

    /// Wall-time shares `[quantum, comm, pulse, host]` summing to 1.
    ///
    /// On an overlapped system, component busy times exceed the wall
    /// time; this view charges quantum execution its true wall share and
    /// splits the remaining (exposed classical) time across the classical
    /// components in proportion to their busy time — the presentation
    /// used by the paper's breakdown pies (Figs. 1b, 13, 17c).
    pub fn exposed_shares(&self) -> [f64; 4] {
        if self.total.is_zero() {
            return [0.0; 4];
        }
        let quantum = self
            .breakdown
            .quantum
            .min(self.total)
            .fraction_of(self.total);
        let classical_busy =
            self.breakdown.communication + self.breakdown.pulse_generation + self.breakdown.host;
        let rest = 1.0 - quantum;
        if classical_busy.is_zero() {
            return [quantum, 0.0, 0.0, rest];
        }
        let f = |d: SimDuration| rest * d.fraction_of(classical_busy);
        [
            quantum,
            f(self.breakdown.communication),
            f(self.breakdown.pulse_generation),
            f(self.breakdown.host),
        ]
    }

    /// Folds `other` into this report as if its run had executed directly
    /// after this one: durations and counters add, the cost history
    /// concatenates, and `final_cost` takes the later run's value.
    ///
    /// `pulse_reduction` is rebuilt from the underlying tallies — each
    /// side's pulse work-item count is recovered from its reduction and
    /// generation count, the tallies are summed, and the merged ratio is
    /// recomputed — so merging N single-run reports yields exactly the
    /// reduction a single N-run accounting would have produced. The
    /// reduction with respect to `self`/`other` asymmetry (`final_cost`,
    /// history order) is why shard merges must follow canonical order.
    pub fn merge(&mut self, other: &RunReport) {
        // Recover work items before the counters move: r = 1 - g/w, so
        // w = g / (1 - r). A degenerate side (r == 1 with no generated
        // pulses, only possible for an empty run) contributes nothing.
        let work_items = |r: &RunReport| -> f64 {
            if r.pulse_reduction < 1.0 {
                r.pulses_generated as f64 / (1.0 - r.pulse_reduction)
            } else {
                0.0
            }
        };
        let items = work_items(self) + work_items(other);
        self.total += other.total;
        self.breakdown += other.breakdown;
        self.comm += other.comm;
        self.dynamic_instructions += other.dynamic_instructions;
        self.static_instructions += other.static_instructions;
        self.pulses_generated += other.pulses_generated;
        self.slt.lookups += other.slt.lookups;
        self.slt.hits += other.slt.hits;
        self.slt.qspace_hits += other.slt.qspace_hits;
        self.slt.allocations += other.slt.allocations;
        self.slt.evictions += other.slt.evictions;
        self.slt.parity_invalidations += other.slt.parity_invalidations;
        self.host_cycles += other.host_cycles;
        self.cost_history.extend_from_slice(&other.cost_history);
        self.final_cost = other.final_cost;
        self.pulse_reduction = if items > 0.0 {
            1.0 - self.pulses_generated as f64 / items
        } else {
            0.0
        };
        self.resilience += other.resilience;
        self.phases.merge(&other.phases);
        self.critpath.merge(&other.critpath);
        self.cache += other.cache;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimDuration {
        SimDuration::from_ns(v)
    }

    #[test]
    fn busy_total_sums_components() {
        let b = TimeBreakdown {
            quantum: ns(10),
            communication: ns(20),
            pulse_generation: ns(30),
            host: ns(40),
        };
        assert_eq!(b.busy_total(), ns(100));
    }

    #[test]
    fn shares_sum_to_busy_over_wall() {
        let b = TimeBreakdown {
            quantum: ns(50),
            communication: ns(25),
            pulse_generation: ns(15),
            host: ns(10),
        };
        let shares = b.shares_of(ns(100));
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_wall_yields_zero_shares() {
        let b = TimeBreakdown::default();
        assert_eq!(b.shares_of(SimDuration::ZERO), [0.0; 4]);
    }

    #[test]
    fn comm_breakdown_shares() {
        let c = CommBreakdown {
            q_set: ns(10),
            q_update: ns(30),
            q_acquire: ns(60),
            q_set_count: 1,
            q_update_count: 3,
            q_acquire_count: 6,
        };
        let s = c.shares();
        assert!((s[0] - 0.1).abs() < 1e-12);
        assert!((s[2] - 0.6).abs() < 1e-12);
        assert_eq!(c.total(), ns(100));
    }

    #[test]
    fn resilience_summary_totals_and_zero_check() {
        let mut r = ResilienceSummary::default();
        assert!(r.is_zero());
        assert_eq!(r.total_retries(), 0);
        r.bus_retries = 2;
        r.rbq_reclaims = 1;
        r.ecc_corrections = 3;
        assert_eq!(r.total_retries(), 6);
        assert!(!r.is_zero());
        r = ResilienceSummary {
            faults_injected: 1,
            ..ResilienceSummary::default()
        };
        assert!(!r.is_zero());
    }

    #[test]
    fn resilience_accumulates_fieldwise() {
        let mut a = ResilienceSummary {
            faults_injected: 1,
            bus_retries: 2,
            ecc_corrections: 3,
            ..ResilienceSummary::default()
        };
        a += ResilienceSummary {
            faults_injected: 10,
            readout_retries: 4,
            ..ResilienceSummary::default()
        };
        assert_eq!(a.faults_injected, 11);
        assert_eq!(a.bus_retries, 2);
        assert_eq!(a.readout_retries, 4);
        assert_eq!(a.total_retries(), 9);
    }

    #[test]
    fn run_report_merge_sums_and_rebuilds_reduction() {
        let base = RunReport {
            total: ns(100),
            breakdown: TimeBreakdown {
                quantum: ns(60),
                communication: ns(10),
                pulse_generation: ns(20),
                host: ns(10),
            },
            comm: CommBreakdown {
                q_set: ns(5),
                q_set_count: 1,
                ..CommBreakdown::default()
            },
            dynamic_instructions: 10,
            static_instructions: 4,
            pulses_generated: 25,
            slt: SltStats {
                lookups: 100,
                hits: 75,
                allocations: 25,
                ..SltStats::default()
            },
            host_cycles: 1000,
            cost_history: vec![1.0, 0.5],
            final_cost: 0.5,
            pulse_reduction: 0.75, // 25 generated of 100 work items
            resilience: ResilienceSummary::default(),
            phases: PhaseTable::default(),
            critpath: CritPathReport::default(),
            cache: CacheActivity::default(),
        };
        let mut merged = base.clone();
        let mut second = base.clone();
        second.pulses_generated = 10;
        second.pulse_reduction = 0.9; // 10 generated of 100 work items
        second.cost_history = vec![0.25];
        second.final_cost = 0.25;
        merged.merge(&second);
        assert_eq!(merged.total, ns(200));
        assert_eq!(merged.breakdown.quantum, ns(120));
        assert_eq!(merged.comm.q_set_count, 2);
        assert_eq!(merged.dynamic_instructions, 20);
        assert_eq!(merged.pulses_generated, 35);
        assert_eq!(merged.slt.lookups, 200);
        assert_eq!(merged.host_cycles, 2000);
        assert_eq!(merged.cost_history, vec![1.0, 0.5, 0.25]);
        assert_eq!(merged.final_cost, 0.25);
        // 35 generated of 200 reconstructed work items.
        assert!((merged.pulse_reduction - (1.0 - 35.0 / 200.0)).abs() < 1e-12);
        assert_eq!(merged.classical_time(), ns(80));
    }

    #[test]
    fn cache_activity_placeholder_and_rates_never_nan() {
        let idle = CacheActivity::default();
        assert!(idle.is_zero());
        assert_eq!(idle.hit_rate(), None);
        assert_eq!(idle.describe(), "compile cache: idle (0 lookups)");
        let mut busy = CacheActivity {
            program_hits: 1,
            program_misses: 1,
            pulse_hits: 4,
            pulse_misses: 2,
            bound_hits: 2,
            bound_misses: 0,
        };
        assert!(!busy.is_zero());
        assert!((busy.hit_rate().unwrap() - 0.7).abs() < 1e-12);
        assert_eq!(busy.describe(), "compile cache: 7/10 lookups hit (70.0%)");
        busy += busy;
        assert_eq!(busy.lookups(), 20);
    }

    #[test]
    fn breakdown_accumulates() {
        let mut a = TimeBreakdown {
            quantum: ns(1),
            communication: ns(2),
            pulse_generation: ns(3),
            host: ns(4),
        };
        a += a;
        assert_eq!(a.quantum, ns(2));
        assert_eq!(a.host, ns(8));
    }
}
