//! System configuration (Table 4) and software policy knobs.

use serde::{Deserialize, Serialize};

use qtenon_controller::{AdiModel, BusConfig, PipelineConfig};
use qtenon_isa::QccLayout;
use qtenon_mem::HierarchyConfig;
use qtenon_quantum::GateTimes;
use qtenon_sim_engine::FaultPlan;

use crate::SystemError;

/// Which RISC-V host core drives the system (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreModel {
    /// Rocket: in-order, single-issue, 1 GHz.
    Rocket,
    /// BOOM-Large: out-of-order, superscalar, 1 GHz.
    BoomLarge,
}

impl CoreModel {
    /// Display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            CoreModel::Rocket => "Qtenon-Rocket",
            CoreModel::BoomLarge => "Qtenon-Boom-L",
        }
    }
}

impl std::fmt::Display for CoreModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How quantum-host synchronisation is enforced (Section 6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SyncMode {
    /// RISC-V default: FENCE instructions serialise quantum execution,
    /// transmission, and host post-processing (Fig. 9a).
    Fence,
    /// Qtenon's soft memory barrier: transmissions and post-processing
    /// overlap quantum execution (Fig. 9b).
    #[default]
    FineGrained,
}

/// When measurement results cross the bus (Section 6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TransmissionPolicy {
    /// One PUT per shot — simple, but under-utilises the 256-bit bus.
    Immediate,
    /// Algorithm 1: one PUT every ⌊B/N⌋ shots.
    #[default]
    Batched,
}

/// The full Qtenon system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QtenonConfig {
    /// Qubit count.
    pub n_qubits: u32,
    /// Host core model.
    pub core: CoreModel,
    /// Quantum controller cache layout (Table 2 geometry).
    pub layout: QccLayout,
    /// Host memory hierarchy (Table 4).
    pub hierarchy: HierarchyConfig,
    /// System bus (TileLink, 256-bit).
    pub bus: BusConfig,
    /// Pulse pipeline and PGU pool.
    pub pipeline: PipelineConfig,
    /// SerDes/ADI model.
    pub adi: AdiModel,
    /// Quantum gate durations.
    pub gate_times: GateTimes,
    /// Synchronisation mode.
    pub sync: SyncMode,
    /// Measurement transmission policy.
    pub transmission: TransmissionPolicy,
    /// Seed for chip sampling.
    pub seed: u64,
    /// Deterministic fault-injection plan (all rates zero by default:
    /// the fault layer is inert and the system behaves exactly as the
    /// fault-free model).
    pub faults: FaultPlan,
    /// Worker threads for shot-sharded sampling (1 = serial). Purely a
    /// wall-clock knob: per-shot RNG streams make every thread count
    /// produce bitwise-identical results, so `threads` never appears in
    /// any metric or report.
    #[serde(default = "default_threads")]
    pub threads: usize,
    /// Enables wall-clock capture in the latency-attribution profiler.
    /// Sim-time spans (the phase table and every `profile.*` metric) are
    /// always collected, so this flag never changes any report or metric
    /// — it only unlocks the explicitly-unstable wall-time printout.
    #[serde(default)]
    pub profile: bool,
    /// Enables gate fusion in the exact statevector backend: runs of
    /// adjacent same-qubit gates execute in one memory sweep. Fused and
    /// unfused execution are bitwise interchangeable (DESIGN.md §13), so
    /// like `threads` this is purely a wall-clock knob; `--no-fuse` is
    /// the CLI escape hatch.
    #[serde(default = "default_fuse")]
    pub fuse: bool,
    /// Enables the fleet compilation cache (DESIGN.md §14). Like
    /// `threads` and `fuse` this is purely a wall-clock knob: a cache
    /// hit returns byte-identical artefacts to a cold compile, so the
    /// flag never changes any per-job report or metric.
    #[serde(default = "default_cache")]
    pub cache: bool,
    /// Entry budget per cache level (programs and pulse streams each).
    #[serde(default = "default_cache_capacity")]
    pub cache_capacity: usize,
}

fn default_threads() -> usize {
    1
}

fn default_fuse() -> bool {
    true
}

fn default_cache() -> bool {
    false
}

fn default_cache_capacity() -> usize {
    qtenon_compiler::cache::DEFAULT_CAPACITY
}

impl QtenonConfig {
    /// The Table 4 configuration at a given qubit count and core.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Config`] if the QCC layout cannot be built.
    pub fn table4(n_qubits: u32, core: CoreModel) -> Result<Self, SystemError> {
        let layout =
            QccLayout::for_qubits(n_qubits).map_err(|e| SystemError::Config(e.to_string()))?;
        Ok(QtenonConfig {
            n_qubits,
            core,
            layout,
            hierarchy: HierarchyConfig::default(),
            bus: BusConfig::default(),
            pipeline: PipelineConfig::default(),
            adi: AdiModel::default(),
            gate_times: GateTimes::default(),
            sync: SyncMode::FineGrained,
            transmission: TransmissionPolicy::Batched,
            seed: 0x51,
            faults: FaultPlan::default(),
            threads: 1,
            profile: false,
            fuse: true,
            cache: false,
            cache_capacity: qtenon_compiler::cache::DEFAULT_CAPACITY,
        })
    }

    /// Returns a copy with a different synchronisation mode.
    pub fn with_sync(mut self, sync: SyncMode) -> Self {
        self.sync = sync;
        self
    }

    /// Returns a copy with a different transmission policy.
    pub fn with_transmission(mut self, transmission: TransmissionPolicy) -> Self {
        self.transmission = transmission;
        self
    }

    /// Returns a copy with a different sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Returns a copy with a different worker-thread count (0 is clamped
    /// to 1, i.e. serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns a copy with wall-clock profiling enabled or disabled.
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Returns a copy with gate fusion enabled or disabled.
    pub fn with_fuse(mut self, fuse: bool) -> Self {
        self.fuse = fuse;
        self
    }

    /// Returns a copy with the fleet compilation cache enabled or
    /// disabled.
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Returns a copy with a different cache entry budget (0 is clamped
    /// to 1 entry per level).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_builds_for_paper_sizes() {
        for n in [8, 16, 24, 32, 40, 48, 56, 64, 128, 256, 320] {
            let cfg = QtenonConfig::table4(n, CoreModel::Rocket).unwrap();
            assert_eq!(cfg.n_qubits, n);
            assert_eq!(cfg.layout.n_qubits(), n);
        }
    }

    #[test]
    fn defaults_match_paper_policies() {
        let cfg = QtenonConfig::table4(64, CoreModel::BoomLarge).unwrap();
        assert_eq!(cfg.sync, SyncMode::FineGrained);
        assert_eq!(cfg.transmission, TransmissionPolicy::Batched);
        assert_eq!(cfg.pipeline.pgu.units, 8);
    }

    #[test]
    fn builder_toggles() {
        let cfg = QtenonConfig::table4(8, CoreModel::Rocket)
            .unwrap()
            .with_sync(SyncMode::Fence)
            .with_transmission(TransmissionPolicy::Immediate)
            .with_seed(9);
        assert_eq!(cfg.sync, SyncMode::Fence);
        assert_eq!(cfg.transmission, TransmissionPolicy::Immediate);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn fault_plan_defaults_inert_and_builder_installs_one() {
        let cfg = QtenonConfig::table4(8, CoreModel::Rocket).unwrap();
        assert!(!cfg.faults.is_active());
        let cfg = cfg.with_faults(FaultPlan::all(0.01).with_seed(7));
        assert!(cfg.faults.is_active());
        assert_eq!(cfg.faults.seed, 7);
    }

    #[test]
    fn threads_default_serial_and_clamp_to_one() {
        let cfg = QtenonConfig::table4(8, CoreModel::Rocket).unwrap();
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.with_threads(4).threads, 4);
        assert_eq!(cfg.with_threads(0).threads, 1);
    }

    #[test]
    fn fuse_defaults_on_and_builder_toggles_off() {
        let cfg = QtenonConfig::table4(8, CoreModel::Rocket).unwrap();
        assert!(cfg.fuse);
        assert!(!cfg.with_fuse(false).fuse);
    }

    #[test]
    fn cache_defaults_off_with_nonzero_capacity() {
        let cfg = QtenonConfig::table4(8, CoreModel::Rocket).unwrap();
        assert!(!cfg.cache);
        assert!(cfg.cache_capacity > 0);
        assert!(cfg.with_cache(true).cache);
        assert_eq!(cfg.with_cache_capacity(0).cache_capacity, 1);
    }

    #[test]
    fn zero_qubits_rejected() {
        assert!(QtenonConfig::table4(0, CoreModel::Rocket).is_err());
    }

    #[test]
    fn core_names_match_figures() {
        assert_eq!(CoreModel::Rocket.to_string(), "Qtenon-Rocket");
        assert_eq!(CoreModel::BoomLarge.to_string(), "Qtenon-Boom-L");
    }
}
