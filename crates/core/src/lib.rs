//! The Qtenon tightly coupled system — the paper's primary contribution.
//!
//! This crate integrates the substrates (host core models, unified memory
//! hierarchy, quantum controller, compiler, quantum chip simulator) into
//! the end-to-end system of Fig. 3 and provides the executors behind every
//! experiment:
//!
//! - [`config`]: Table 4 hardware configurations, synchronisation modes
//!   (FENCE vs fine-grained barrier) and transmission policies (immediate
//!   vs Algorithm 1 batching);
//! - [`host`]: cycle-cost models for the Rocket-class in-order and
//!   BOOM-Large-class out-of-order RISC-V cores;
//! - [`schedule`]: the batched transmission policy (Algorithm 1);
//! - [`system`]: [`QtenonSystem`] — functional-plus-timed execution of
//!   the five Qtenon instructions against the controller and chip;
//! - [`parallel`]: the shot-sharded execution engine — contiguous shard
//!   planning plus scoped thread fan-out whose merged results are
//!   bitwise identical to the serial run at any thread count;
//! - [`vqa`]: [`VqaRunner`] — full hybrid quantum-classical algorithm
//!   execution with incremental compilation, overlap scheduling, and
//!   per-component time accounting;
//! - [`jobs`]: the deterministic multi-job batch scheduler — bounded
//!   priority admission of independent VQA jobs over one shared worker
//!   pool, with per-job artefacts byte-identical to standalone runs,
//!   plus the fault-containment layer: panic quarantine, per-job
//!   sim-time deadlines, and deterministic retry with bounded backoff;
//! - [`chaos`]: the chaos-campaign harness — fault-rate × retry-policy
//!   sweeps over a fleet with per-cell invariant checks (no hangs,
//!   bounded retries, survivor artefacts byte-identical to standalone);
//! - [`report`]: the time-breakdown structures every figure is built
//!   from.
//!
//! # Examples
//!
//! ```
//! use qtenon_core::config::{CoreModel, QtenonConfig};
//! use qtenon_core::vqa::VqaRunner;
//! use qtenon_workloads::{SpsaOptimizer, Workload};
//!
//! let config = QtenonConfig::table4(8, CoreModel::Rocket)?;
//! let workload = Workload::qaoa(8, 2, 7)?;
//! let mut runner = VqaRunner::new(config, workload)?;
//! let report = runner.run(&mut SpsaOptimizer::new(7), 2, 50)?;
//! assert!(report.total > qtenon_sim_engine::SimDuration::ZERO);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod chaos;
pub mod config;
pub mod host;
pub mod jobs;
pub mod parallel;
pub mod report;
pub mod schedule;
pub mod system;
pub mod trace;
pub mod vqa;

pub use chaos::{ChaosCampaign, ChaosCell, ChaosReport};
pub use config::{CoreModel, QtenonConfig, SyncMode, TransmissionPolicy};
pub use host::HostCoreModel;
pub use jobs::{
    BatchReport, BatchScheduler, BatchSpec, JobError, JobOutcome, JobResult, JobSpec, PoolPlan,
};
pub use parallel::{Shard, ShardPlan};
pub use report::{CommBreakdown, ResilienceSummary, RunReport, TimeBreakdown};
pub use schedule::TransmissionPlan;
pub use system::QtenonSystem;
pub use vqa::{DeadlineStatus, VqaRunner};

use std::fmt;

/// Errors from system construction and execution.
#[derive(Debug)]
pub enum SystemError {
    /// Invalid configuration.
    Config(String),
    /// ISA-level failure.
    Isa(qtenon_isa::IsaError),
    /// Memory-model failure.
    Mem(qtenon_mem::MemError),
    /// Controller hardware failure (retry budgets exhausted, structural
    /// misuse) surfaced as a typed error instead of a panic.
    Controller(qtenon_controller::ControllerError),
    /// Compilation failure.
    Compile(qtenon_compiler::CompileError),
    /// Quantum simulation failure.
    Quantum(qtenon_quantum::QuantumError),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Config(m) => write!(f, "bad system config: {m}"),
            SystemError::Isa(e) => write!(f, "isa error: {e}"),
            SystemError::Mem(e) => write!(f, "memory error: {e}"),
            SystemError::Controller(e) => write!(f, "controller error: {e}"),
            SystemError::Compile(e) => write!(f, "compile error: {e}"),
            SystemError::Quantum(e) => write!(f, "quantum error: {e}"),
        }
    }
}

impl std::error::Error for SystemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SystemError::Config(_) => None,
            SystemError::Isa(e) => Some(e),
            SystemError::Mem(e) => Some(e),
            SystemError::Controller(e) => Some(e),
            SystemError::Compile(e) => Some(e),
            SystemError::Quantum(e) => Some(e),
        }
    }
}

impl From<qtenon_isa::IsaError> for SystemError {
    fn from(e: qtenon_isa::IsaError) -> Self {
        SystemError::Isa(e)
    }
}
impl From<qtenon_mem::MemError> for SystemError {
    fn from(e: qtenon_mem::MemError) -> Self {
        SystemError::Mem(e)
    }
}
impl From<qtenon_controller::ControllerError> for SystemError {
    fn from(e: qtenon_controller::ControllerError) -> Self {
        SystemError::Controller(e)
    }
}
impl From<qtenon_compiler::CompileError> for SystemError {
    fn from(e: qtenon_compiler::CompileError) -> Self {
        SystemError::Compile(e)
    }
}
impl From<qtenon_quantum::QuantumError> for SystemError {
    fn from(e: qtenon_quantum::QuantumError) -> Self {
        SystemError::Quantum(e)
    }
}
