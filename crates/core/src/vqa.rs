//! End-to-end hybrid quantum-classical algorithm execution on Qtenon.
//!
//! [`VqaRunner`] reproduces the paper's runtime protocol:
//!
//! 1. **Setup** (once): compile the circuit to per-qubit program entries,
//!    `q_set` the chunks, `q_update` every register slot, and `q_gen` the
//!    cold pulse set.
//! 2. **Per evaluation**: incremental compilation diffs the parameter
//!    vector and issues only the changed `q_update`s; `q_gen` re-walks the
//!    program but the SLT skips every unchanged pulse; `q_run` executes
//!    the shots while — under fine-grained synchronisation — measurement
//!    batches stream back per Algorithm 1 and the host post-processes
//!    them concurrently (Fig. 9b). Under FENCE everything serialises
//!    (Fig. 9a).
//! 3. **Per iteration**: the optimizer consumes the evaluated costs and
//!    produces the next parameter vector on the host core model.

use std::sync::Arc;

use qtenon_compiler::{
    CachedProgram, CompilationCache, CompiledProgram, ParameterDiff, QtenonCompiler,
};
use qtenon_isa::{GateType, Instruction, QubitId};
use qtenon_quantum::{BitString, Circuit};
use qtenon_sim_engine::{
    EventQueue, Histogram, MetricsRegistry, OpClass, OpCounter, PhaseId, Profiler, SimDuration,
    SimTime,
};
use qtenon_workloads::cost::{CostEvaluator, BLOCK_SHOTS};
use qtenon_workloads::{evaluate_cost, Optimizer, Workload};

use crate::config::{QtenonConfig, SyncMode, TransmissionPolicy};
use crate::report::{CacheActivity, RunReport, TimeBreakdown};
use crate::schedule::{TransmissionBatch, TransmissionPlan};
use crate::system::QtenonSystem;
use crate::SystemError;

/// Host memory address where the program image lives.
const HOST_PROGRAM_ADDR: u64 = 0x8000_0000;
/// Host memory address where measurement results land.
const HOST_RESULT_ADDR: u64 = 0x9000_0000;

/// Per-batch host handshake cost (barrier query, buffer management,
/// loop control) in abstract ops — paid once per PUT the host consumes,
/// which is why Algorithm 1's batching shows up as host-time savings.
fn batch_overhead_ops(ops: &mut OpCounter) {
    ops.record(OpClass::IntAlu, 400);
    ops.record(OpClass::Mem, 250);
    ops.record(OpClass::Branch, 120);
}

/// Pre-interned phase ids for the iteration-level attribution spans the
/// runner records into the system's profiler.
#[derive(Clone, Copy)]
struct VqaPhases {
    setup: PhaseId,
    compile_patch: PhaseId,
    upload: PhaseId,
    pulse_gen: PhaseId,
    quantum_execute: PhaseId,
    readout_drain: PhaseId,
    host_post: PhaseId,
    optimizer_step: PhaseId,
}

impl VqaPhases {
    fn intern(profiler: &mut Profiler) -> Self {
        VqaPhases {
            setup: profiler.phase("vqa.setup"),
            compile_patch: profiler.phase("vqa.compile_patch"),
            upload: profiler.phase("vqa.upload"),
            pulse_gen: profiler.phase("vqa.pulse_gen"),
            quantum_execute: profiler.phase("vqa.quantum_execute"),
            readout_drain: profiler.phase("vqa.readout_drain"),
            host_post: profiler.phase("vqa.host_post"),
            optimizer_step: profiler.phase("vqa.optimizer_step"),
        }
    }
}

/// Where a cooperatively-enforced deadline left a run: either it never
/// fired (`hit == false`, all requested iterations ran) or the loop
/// stopped at an iteration boundary with partial progress.
///
/// Deadlines are *sim-time* budgets checked between iterations, so a
/// deadline can only cut the loop at a boundary — mid-iteration state is
/// never torn, and the partial report is exactly the report a shorter
/// run would have produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineStatus {
    /// True when the deadline fired before all iterations completed.
    pub hit: bool,
    /// Iterations that fully completed before the loop stopped.
    pub completed_iterations: usize,
    /// Iterations originally requested.
    pub requested_iterations: usize,
}

impl DeadlineStatus {
    /// A status for a run that was never given a deadline (or finished
    /// inside it).
    pub fn completed(iterations: usize) -> Self {
        DeadlineStatus {
            hit: false,
            completed_iterations: iterations,
            requested_iterations: iterations,
        }
    }
}

/// The runner's handle on a shared compilation cache: the cache itself
/// plus the keyed program it compiled through it.
struct CacheBinding {
    cache: Arc<CompilationCache>,
    program: CachedProgram,
}

/// Executes hybrid workloads on a [`QtenonSystem`].
pub struct VqaRunner {
    system: QtenonSystem,
    workload: Workload,
    program: Arc<CompiledProgram>,
    cache: Option<CacheBinding>,
    /// Whether per-run cache activity lands in [`RunReport::cache`].
    /// Off by default: a cache shared across a pool makes hit counts
    /// depend on worker interleaving, so batch jobs must not record
    /// them (their artefacts are compared byte-for-byte across pool
    /// widths). Only enable for runs that own their cache privately.
    record_cache: bool,
    /// Program-level lookup made at construction time.
    compile_cache_activity: CacheActivity,
    /// Pulse-level lookups made by the current run.
    run_cache_activity: CacheActivity,
    evaluations: u64,
    iterations: u64,
    eval_latency: Histogram,
    iter_latency: Histogram,
    final_cost: f64,
    /// PUT events scheduled on the fine-grained drain queue.
    des_scheduled: u64,
    /// PUT events dispatched from the drain queue.
    des_dispatched: u64,
    /// Deepest the drain queue has ever been across evaluations.
    des_high_water: u64,
}

impl std::fmt::Debug for VqaRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VqaRunner")
            .field("workload", &self.workload.kind)
            .field("n_qubits", &self.workload.n_qubits())
            .finish()
    }
}

impl VqaRunner {
    /// Compiles `workload` for `config` and builds the system.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] for configuration or compilation failures.
    pub fn new(config: QtenonConfig, workload: Workload) -> Result<Self, SystemError> {
        Self::build(config, workload, None)
    }

    /// Like [`new`](Self::new), but compiles through `cache`: an
    /// identical circuit/layout pair already cached — by this runner or
    /// any other sharing the cache — skips compilation entirely, and
    /// pulse work-item streams are shared per encoded parameter vector.
    /// Hits return byte-identical artefacts to cold compiles, so reports
    /// never depend on cache state.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] for configuration or compilation failures.
    pub fn with_cache(
        config: QtenonConfig,
        workload: Workload,
        cache: Arc<CompilationCache>,
    ) -> Result<Self, SystemError> {
        Self::build(config, workload, Some(cache))
    }

    fn build(
        config: QtenonConfig,
        workload: Workload,
        cache: Option<Arc<CompilationCache>>,
    ) -> Result<Self, SystemError> {
        if workload.n_qubits() != config.n_qubits {
            return Err(SystemError::Config(format!(
                "workload is {}-qubit but system is {}-qubit",
                workload.n_qubits(),
                config.n_qubits
            )));
        }
        let mut compile_cache_activity = CacheActivity::default();
        let (program, cache) = match cache {
            Some(shared) => {
                let cached = shared.compile(config.layout, &workload.circuit)?;
                if cached.is_hit() {
                    compile_cache_activity.program_hits += 1;
                } else {
                    compile_cache_activity.program_misses += 1;
                }
                (
                    Arc::clone(cached.program()),
                    Some(CacheBinding {
                        cache: shared,
                        program: cached,
                    }),
                )
            }
            None => (
                Arc::new(QtenonCompiler::new(config.layout).compile(&workload.circuit)?),
                None,
            ),
        };
        Ok(VqaRunner {
            system: QtenonSystem::new(config)?,
            workload,
            program,
            cache,
            record_cache: false,
            compile_cache_activity,
            run_cache_activity: CacheActivity::default(),
            evaluations: 0,
            iterations: 0,
            eval_latency: Histogram::new(),
            iter_latency: Histogram::new(),
            final_cost: f64::NAN,
            des_scheduled: 0,
            des_dispatched: 0,
            des_high_water: 0,
        })
    }

    /// Enables or disables recording cache activity into
    /// [`RunReport::cache`]. Leave off (the default) whenever the cache
    /// is shared across a worker pool: hit counts then depend on
    /// interleaving, and per-job artefacts must stay byte-identical at
    /// any pool width.
    pub fn set_cache_recording(&mut self, enabled: bool) {
        self.record_cache = enabled;
    }

    /// Cache activity seen by this runner so far (construction compile
    /// plus the most recent run's pulse lookups). All-zero without a
    /// cache.
    pub fn cache_activity(&self) -> CacheActivity {
        let mut a = self.compile_cache_activity;
        a += self.run_cache_activity;
        a
    }

    /// Resolves the pulse work-item stream for `params` — through the
    /// cache when one is attached, generating directly otherwise.
    fn resolve_work_items(
        &mut self,
        params: &[f64],
    ) -> Result<Arc<Vec<(QubitId, GateType, u32)>>, SystemError> {
        match &self.cache {
            Some(binding) => {
                let pulses = binding.cache.work_items(&binding.program, params)?;
                if pulses.is_hit() {
                    self.run_cache_activity.pulse_hits += 1;
                } else {
                    self.run_cache_activity.pulse_misses += 1;
                }
                Ok(Arc::clone(pulses.items()))
            }
            None => Ok(Arc::new(self.program.work_items(params)?)),
        }
    }

    /// Resolves the parameter-bound circuit for `params` — through the
    /// cache when one is attached, binding directly otherwise. Binding
    /// is pure, so both paths produce identical circuits.
    fn resolve_bound(&mut self, params: &[f64]) -> Result<Arc<Circuit>, SystemError> {
        match &self.cache {
            Some(binding) => {
                let bound = binding.cache.bound_circuit(&binding.program, params)?;
                if bound.is_hit() {
                    self.run_cache_activity.bound_hits += 1;
                } else {
                    self.run_cache_activity.bound_misses += 1;
                }
                Ok(Arc::clone(bound.circuit()))
            }
            None => Ok(Arc::new(self.workload.circuit.bind(params)?)),
        }
    }

    /// Enables or disables wall-clock capture in the profiler. Sim-time
    /// spans (and so the phase table) are always collected.
    pub fn set_profiling(&mut self, enabled: bool) {
        self.system.set_profiling(enabled);
    }

    /// The compiled program (for inspection).
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The underlying system (for inspection).
    pub fn system(&self) -> &QtenonSystem {
        &self.system
    }

    /// Registers the full system metric tree plus runner-level
    /// `core.vqa.*` statistics from the most recent [`run`](Self::run).
    pub fn export_metrics(&self, m: &mut MetricsRegistry) {
        self.system.export_metrics(m);
        m.counter("core.vqa.evaluations", self.evaluations);
        m.counter("core.vqa.iterations", self.iterations);
        m.histogram("core.vqa.eval_latency_ns", &self.eval_latency);
        m.histogram("core.vqa.iteration_latency_ns", &self.iter_latency);
        m.gauge("core.vqa.final_cost", self.final_cost);
        m.counter("profile.des.puts_scheduled", self.des_scheduled);
        m.counter("profile.des.puts_dispatched", self.des_dispatched);
        m.counter("profile.des.put_queue_high_water", self.des_high_water);
        // Queue-shape gauges: the registry exports gauges in both JSON
        // and Prometheus, so scrapers see the DES queue shape directly.
        m.gauge("profile.des.high_water", self.des_high_water as f64);
        m.gauge(
            "profile.des.queue_depth",
            self.des_scheduled.saturating_sub(self.des_dispatched) as f64,
        );
    }

    /// Static instruction count of the program text: setup instructions
    /// plus one loop body (Table 1's code-size comparison).
    pub fn static_instructions(&self) -> u64 {
        let setup = self.program.load_instructions(HOST_PROGRAM_ADDR).len()
            + self.program.slots().len()
            + self.program.gen_instructions().len();
        // Loop body: worst-case q_update per slot + q_gen + q_run +
        // q_acquire.
        let body = self.program.slots().len() + 3;
        (setup + body) as u64
    }

    /// Runs `iterations` optimizer iterations at `shots` shots per
    /// evaluation and returns the full report.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] for any component failure.
    pub fn run(
        &mut self,
        optimizer: &mut dyn Optimizer,
        iterations: usize,
        shots: u64,
    ) -> Result<RunReport, SystemError> {
        self.run_with_deadline(optimizer, iterations, shots, None)
            .map(|(report, _)| report)
    }

    /// Like [`run`](Self::run), but stops the optimisation loop at the
    /// first iteration boundary at or past `deadline` (a sim-time budget
    /// measured from the run's t=0, setup included). Returns the report
    /// for the iterations that did complete plus a [`DeadlineStatus`]
    /// saying whether — and how far in — the deadline fired.
    ///
    /// With `deadline == None` this is byte-identical to `run`: the
    /// check never executes and no state differs.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] for any component failure.
    pub fn run_with_deadline(
        &mut self,
        optimizer: &mut dyn Optimizer,
        iterations: usize,
        shots: u64,
        deadline: Option<SimDuration>,
    ) -> Result<(RunReport, DeadlineStatus), SystemError> {
        let config = *self.system.config();
        self.system.cold_reset();
        self.evaluations = 0;
        self.iterations = 0;
        self.eval_latency.reset();
        self.iter_latency.reset();
        self.final_cost = f64::NAN;
        self.des_scheduled = 0;
        self.des_dispatched = 0;
        self.des_high_water = 0;
        self.run_cache_activity = CacheActivity::default();
        let phases = VqaPhases::intern(self.system.profiler_mut());
        // Root the causal chain at t=0: every subsequent op hangs its
        // provenance node off the previous chain head.
        self.system.critpath_mut().open_at(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut breakdown = TimeBreakdown::default();
        let mut host_ops_total = OpCounter::new();
        let mut pulses_generated = 0u64;
        let mut pulse_work_items = 0u64;
        let mut cost_history = Vec::with_capacity(iterations);

        let mut params = self.workload.initial_params.clone();

        // --- Setup: load program, bind registers, cold pulse generation.
        {
            // Host-side compile effort (one-time, proportional to size).
            let mut ops = OpCounter::new();
            ops.record(OpClass::IntAlu, 25 * self.program.total_entries());
            ops.record(OpClass::Mem, 12 * self.program.total_entries());
            ops.record(OpClass::Branch, 4 * self.program.total_entries());
            let d = self.system.host().duration_for(&ops);
            host_ops_total += ops;
            breakdown.host += d;
            self.system.profiler_mut().record(phases.compile_patch, d);
            now += d;
            self.system.critpath_host_segment(now);

            let upload_start = now;
            let comm_before = self.system.comm().total();
            for (chunk_idx, instr) in self
                .program
                .load_instructions(HOST_PROGRAM_ADDR)
                .into_iter()
                .enumerate()
            {
                if let Instruction::QSet {
                    classical_addr,
                    qaddr,
                    ..
                } = instr
                {
                    // Find the chunk this q_set came from (chunks in order
                    // of non-empty qubits).
                    let entries = self
                        .program
                        .chunks()
                        .iter()
                        .filter(|c| !c.is_empty())
                        .nth(chunk_idx)
                        .expect("instruction per non-empty chunk");
                    now = self
                        .system
                        .q_set_program(now, classical_addr, qaddr, entries)?;
                }
            }
            for instr in self.program.bind_instructions(&params)? {
                if let Instruction::QUpdate { qaddr, value } = instr {
                    now = self.system.q_update(now, qaddr, value)?;
                }
            }
            breakdown.communication += self.system.comm().total() - comm_before;
            self.system
                .profiler_mut()
                .span(phases.upload, upload_start, now);

            let items = self.resolve_work_items(&params)?;
            pulse_work_items += items.len() as u64;
            let (report, gen_done) = self.system.q_gen(now, &items)?;
            pulses_generated += report.generated;
            breakdown.pulse_generation += report.total_time;
            self.system
                .profiler_mut()
                .record(phases.pulse_gen, report.total_time);
            now = gen_done;
            self.system
                .profiler_mut()
                .span(phases.setup, SimTime::ZERO, now);
            self.system
                .trace_phase("vqa.setup", SimTime::ZERO, now.elapsed());
        }

        // --- Optimisation loop.
        let mut loaded_params = params.clone();
        let mut deadline_hit = false;
        for _iter in 0..iterations {
            // Cooperative deadline: checked only at iteration boundaries,
            // so partial progress is always a whole number of iterations
            // and the surviving report is the one a shorter run yields.
            if let Some(budget) = deadline {
                if now.elapsed() >= budget {
                    deadline_hit = true;
                    break;
                }
            }
            let iter_start = now;
            let plan = optimizer.iteration_plan(&params);
            let mut evals = Vec::with_capacity(plan.len());
            for eval_params in &plan {
                let (cost, t) = self.evaluate(
                    &config,
                    now,
                    &loaded_params,
                    eval_params,
                    shots,
                    phases,
                    &mut breakdown,
                    &mut host_ops_total,
                    &mut pulses_generated,
                    &mut pulse_work_items,
                )?;
                loaded_params.clone_from(eval_params);
                evals.push(cost);
                self.eval_latency
                    .record(t.saturating_since(now).as_ps() / 1_000);
                self.evaluations += 1;
                now = t;
            }
            // Optimizer update on the host.
            let mut ops = OpCounter::new();
            params = optimizer.update(&params, &plan, &evals, &mut ops);
            let d = self.system.host().duration_for(&ops);
            host_ops_total += ops;
            breakdown.host += d;
            self.system.profiler_mut().record(phases.optimizer_step, d);
            self.system.trace_phase("vqa.optimizer_step", now, d);
            now += d;
            self.system.critpath_host_segment(now);
            let mean = evals.iter().sum::<f64>() / evals.len().max(1) as f64;
            cost_history.push(mean);
            self.iter_latency
                .record(now.saturating_since(iter_start).as_ps() / 1_000);
            self.iterations += 1;
        }

        let comm = self.system.comm();
        breakdown.communication = comm.total();
        let host_cycles = self.system.host().cycles_for(&host_ops_total);
        let final_cost = cost_history.last().copied().unwrap_or(f64::NAN);
        self.final_cost = final_cost;
        // Paint the finished chain into the trace (no-op when off).
        self.system.trace_critpath();
        let status = DeadlineStatus {
            hit: deadline_hit,
            completed_iterations: self.iterations as usize,
            requested_iterations: iterations,
        };
        let report = RunReport {
            total: now.elapsed(),
            breakdown,
            comm,
            dynamic_instructions: self.system.dynamic_instructions(),
            static_instructions: self.static_instructions(),
            pulses_generated,
            slt: self.system.slt_stats(),
            host_cycles,
            cost_history,
            final_cost,
            pulse_reduction: if pulse_work_items == 0 {
                0.0
            } else {
                1.0 - pulses_generated as f64 / pulse_work_items as f64
            },
            resilience: self.system.resilience(),
            phases: self.system.phase_table(),
            critpath: self.system.critpath_report(),
            cache: if self.record_cache {
                self.cache_activity()
            } else {
                CacheActivity::default()
            },
        };
        Ok((report, status))
    }

    /// One circuit evaluation: incremental update → pulse generation →
    /// run with transmission/post-processing per the configured policies.
    #[allow(clippy::too_many_arguments)]
    fn evaluate(
        &mut self,
        config: &QtenonConfig,
        start: SimTime,
        loaded_params: &[f64],
        eval_params: &[f64],
        shots: u64,
        phases: VqaPhases,
        breakdown: &mut TimeBreakdown,
        host_ops_total: &mut OpCounter,
        pulses_generated: &mut u64,
        pulse_work_items: &mut u64,
    ) -> Result<(f64, SimTime), SystemError> {
        let mut now = start;

        // 1. Incremental compilation: diff on the host, minimal q_updates.
        let diff = ParameterDiff::between(&self.program, loaded_params, eval_params)?;
        {
            let mut ops = OpCounter::new();
            let slots = self.program.slots().len() as u64;
            ops.record(OpClass::FpAlu, 2 * slots);
            ops.record(OpClass::Mem, 3 * slots);
            ops.record(OpClass::Branch, slots);
            let d = self.system.host().duration_for(&ops);
            *host_ops_total += ops;
            breakdown.host += d;
            self.system.profiler_mut().record(phases.compile_patch, d);
            self.system.trace_phase("vqa.compile_patch", now, d);
            now += d;
            self.system.critpath_host_segment(now);
        }
        let upload_start = now;
        for instr in diff.update_instructions(&self.program)? {
            if let Instruction::QUpdate { qaddr, value } = instr {
                now = self.system.q_update(now, qaddr, value)?;
            }
        }
        self.system
            .profiler_mut()
            .span(phases.upload, upload_start, now);

        // 2. Pulse generation: the SLT skips everything unchanged.
        let items = self.resolve_work_items(eval_params)?;
        *pulse_work_items += items.len() as u64;
        let (gen_report, gen_done) = self.system.q_gen(now, &items)?;
        *pulses_generated += gen_report.generated;
        breakdown.pulse_generation += gen_report.total_time;
        self.system
            .profiler_mut()
            .record(phases.pulse_gen, gen_report.total_time);
        self.system
            .trace_phase("vqa.pulse_gen", now, gen_report.total_time);
        now = gen_done;

        // 3. Quantum run.
        let bound = self.resolve_bound(eval_params)?;
        let run_start = now;
        let outcome = self.system.q_run(now, &bound, shots)?;
        let quantum = outcome.complete.saturating_since(run_start);
        breakdown.quantum += quantum;
        self.system
            .profiler_mut()
            .record(phases.quantum_execute, quantum);
        self.system
            .trace_phase("vqa.quantum_execute", run_start, quantum);

        let host = self.system.host();
        let h = self.workload.hamiltonian.clone();

        let (cost, end) = match config.sync {
            SyncMode::Fence => {
                // Fig. 9a: run → FENCE → q_acquire → FENCE → post-process.
                let words_per_shot = (config.n_qubits as u64).div_ceil(64);
                let measure_base = config.layout.measure_entry(0)?;
                let (_, acq_done) = self.system.q_acquire(
                    outcome.complete,
                    measure_base,
                    (shots * words_per_shot).min(config.layout.measure_entries()),
                    HOST_RESULT_ADDR,
                )?;
                let drain = acq_done.saturating_since(outcome.complete);
                self.system
                    .profiler_mut()
                    .record(phases.readout_drain, drain);
                self.system
                    .trace_phase("vqa.readout_drain", outcome.complete, drain);
                let mut ops = OpCounter::new();
                let cost = evaluate_cost(&h, &outcome.shots, &mut ops);
                batch_overhead_ops(&mut ops);
                let d = host.duration_for(&ops);
                *host_ops_total += ops;
                breakdown.host += d;
                self.system.profiler_mut().record(phases.host_post, d);
                self.system.critpath_host_segment(acq_done + d);
                (cost, acq_done + d)
            }
            SyncMode::FineGrained => {
                // Fig. 9b: PUTs stream per Algorithm 1; the host consumes
                // each batch as its barrier entry goes valid, folding
                // completed shots into the bit-sliced cost evaluator one
                // 64-shot block at a time.
                let plan = TransmissionPlan::new(
                    config.transmission,
                    config.n_qubits,
                    config.bus.width_bits,
                    shots,
                );
                let overlap = config.transmission == TransmissionPolicy::Batched;
                let evaluator = CostEvaluator::new(&h);
                let first_shot_at = run_start + config.adi.interface_latency;
                let mut host_free = run_start;
                let mut value_sum = 0.0;
                let mut addr = HOST_RESULT_ADDR;
                let mut flushed = 0usize;
                let mut arrived = 0usize;
                // The controller's PUTs are discrete events: schedule each
                // batch at the time its last shot finishes and drain the
                // queue in timestamp order. Ready times are monotone in
                // batch order, so the drain is behaviourally identical to
                // the direct loop while exercising (and instrumenting) the
                // DES event path.
                let mut puts: EventQueue<TransmissionBatch> = EventQueue::new();
                for batch in plan.batches() {
                    let ready =
                        first_shot_at + outcome.shot_duration * (batch.first_shot + batch.shots);
                    puts.push(ready, *batch);
                }
                while let Some((ready, batch)) = puts.pop() {
                    let put_done = self.system.put_results(ready, addr, batch.bytes)?;
                    addr += batch.bytes;
                    // Per-PUT host wake: barrier query + buffer
                    // bookkeeping, plus any full blocks now evaluable.
                    let mut ops = OpCounter::new();
                    batch_overhead_ops(&mut ops);
                    arrived = (batch.first_shot + batch.shots) as usize;
                    while arrived - flushed >= BLOCK_SHOTS {
                        let block = &outcome.shots[flushed..flushed + BLOCK_SHOTS];
                        value_sum += evaluator.block_value_sum(block, &mut ops);
                        flushed += BLOCK_SHOTS;
                    }
                    let d = host.duration_for(&ops);
                    *host_ops_total += ops;
                    breakdown.host += d;
                    self.system.profiler_mut().record(phases.host_post, d);
                    if overlap {
                        host_free = host_free.max(put_done) + d;
                    } else {
                        // Without the scheduling algorithm the host only
                        // starts consuming after the whole run completes.
                        host_free = host_free.max(outcome.complete).max(put_done) + d;
                    }
                }
                self.des_scheduled += puts.pushed();
                self.des_dispatched += puts.popped();
                self.des_high_water = self.des_high_water.max(puts.high_water() as u64);
                // Tail block after the final PUT.
                if flushed < arrived {
                    let mut ops = OpCounter::new();
                    value_sum +=
                        evaluator.block_value_sum(&outcome.shots[flushed..arrived], &mut ops);
                    let d = host.duration_for(&ops);
                    *host_ops_total += ops;
                    breakdown.host += d;
                    self.system.profiler_mut().record(phases.host_post, d);
                    host_free += d;
                }
                let cost = if shots == 0 {
                    h.constant()
                } else {
                    h.constant() + value_sum / shots as f64
                };
                // The exposed drain tail: host consumption that was not
                // hidden behind quantum execution (zero when overlapped).
                let drain = host_free.saturating_since(outcome.complete);
                self.system
                    .profiler_mut()
                    .record(phases.readout_drain, drain);
                self.system
                    .trace_phase("vqa.readout_drain", outcome.complete, drain);
                // The host's exposed consumption tail (zero when fully
                // overlapped — the clamp keeps the chain monotone).
                self.system
                    .critpath_host_segment(outcome.complete.max(host_free));
                (cost, outcome.complete.max(host_free))
            }
        };
        Ok((cost, end))
    }

    /// Convenience wrapper: exact shot-free cost of the workload at given
    /// parameters (used by tests to verify optimisation progress).
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Quantum`] for simulation failures.
    pub fn reference_cost(&mut self, params: &[f64]) -> Result<f64, SystemError> {
        let bound = self.workload.circuit.bind(params)?;
        let mut sim = qtenon_quantum::sim::Simulator::auto(self.workload.n_qubits(), 1234);
        let shots = sim.run(&bound, 2000)?;
        Ok(self.workload.hamiltonian.expectation_from_shots(&shots))
    }
}

/// Collects measurement words back into bitstrings (the host-side inverse
/// of the controller's `.measure` packing). Exposed for tests and
/// examples that drive the raw ISA path.
pub fn unpack_measurements(words: &[u64], n_qubits: u32, shots: u64) -> Vec<BitString> {
    let words_per_shot = (n_qubits as u64).div_ceil(64) as usize;
    (0..shots as usize)
        .map(|s| {
            let mut bits = BitString::zeros(n_qubits);
            for w in 0..words_per_shot {
                let word = words.get(s * words_per_shot + w).copied().unwrap_or(0);
                for b in 0..64u32 {
                    let idx = w as u32 * 64 + b;
                    if idx < n_qubits && (word >> b) & 1 == 1 {
                        bits.set(idx, true);
                    }
                }
            }
            bits
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreModel;
    use qtenon_sim_engine::SimDuration;
    use qtenon_workloads::{GradientDescentOptimizer, SpsaOptimizer};

    fn runner(n: u32, kind: qtenon_workloads::WorkloadKind) -> VqaRunner {
        let config = QtenonConfig::table4(n, CoreModel::Rocket).unwrap();
        let workload = Workload::benchmark(kind, n, 11).unwrap();
        VqaRunner::new(config, workload).unwrap()
    }

    #[test]
    fn qaoa_run_produces_consistent_report() {
        let mut r = runner(8, qtenon_workloads::WorkloadKind::Qaoa);
        let mut opt = SpsaOptimizer::new(5);
        let report = r.run(&mut opt, 3, 100).unwrap();
        assert!(report.total > SimDuration::ZERO);
        assert_eq!(report.cost_history.len(), 3);
        // Busy times fit within or around the wall time sanely.
        assert!(report.breakdown.quantum > SimDuration::ZERO);
        assert!(report.breakdown.host > SimDuration::ZERO);
        assert!(report.pulses_generated > 0);
        assert!(report.pulse_reduction > 0.0 && report.pulse_reduction < 1.0);
        assert!(report.dynamic_instructions > 0);
        assert!(report.static_instructions < report.dynamic_instructions);
        // The attribution table covers both VQA-level and system-level
        // phases, and quantum execution dominates it.
        for phase in [
            "vqa.setup",
            "vqa.compile_patch",
            "vqa.upload",
            "vqa.pulse_gen",
            "vqa.quantum_execute",
            "vqa.readout_drain",
            "vqa.host_post",
            "vqa.optimizer_step",
            "controller.slt_resolve",
            "chip.execute",
        ] {
            assert!(report.phases.row(phase).is_some(), "missing {phase}");
        }
        let quantum = report.phases.row("vqa.quantum_execute").unwrap();
        assert_eq!(quantum.count, 3 * 2); // iterations × SPSA ± evaluations
        assert_eq!(
            quantum.total_ns,
            report.breakdown.quantum.as_ps() / 1_000,
            "phase table must agree with the breakdown"
        );
    }

    #[test]
    fn gd_reduction_exceeds_spsa_reduction() {
        // Table 5: GD's single-parameter steps leave far more pulses
        // cached than SPSA's all-parameter perturbations.
        let mut r1 = runner(8, qtenon_workloads::WorkloadKind::Qaoa);
        let gd_report = r1
            .run(&mut GradientDescentOptimizer::new(0.05), 2, 50)
            .unwrap();
        let mut r2 = runner(8, qtenon_workloads::WorkloadKind::Qaoa);
        let spsa_report = r2.run(&mut SpsaOptimizer::new(5), 2, 50).unwrap();
        assert!(
            gd_report.pulse_reduction > spsa_report.pulse_reduction,
            "gd={} spsa={}",
            gd_report.pulse_reduction,
            spsa_report.pulse_reduction
        );
    }

    #[test]
    fn fine_grained_beats_fence_end_to_end() {
        let workload = Workload::benchmark(qtenon_workloads::WorkloadKind::Vqe, 8, 3).unwrap();
        let fine_cfg = QtenonConfig::table4(8, CoreModel::Rocket).unwrap();
        let fence_cfg = fine_cfg.with_sync(SyncMode::Fence);
        let fine = VqaRunner::new(fine_cfg, workload.clone())
            .unwrap()
            .run(&mut SpsaOptimizer::new(1), 2, 100)
            .unwrap();
        let fence = VqaRunner::new(fence_cfg, workload)
            .unwrap()
            .run(&mut SpsaOptimizer::new(1), 2, 100)
            .unwrap();
        assert!(
            fence.total > fine.total,
            "fence {} !> fine {}",
            fence.total,
            fine.total
        );
        // Transmission/classical tail shrinks under fine-grained sync.
        assert!(fence.classical_time() > fine.classical_time());
    }

    #[test]
    fn batched_beats_immediate_classical_time() {
        let workload = Workload::benchmark(qtenon_workloads::WorkloadKind::Qaoa, 8, 3).unwrap();
        let batched_cfg = QtenonConfig::table4(8, CoreModel::Rocket).unwrap();
        let imm_cfg = batched_cfg.with_transmission(TransmissionPolicy::Immediate);
        let batched = VqaRunner::new(batched_cfg, workload.clone())
            .unwrap()
            .run(&mut SpsaOptimizer::new(1), 2, 100)
            .unwrap();
        let immediate = VqaRunner::new(imm_cfg, workload)
            .unwrap()
            .run(&mut SpsaOptimizer::new(1), 2, 100)
            .unwrap();
        assert!(
            immediate.classical_time() > batched.classical_time(),
            "immediate {} !> batched {}",
            immediate.classical_time(),
            batched.classical_time()
        );
    }

    #[test]
    fn quantum_dominates_under_fine_grained_sync() {
        // Fig. 13c: with the full software stack the quantum share is
        // large. At small sizes the exact number differs; require > 50 %.
        let mut r = runner(8, qtenon_workloads::WorkloadKind::Vqe);
        let report = r.run(&mut SpsaOptimizer::new(2), 3, 200).unwrap();
        let share = report.breakdown.quantum.fraction_of(report.total);
        assert!(share > 0.5, "quantum share {share}");
    }

    #[test]
    fn comm_is_negligible_fraction() {
        // Fig. 13c: quantum-host communication ≈ 0.03 % on Qtenon.
        let mut r = runner(8, qtenon_workloads::WorkloadKind::Qaoa);
        let report = r.run(&mut SpsaOptimizer::new(2), 3, 200).unwrap();
        let share = report.comm.total().fraction_of(report.total);
        assert!(share < 0.1, "comm share {share}");
    }

    #[test]
    fn width_mismatch_rejected() {
        let config = QtenonConfig::table4(16, CoreModel::Rocket).unwrap();
        let workload = Workload::benchmark(qtenon_workloads::WorkloadKind::Qaoa, 8, 0).unwrap();
        assert!(VqaRunner::new(config, workload).is_err());
    }

    #[test]
    fn unpack_measurements_round_trip() {
        let words = vec![0b101u64, 0, u64::MAX, 1];
        let shots = unpack_measurements(&words, 70, 2);
        assert_eq!(shots.len(), 2);
        assert!(shots[0].get(0) && !shots[0].get(1) && shots[0].get(2));
        assert!(!shots[0].get(64));
        assert!(shots[1].get(0) && shots[1].get(63) && shots[1].get(64));
        assert!(!shots[1].get(65));
    }

    #[test]
    fn runner_metrics_cover_run_statistics() {
        use qtenon_sim_engine::{MetricValue, MetricsRegistry};

        let mut r = runner(8, qtenon_workloads::WorkloadKind::Qaoa);
        r.run(&mut SpsaOptimizer::new(3), 2, 50).unwrap();
        let mut m = MetricsRegistry::new();
        r.export_metrics(&mut m);
        assert!(m.len() >= 20, "only {} metrics exported", m.len());
        assert_eq!(m.get("core.vqa.iterations"), Some(&MetricValue::Counter(2)));
        match m.get("core.vqa.eval_latency_ns") {
            Some(MetricValue::Histogram(h)) => {
                assert!(h.count() > 0);
                assert!(h.p50() <= h.p99());
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        match m.get("core.vqa.final_cost") {
            Some(MetricValue::Gauge(g)) => assert!(g.is_finite()),
            other => panic!("expected gauge, got {other:?}"),
        }
    }

    #[test]
    fn zero_rate_fault_plan_does_not_perturb_the_run() {
        use qtenon_sim_engine::FaultPlan;
        let workload = Workload::benchmark(qtenon_workloads::WorkloadKind::Qaoa, 8, 3).unwrap();
        let base_cfg = QtenonConfig::table4(8, CoreModel::Rocket).unwrap();
        // A plan with a seed but all-zero rates must be behaviourally
        // invisible: identical report, no resilience activity.
        let zeroed_cfg = base_cfg.with_faults(FaultPlan::default().with_seed(99));
        let base = VqaRunner::new(base_cfg, workload.clone())
            .unwrap()
            .run(&mut SpsaOptimizer::new(1), 2, 50)
            .unwrap();
        let zeroed = VqaRunner::new(zeroed_cfg, workload)
            .unwrap()
            .run(&mut SpsaOptimizer::new(1), 2, 50)
            .unwrap();
        assert_eq!(base, zeroed);
        assert!(zeroed.resilience.is_zero());
    }

    #[test]
    fn faulty_vqa_survives_and_reproduces() {
        use qtenon_sim_engine::FaultPlan;
        let run = || {
            let plan = FaultPlan::all(0.02).with_seed(0xFA17);
            let config = QtenonConfig::table4(8, CoreModel::Rocket)
                .unwrap()
                .with_faults(plan);
            let workload = Workload::benchmark(qtenon_workloads::WorkloadKind::Vqe, 8, 7).unwrap();
            VqaRunner::new(config, workload)
                .unwrap()
                .run(&mut SpsaOptimizer::new(3), 2, 100)
                .unwrap()
        };
        let a = run();
        // Graceful degradation: the run completes despite injected faults
        // and reports what it absorbed.
        assert!(a.resilience.faults_injected > 0, "{:?}", a.resilience);
        assert!(a.resilience.total_retries() > 0, "{:?}", a.resilience);
        assert!(a.total > SimDuration::ZERO);
        // Same seed, same plan → bit-identical outcome.
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn deadline_cuts_the_loop_at_an_iteration_boundary() {
        // Measure a full run, then re-run with a budget that only covers
        // part of it: the truncated run must equal a shorter run exactly.
        let mut probe = runner(8, qtenon_workloads::WorkloadKind::Qaoa);
        let full = probe.run(&mut SpsaOptimizer::new(5), 4, 100).unwrap();
        assert_eq!(full.cost_history.len(), 4);

        // Budget past iteration 2 but short of iteration 4.
        let two_iters = {
            let mut r = runner(8, qtenon_workloads::WorkloadKind::Qaoa);
            r.run(&mut SpsaOptimizer::new(5), 2, 100).unwrap()
        };
        let budget = SimDuration::from_ns(two_iters.total.as_ps() / 1_000 + 1);
        assert!(budget < full.total);
        let mut r = runner(8, qtenon_workloads::WorkloadKind::Qaoa);
        let (partial, status) = r
            .run_with_deadline(&mut SpsaOptimizer::new(5), 4, 100, Some(budget))
            .unwrap();
        assert!(status.hit);
        assert_eq!(status.requested_iterations, 4);
        assert!(
            status.completed_iterations >= 1 && status.completed_iterations < 4,
            "{status:?}"
        );
        assert_eq!(partial.cost_history.len(), status.completed_iterations);
        // The partial report is exactly what a shorter run produces —
        // the deadline never tears an iteration.
        let mut short = runner(8, qtenon_workloads::WorkloadKind::Qaoa);
        let reference = short
            .run(&mut SpsaOptimizer::new(5), status.completed_iterations, 100)
            .unwrap();
        assert_eq!(partial, reference);
    }

    #[test]
    fn no_deadline_is_byte_identical_to_run() {
        let mut a = runner(8, qtenon_workloads::WorkloadKind::Vqe);
        let ra = a.run(&mut SpsaOptimizer::new(3), 2, 50).unwrap();
        let mut b = runner(8, qtenon_workloads::WorkloadKind::Vqe);
        let (rb, status) = b
            .run_with_deadline(&mut SpsaOptimizer::new(3), 2, 50, None)
            .unwrap();
        assert_eq!(ra, rb);
        assert_eq!(status, DeadlineStatus::completed(2));
    }

    #[test]
    fn generous_deadline_never_fires() {
        let mut r = runner(8, qtenon_workloads::WorkloadKind::Qaoa);
        let (report, status) = r
            .run_with_deadline(
                &mut SpsaOptimizer::new(3),
                2,
                50,
                Some(SimDuration::from_ns(u64::MAX / 10_000)),
            )
            .unwrap();
        assert!(!status.hit);
        assert_eq!(status.completed_iterations, 2);
        assert_eq!(report.cost_history.len(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = runner(8, qtenon_workloads::WorkloadKind::Qnn);
        let mut b = runner(8, qtenon_workloads::WorkloadKind::Qnn);
        let ra = a.run(&mut SpsaOptimizer::new(9), 2, 50).unwrap();
        let rb = b.run(&mut SpsaOptimizer::new(9), 2, 50).unwrap();
        assert_eq!(ra.total, rb.total);
        assert_eq!(ra.cost_history, rb.cost_history);
    }
}
