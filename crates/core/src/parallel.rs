//! Shot-shard planning and scoped fan-out for the parallel execution
//! engine.
//!
//! A run of `shots` measurement shots is cut into contiguous
//! [`Shard`]s, one per worker thread. Because every shot owns an RNG
//! stream derived purely from `(seed, global shot index)` (see
//! [`qtenon_sim_engine::rng::stream_seed`]), a worker needs nothing from
//! its neighbours: shard results concatenated in canonical shard order
//! are bitwise identical to the serial run, at any thread count. The
//! merge rules live with the data being merged — counters sum,
//! histograms bucket-merge, reports reduce — and DESIGN.md §"Parallel
//! execution model" spells out why the order must stay canonical.
//!
//! # Examples
//!
//! ```
//! use qtenon_core::parallel::{run_sharded, ShardPlan};
//!
//! let plan = ShardPlan::new(1000, 4);
//! let partials = run_sharded(&plan, |shard| {
//!     (shard.first_shot..shard.first_shot + shard.shots).sum::<u64>()
//! });
//! // Canonical order: partials[i] came from plan.shards()[i].
//! assert_eq!(partials.iter().sum::<u64>(), (0..1000).sum());
//! ```

/// One worker's contiguous slice of a run's shot range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Position in the canonical merge order.
    pub index: usize,
    /// First run-relative shot index owned by this shard.
    pub first_shot: u64,
    /// Number of shots in this shard.
    pub shots: u64,
}

/// Fewest shots worth handing to an extra worker thread: below this the
/// spawn/join overhead dwarfs the sampling work, so the planner degrades
/// toward fewer shards. Purely a performance knob — determinism never
/// depends on the shard count.
pub const MIN_SHOTS_PER_SHARD: u64 = 16;

/// A contiguous partition of `0..shots` into at most `threads` shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Plans at most `threads` contiguous shards over `shots` shots.
    ///
    /// Shard sizes differ by at most one (earlier shards take the
    /// remainder), every shot is covered exactly once, and runs too
    /// small to amortise thread spawns collapse to fewer shards —
    /// ultimately one, which [`run_sharded`] executes inline.
    pub fn new(shots: u64, threads: usize) -> Self {
        let workers = (threads.max(1) as u64)
            .min(shots / MIN_SHOTS_PER_SHARD)
            .max(1);
        let base = shots / workers;
        let remainder = shots % workers;
        let mut shards = Vec::with_capacity(workers as usize);
        let mut first_shot = 0u64;
        for index in 0..workers {
            let size = base + u64::from(index < remainder);
            shards.push(Shard {
                index: index as usize,
                first_shot,
                shots: size,
            });
            first_shot += size;
        }
        ShardPlan { shards }
    }

    /// The shards in canonical (shot-range) order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Total shots covered by the plan.
    pub fn total_shots(&self) -> u64 {
        self.shards.iter().map(|s| s.shots).sum()
    }

    /// Whether the plan covers zero shots. A plan always holds at least
    /// one shard (so the serial path has something to run inline), but a
    /// zero-shot plan does no sampling work and callers may skip it.
    pub fn is_empty(&self) -> bool {
        self.total_shots() == 0
    }

    /// Whether the plan degenerates to inline serial execution.
    pub fn is_serial(&self) -> bool {
        self.shards.len() == 1
    }
}

/// Runs `worker` over every shard of `plan` and returns the results in
/// canonical shard order.
///
/// A one-shard plan runs inline on the calling thread — the serial path
/// is literally the parallel path with one shard, not separate code.
/// Multi-shard plans fan out across [`std::thread::scope`] workers; the
/// scope joins every worker before returning, and results are collected
/// by shard index, so callers can fold them left-to-right and rely on
/// the canonical merge order.
///
/// # Panics
///
/// Re-raises a panic from any worker — with its original payload, via
/// [`std::panic::resume_unwind`] — after all workers have stopped, so a
/// failing shard reports the real message and location instead of a
/// generic join error.
pub fn run_sharded<T, F>(plan: &ShardPlan, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Shard) -> T + Sync,
{
    if plan.is_serial() {
        return vec![worker(&plan.shards[0])];
    }
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = plan
            .shards
            .iter()
            .map(|shard| scope.spawn(move || worker(shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(value) => value,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_covers_exactly_once(plan: &ShardPlan, shots: u64) {
        let mut next = 0u64;
        for (i, shard) in plan.shards().iter().enumerate() {
            assert_eq!(shard.index, i);
            assert_eq!(shard.first_shot, next, "gap or overlap at shard {i}");
            next += shard.shots;
        }
        assert_eq!(next, shots, "plan does not cover the shot range");
    }

    #[test]
    fn plans_cover_the_range_for_many_shapes() {
        for shots in [0u64, 1, 15, 16, 17, 63, 64, 100, 500, 2000, 2001] {
            for threads in [1usize, 2, 3, 4, 7, 8, 64] {
                let plan = ShardPlan::new(shots, threads);
                assert!(plan.len() <= threads.max(1));
                assert_covers_exactly_once(&plan, shots);
            }
        }
    }

    #[test]
    fn tiny_runs_stay_serial() {
        assert!(ShardPlan::new(0, 8).is_serial());
        assert!(ShardPlan::new(MIN_SHOTS_PER_SHARD - 1, 8).is_serial());
        assert!(!ShardPlan::new(MIN_SHOTS_PER_SHARD * 4, 4).is_serial());
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        let plan = ShardPlan::new(1003, 4);
        let sizes: Vec<u64> = plan.shards().iter().map(|s| s.shots).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
        assert_eq!(sizes.iter().sum::<u64>(), 1003);
    }

    #[test]
    fn run_sharded_preserves_canonical_order() {
        let plan = ShardPlan::new(640, 4);
        assert_eq!(plan.len(), 4);
        let results = run_sharded(&plan, |shard| shard.first_shot);
        let expected: Vec<u64> = plan.shards().iter().map(|s| s.first_shot).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn run_sharded_inline_for_one_shard() {
        let plan = ShardPlan::new(5, 8);
        let caller = std::thread::current().id();
        let results = run_sharded(&plan, |_| std::thread::current().id());
        assert_eq!(results, vec![caller]);
    }

    #[test]
    fn zero_shot_plan_reports_empty() {
        for threads in [1usize, 2, 8, 64] {
            let plan = ShardPlan::new(0, threads);
            assert!(plan.is_empty(), "0-shot plan at {threads} threads");
            assert_eq!(plan.total_shots(), 0);
            // The len/is_empty contract: a non-empty plan is never empty.
            assert!(!ShardPlan::new(100, threads).is_empty());
            assert_eq!(ShardPlan::new(100, threads).total_shots(), 100);
        }
    }

    #[test]
    #[should_panic(expected = "shard 2 exploded")]
    fn run_sharded_surfaces_original_panic_payload() {
        // 4 real shards; shard 2 panics with a distinctive payload that
        // must survive the join instead of being replaced by a generic
        // "shard worker panicked" message.
        let plan = ShardPlan::new(MIN_SHOTS_PER_SHARD * 4, 4);
        assert_eq!(plan.len(), 4);
        run_sharded(&plan, |shard| {
            if shard.index == 2 {
                panic!("shard {} exploded", shard.index);
            }
            shard.shots
        });
    }
}
