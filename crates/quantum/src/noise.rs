//! NISQ noise models for the sampling backends.
//!
//! The paper targets Noisy Intermediate-Scale Quantum devices; while its
//! *timing* evaluation uses noiseless simulator data, a downstream user of
//! this library will want realistic measurement statistics. [`NoiseModel`]
//! provides the two dominant superconducting-qubit error channels in
//! sampled form:
//!
//! - **depolarizing gate error**: after each gate, each involved qubit's
//!   state is replaced by the maximally mixed state with probability `p`
//!   (applied here as a Bloch-vector shrink, exact for the mean-field
//!   backend and a standard approximation for sampled exact states);
//! - **readout error**: each measured bit flips with an asymmetric
//!   probability (`p01` for reading 1 as 0, `p10` for 0 as 1).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bits::BitString;

/// A simple NISQ noise description.
///
/// # Examples
///
/// ```
/// use qtenon_quantum::noise::NoiseModel;
///
/// let noise = NoiseModel::typical_superconducting();
/// assert!(noise.readout_p10 > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Depolarizing probability per single-qubit gate.
    pub depolarizing_1q: f64,
    /// Depolarizing probability per two-qubit gate (per qubit).
    pub depolarizing_2q: f64,
    /// Probability of reading a |1⟩ as 0.
    pub readout_p01: f64,
    /// Probability of reading a |0⟩ as 1.
    pub readout_p10: f64,
}

impl NoiseModel {
    /// A noiseless model.
    pub const NONE: NoiseModel = NoiseModel {
        depolarizing_1q: 0.0,
        depolarizing_2q: 0.0,
        readout_p01: 0.0,
        readout_p10: 0.0,
    };

    /// Error rates typical of current superconducting devices
    /// (≈0.1 % 1q, ≈1 % 2q, ≈2 % asymmetric readout).
    pub fn typical_superconducting() -> Self {
        NoiseModel {
            depolarizing_1q: 0.001,
            depolarizing_2q: 0.01,
            readout_p01: 0.03,
            readout_p10: 0.015,
        }
    }

    /// Returns `true` if every channel is zero.
    pub fn is_noiseless(&self) -> bool {
        *self == NoiseModel::NONE
    }

    /// The Bloch-vector shrink factor for a depolarizing channel of
    /// strength `p`: the vector scales by `1 − p` (the channel mixes in
    /// the maximally mixed state).
    pub fn shrink_1q(&self) -> f64 {
        1.0 - self.depolarizing_1q
    }

    /// Shrink factor per qubit for two-qubit gates.
    pub fn shrink_2q(&self) -> f64 {
        1.0 - self.depolarizing_2q
    }

    /// Applies readout error to one measured bitstring in place.
    pub fn corrupt_readout<R: Rng>(&self, bits: &mut BitString, rng: &mut R) {
        if self.readout_p01 == 0.0 && self.readout_p10 == 0.0 {
            return;
        }
        for i in 0..bits.len() {
            let value = bits.get(i);
            let flip_p = if value {
                self.readout_p01
            } else {
                self.readout_p10
            };
            if flip_p > 0.0 && rng.gen::<f64>() < flip_p {
                bits.set(i, !value);
            }
        }
    }

    /// The asymptotic ⟨Z⟩ attenuation caused by readout error alone:
    /// an ideal expectation `z` is observed as
    /// `readout_scale() · z + readout_offset()`.
    pub fn readout_scale(&self) -> f64 {
        1.0 - self.readout_p01 - self.readout_p10
    }

    /// See [`NoiseModel::readout_scale`].
    pub fn readout_offset(&self) -> f64 {
        self.readout_p01 - self.readout_p10
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_noiseless() {
        assert!(NoiseModel::NONE.is_noiseless());
        assert!(!NoiseModel::typical_superconducting().is_noiseless());
        assert_eq!(NoiseModel::default(), NoiseModel::NONE);
    }

    #[test]
    fn noiseless_readout_is_identity() {
        let mut bits = BitString::from_u64(0b1010, 4);
        let before = bits.clone();
        NoiseModel::NONE.corrupt_readout(&mut bits, &mut StdRng::seed_from_u64(1));
        assert_eq!(bits, before);
    }

    #[test]
    fn readout_flip_rates_are_respected() {
        let noise = NoiseModel {
            readout_p01: 0.5,
            readout_p10: 0.1,
            ..NoiseModel::NONE
        };
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 20_000;
        let mut ones_lost = 0;
        let mut zeros_flipped = 0;
        for _ in 0..trials {
            let mut bits = BitString::from_u64(0b01, 2); // bit0 = 1, bit1 = 0
            noise.corrupt_readout(&mut bits, &mut rng);
            if !bits.get(0) {
                ones_lost += 1;
            }
            if bits.get(1) {
                zeros_flipped += 1;
            }
        }
        let p01 = ones_lost as f64 / trials as f64;
        let p10 = zeros_flipped as f64 / trials as f64;
        assert!((p01 - 0.5).abs() < 0.02, "p01={p01}");
        assert!((p10 - 0.1).abs() < 0.01, "p10={p10}");
    }

    #[test]
    fn readout_attenuation_formula() {
        let noise = NoiseModel {
            readout_p01: 0.2,
            readout_p10: 0.1,
            ..NoiseModel::NONE
        };
        // For a qubit pinned at |0⟩ (z = 1): observed z should be
        // scale·1 + offset = 0.7·1 + 0.1 = 0.8.
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 40_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let mut bits = BitString::zeros(1);
            noise.corrupt_readout(&mut bits, &mut rng);
            sum += if bits.get(0) { -1.0 } else { 1.0 };
        }
        let observed = sum / trials as f64;
        let predicted = noise.readout_scale() * 1.0 + noise.readout_offset();
        assert!(
            (observed - predicted).abs() < 0.02,
            "observed {observed}, predicted {predicted}"
        );
    }

    #[test]
    fn shrink_factors() {
        let noise = NoiseModel::typical_superconducting();
        assert!(noise.shrink_1q() < 1.0 && noise.shrink_1q() > 0.99);
        assert!(noise.shrink_2q() < noise.shrink_1q());
    }
}
