//! Analytic circuit-duration model.
//!
//! The paper standardises quantum execution time on fixed gate durations:
//! 20 ns for single-qubit gates, 40 ns for two-qubit gates, and 600 ns for
//! measurement (Section 7.1). [`CircuitTiming`] computes a circuit's
//! duration under as-soon-as-possible scheduling: gates on disjoint qubits
//! run in parallel; a two-qubit gate starts when both operands are free.

use serde::{Deserialize, Serialize};

use qtenon_sim_engine::SimDuration;

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Fixed gate durations (Section 7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateTimes {
    /// Single-qubit gate duration.
    pub single: SimDuration,
    /// Two-qubit gate duration.
    pub two: SimDuration,
    /// Measurement pulse duration (Section 7.1: 600 ns).
    pub measure: SimDuration,
    /// On-chip result processing after the measurement pulse — the paper
    /// charges "an equivalent duration to process the measurement
    /// result", i.e. another 600 ns.
    pub readout_processing: SimDuration,
}

impl Default for GateTimes {
    fn default() -> Self {
        GateTimes {
            single: SimDuration::from_ns(20),
            two: SimDuration::from_ns(40),
            measure: SimDuration::from_ns(600),
            readout_processing: SimDuration::from_ns(600),
        }
    }
}

impl GateTimes {
    /// The duration of one gate (measurement includes result processing).
    pub fn duration_of(&self, gate: &Gate) -> SimDuration {
        match gate {
            Gate::Measure => self.measure + self.readout_processing,
            g if g.arity() == 2 => self.two,
            _ => self.single,
        }
    }
}

/// Computed timing facts about one circuit execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitTiming {
    /// Wall-clock duration of one shot under ASAP scheduling.
    pub shot_duration: SimDuration,
    /// Sum of all gate durations (the sequential lower bound's complement:
    /// `total_gate_time / shot_duration` is the achieved parallelism).
    pub total_gate_time: SimDuration,
    /// Longest single-qubit critical path.
    pub critical_path_gates: usize,
}

impl CircuitTiming {
    /// Computes timing for a (bound or symbolic) circuit. Only gate
    /// *kinds* matter, so symbolic circuits time identically to bound
    /// ones.
    pub fn of(circuit: &Circuit, times: &GateTimes) -> CircuitTiming {
        let n = circuit.n_qubits() as usize;
        let mut free_at = vec![SimDuration::ZERO; n];
        let mut gates_on_path = vec![0usize; n];
        let mut total = SimDuration::ZERO;
        for op in circuit.operations() {
            let d = times.duration_of(&op.gate);
            total += d;
            match op.qubit2 {
                Some(q2) => {
                    let start = free_at[op.qubit as usize].max(free_at[q2 as usize]);
                    let path = gates_on_path[op.qubit as usize].max(gates_on_path[q2 as usize]) + 1;
                    let end = start + d;
                    free_at[op.qubit as usize] = end;
                    free_at[q2 as usize] = end;
                    gates_on_path[op.qubit as usize] = path;
                    gates_on_path[q2 as usize] = path;
                }
                None => {
                    free_at[op.qubit as usize] += d;
                    gates_on_path[op.qubit as usize] += 1;
                }
            }
        }
        CircuitTiming {
            shot_duration: free_at.into_iter().max().unwrap_or(SimDuration::ZERO),
            total_gate_time: total,
            critical_path_gates: gates_on_path.into_iter().max().unwrap_or(0),
        }
    }

    /// Duration of `shots` sequential repetitions of this circuit.
    pub fn shots_duration(&self, shots: u64) -> SimDuration {
        self.shot_duration * shots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimDuration {
        SimDuration::from_ns(v)
    }

    #[test]
    fn default_times_match_paper() {
        let t = GateTimes::default();
        assert_eq!(t.single, ns(20));
        assert_eq!(t.two, ns(40));
        assert_eq!(t.measure, ns(600));
    }

    #[test]
    fn parallel_gates_overlap() {
        let mut c = Circuit::new(2);
        c.rx(0, 0.1).rx(1, 0.1);
        let t = CircuitTiming::of(&c, &GateTimes::default());
        assert_eq!(t.shot_duration, ns(20));
        assert_eq!(t.total_gate_time, ns(40));
    }

    #[test]
    fn sequential_gates_accumulate() {
        let mut c = Circuit::new(1);
        c.rx(0, 0.1).ry(0, 0.2).rz(0, 0.3);
        let t = CircuitTiming::of(&c, &GateTimes::default());
        assert_eq!(t.shot_duration, ns(60));
        assert_eq!(t.critical_path_gates, 3);
    }

    #[test]
    fn two_qubit_gate_waits_for_both_operands() {
        let mut c = Circuit::new(2);
        c.rx(0, 0.1).rx(0, 0.1); // qubit 0 busy until 40 ns
        c.cz(0, 1); // starts at 40 ns, ends at 80 ns
        let t = CircuitTiming::of(&c, &GateTimes::default());
        assert_eq!(t.shot_duration, ns(80));
    }

    #[test]
    fn measurement_dominates_small_circuits() {
        let mut c = Circuit::new(1);
        c.rx(0, 1.0).measure(0);
        let t = CircuitTiming::of(&c, &GateTimes::default());
        assert_eq!(t.shot_duration, ns(1220)); // 20 + 600 pulse + 600 processing
    }

    #[test]
    fn shots_scale_linearly() {
        let mut c = Circuit::new(1);
        c.measure(0);
        let t = CircuitTiming::of(&c, &GateTimes::default());
        assert_eq!(t.shots_duration(500), ns(1200 * 500));
    }

    #[test]
    fn empty_circuit_has_zero_duration() {
        let c = Circuit::new(4);
        let t = CircuitTiming::of(&c, &GateTimes::default());
        assert_eq!(t.shot_duration, SimDuration::ZERO);
        assert_eq!(t.critical_path_gates, 0);
    }

    #[test]
    fn symbolic_and_bound_time_identically() {
        use crate::gate::ParamId;
        let mut sym = Circuit::new(2);
        sym.ry_param(0, ParamId::new(0)).cz(0, 1).measure_all();
        let bound = sym.bind(&[0.7]).unwrap();
        let times = GateTimes::default();
        assert_eq!(
            CircuitTiming::of(&sym, &times),
            CircuitTiming::of(&bound, &times)
        );
    }
}
