//! Gates and (possibly symbolic) rotation angles.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a variational parameter within a circuit.
///
/// # Examples
///
/// ```
/// use qtenon_quantum::ParamId;
///
/// let theta = ParamId::new(0);
/// assert_eq!(theta.index(), 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ParamId(u32);

impl ParamId {
    /// Creates a parameter id.
    pub const fn new(index: u32) -> Self {
        ParamId(index)
    }

    /// The raw parameter index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "θ{}", self.0)
    }
}

/// A rotation angle: a literal value or a reference to a variational
/// parameter (optionally scaled, so QAOA can share one parameter across a
/// whole layer with per-gate weights).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Angle {
    /// A concrete angle in radians.
    Value(f64),
    /// `scale × θ[param]`: resolved when the circuit is bound.
    Param {
        /// The referenced parameter.
        param: ParamId,
        /// Multiplier applied at bind time.
        scale: f64,
    },
}

impl Angle {
    /// A plain reference to `param` with unit scale.
    pub fn param(param: ParamId) -> Self {
        Angle::Param { param, scale: 1.0 }
    }

    /// A scaled reference to `param`.
    pub fn scaled_param(param: ParamId, scale: f64) -> Self {
        Angle::Param { param, scale }
    }

    /// The parameter this angle references, if symbolic.
    pub fn param_id(&self) -> Option<ParamId> {
        match self {
            Angle::Value(_) => None,
            Angle::Param { param, .. } => Some(*param),
        }
    }

    /// Resolves the angle against a parameter vector.
    ///
    /// Returns `None` if the referenced parameter is out of range.
    pub fn resolve(&self, params: &[f64]) -> Option<f64> {
        match *self {
            Angle::Value(v) => Some(v),
            Angle::Param { param, scale } => params.get(param.index() as usize).map(|&p| p * scale),
        }
    }
}

impl From<f64> for Angle {
    fn from(v: f64) -> Self {
        Angle::Value(v)
    }
}

impl From<ParamId> for Angle {
    fn from(p: ParamId) -> Self {
        Angle::param(p)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Angle::Value(v) => write!(f, "{v:.4}"),
            Angle::Param { param, scale } if *scale == 1.0 => write!(f, "{param}"),
            Angle::Param { param, scale } => write!(f, "{scale:.4}·{param}"),
        }
    }
}

/// A logical gate. Everything here lowers to the chip-native set
/// `{RX, RY, RZ, CZ}` plus measurement via [`crate::transpile`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate (√Z).
    S,
    /// T gate (⁴√Z).
    T,
    /// X rotation.
    Rx(Angle),
    /// Y rotation.
    Ry(Angle),
    /// Z rotation.
    Rz(Angle),
    /// Controlled-X (CNOT).
    Cx,
    /// Controlled-Z (chip native two-qubit gate).
    Cz,
    /// Z-basis measurement.
    Measure,
}

impl Gate {
    /// The gate's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H => "H",
            Gate::X => "X",
            Gate::Y => "Y",
            Gate::Z => "Z",
            Gate::S => "S",
            Gate::T => "T",
            Gate::Rx(_) => "RX",
            Gate::Ry(_) => "RY",
            Gate::Rz(_) => "RZ",
            Gate::Cx => "CX",
            Gate::Cz => "CZ",
            Gate::Measure => "MEASURE",
        }
    }

    /// Number of qubit operands.
    pub fn arity(&self) -> usize {
        match self {
            Gate::Cx | Gate::Cz => 2,
            _ => 1,
        }
    }

    /// Whether the gate is in the chip-native set.
    pub fn is_native(&self) -> bool {
        matches!(
            self,
            Gate::Rx(_) | Gate::Ry(_) | Gate::Rz(_) | Gate::Cz | Gate::Measure
        )
    }

    /// The gate's angle, if it is a rotation.
    pub fn angle(&self) -> Option<Angle> {
        match self {
            Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) => Some(*a),
            _ => None,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.angle() {
            Some(a) => write!(f, "{}({a})", self.name()),
            None => f.write_str(self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angle_resolution() {
        let a = Angle::Value(1.5);
        assert_eq!(a.resolve(&[]), Some(1.5));
        let b = Angle::param(ParamId::new(1));
        assert_eq!(b.resolve(&[0.0, 2.5]), Some(2.5));
        assert_eq!(b.resolve(&[0.0]), None);
        let c = Angle::scaled_param(ParamId::new(0), 2.0);
        assert_eq!(c.resolve(&[0.7]), Some(1.4));
    }

    #[test]
    fn angle_param_id() {
        assert_eq!(Angle::Value(0.1).param_id(), None);
        assert_eq!(
            Angle::param(ParamId::new(3)).param_id(),
            Some(ParamId::new(3))
        );
    }

    #[test]
    fn native_set_membership() {
        assert!(Gate::Rx(Angle::Value(0.1)).is_native());
        assert!(Gate::Cz.is_native());
        assert!(Gate::Measure.is_native());
        assert!(!Gate::H.is_native());
        assert!(!Gate::Cx.is_native());
        assert!(!Gate::T.is_native());
    }

    #[test]
    fn arity() {
        assert_eq!(Gate::H.arity(), 1);
        assert_eq!(Gate::Cx.arity(), 2);
        assert_eq!(Gate::Cz.arity(), 2);
        assert_eq!(Gate::Measure.arity(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Gate::Ry(Angle::param(ParamId::new(2))).to_string(),
            "RY(θ2)"
        );
        assert_eq!(Gate::Cz.to_string(), "CZ");
    }
}
