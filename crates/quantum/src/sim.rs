//! Unified simulation front-end: exact state vector for small circuits, a
//! mean-field product-state approximation beyond that.
//!
//! The paper's evaluation spans 8–320 qubits; an exact simulation of 2³²⁰
//! amplitudes is physically impossible on any machine, and the original
//! authors likewise used classical simulation (Qiskit) only as a source of
//! measurement data. Timing never depends on amplitudes, so the
//! substitution rule from DESIGN.md applies: [`MeanFieldState`] tracks one
//! Bloch vector per qubit, applies native rotations exactly and CZ through
//! its exact *reduced* (traced-out) action on product states, and samples
//! each qubit independently. Measurement statistics remain
//! parameter-responsive — optimizers see a real, smooth landscape — at
//! O(gates + qubits·shots) cost.

use qtenon_sim_engine::rng::stream_seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bits::BitString;
use crate::circuit::Circuit;
use crate::fuse::{self, FuseStats};
use crate::gate::{Angle, Gate};
use crate::noise::NoiseModel;
use crate::statevector::StateVector;
use crate::QuantumError;

pub use crate::statevector::EXACT_QUBIT_LIMIT;

/// Exactness threshold for [`Simulator::fast`].
pub const FAST_EXACT_LIMIT: u32 = 12;

/// One qubit's Bloch vector in the mean-field model.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Bloch {
    x: f64,
    y: f64,
    z: f64,
}

impl Bloch {
    const ZERO_STATE: Bloch = Bloch {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };
}

/// Mean-field (product-state) simulator scaling to hundreds of qubits.
///
/// # Examples
///
/// ```
/// use qtenon_quantum::sim::MeanFieldState;
/// use std::f64::consts::PI;
///
/// let mut mf = MeanFieldState::new(320);
/// mf.apply_rx(319, PI);
/// assert!((mf.expectation_z(319) + 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct MeanFieldState {
    qubits: Vec<Bloch>,
}

impl MeanFieldState {
    /// Creates the |0…0⟩ product state.
    pub fn new(n_qubits: u32) -> Self {
        MeanFieldState {
            qubits: vec![Bloch::ZERO_STATE; n_qubits as usize],
        }
    }

    /// The number of qubits.
    pub fn n_qubits(&self) -> u32 {
        self.qubits.len() as u32
    }

    /// Applies RX(θ) to qubit `q` (exact for product states).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_rx(&mut self, q: u32, theta: f64) {
        let b = &mut self.qubits[q as usize];
        let (s, c) = theta.sin_cos();
        let (y, z) = (b.y, b.z);
        b.y = y * c - z * s;
        b.z = y * s + z * c;
    }

    /// Applies RY(θ) to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_ry(&mut self, q: u32, theta: f64) {
        let b = &mut self.qubits[q as usize];
        let (s, c) = theta.sin_cos();
        let (x, z) = (b.x, b.z);
        b.x = x * c + z * s;
        b.z = -x * s + z * c;
    }

    /// Applies RZ(θ) to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_rz(&mut self, q: u32, theta: f64) {
        let b = &mut self.qubits[q as usize];
        let (s, c) = theta.sin_cos();
        let (x, y) = (b.x, b.y);
        b.x = x * c - y * s;
        b.y = x * s + y * c;
    }

    /// Applies CZ between `a` and `b` using the exact reduced action on a
    /// product state: each side's transverse components are scaled by the
    /// partner's ⟨Z⟩ (entanglement is discarded — the mean-field
    /// approximation).
    ///
    /// # Panics
    ///
    /// Panics if a qubit is out of range or the operands coincide.
    pub fn apply_cz(&mut self, a: u32, b: u32) {
        assert_ne!(a, b, "CZ operands must differ");
        let za = self.qubits[a as usize].z;
        let zb = self.qubits[b as usize].z;
        {
            let qa = &mut self.qubits[a as usize];
            qa.x *= zb;
            qa.y *= zb;
        }
        {
            let qb = &mut self.qubits[b as usize];
            qb.x *= za;
            qb.y *= za;
        }
    }

    /// ⟨Z⟩ on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn expectation_z(&self, q: u32) -> f64 {
        self.qubits[q as usize].z
    }

    /// Mean-field expectation of a Z product: the product of individual
    /// ⟨Z⟩ values.
    pub fn expectation_z_product(&self, qubits: &[u32]) -> f64 {
        qubits.iter().map(|&q| self.qubits[q as usize].z).product()
    }

    /// Applies a depolarizing shrink to one qubit's Bloch vector (the
    /// exact action of the channel on a product state).
    pub fn depolarize(&mut self, q: u32, shrink: f64) {
        let b = &mut self.qubits[q as usize];
        b.x *= shrink;
        b.y *= shrink;
        b.z *= shrink;
    }

    /// Runs all gates of a bound native circuit under a noise model:
    /// each gate is followed by the corresponding depolarizing shrink on
    /// its operands.
    ///
    /// # Errors
    ///
    /// Same as [`MeanFieldState::apply_circuit`].
    pub fn apply_circuit_noisy(
        &mut self,
        circuit: &Circuit,
        noise: &NoiseModel,
    ) -> Result<(), QuantumError> {
        if noise.is_noiseless() {
            return self.apply_circuit(circuit);
        }
        for op in circuit.operations() {
            match op.gate {
                Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) => {
                    let theta = match a {
                        Angle::Value(v) => v,
                        Angle::Param { param, .. } => {
                            return Err(QuantumError::UnboundParameter { param })
                        }
                    };
                    match op.gate {
                        Gate::Rx(_) => self.apply_rx(op.qubit, theta),
                        Gate::Ry(_) => self.apply_ry(op.qubit, theta),
                        Gate::Rz(_) => self.apply_rz(op.qubit, theta),
                        _ => unreachable!(),
                    }
                    self.depolarize(op.qubit, noise.shrink_1q());
                }
                Gate::Cz => {
                    let b = op.qubit2.expect("CZ has two operands");
                    self.apply_cz(op.qubit, b);
                    self.depolarize(op.qubit, noise.shrink_2q());
                    self.depolarize(b, noise.shrink_2q());
                }
                Gate::Measure => {}
                other => return Err(QuantumError::NonNativeGate { gate: other.name() }),
            }
        }
        Ok(())
    }

    /// Runs all gates of a bound native circuit.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::NonNativeGate`] or
    /// [`QuantumError::UnboundParameter`] as appropriate.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), QuantumError> {
        for op in circuit.operations() {
            match op.gate {
                Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) => {
                    let theta = match a {
                        Angle::Value(v) => v,
                        Angle::Param { param, .. } => {
                            return Err(QuantumError::UnboundParameter { param })
                        }
                    };
                    match op.gate {
                        Gate::Rx(_) => self.apply_rx(op.qubit, theta),
                        Gate::Ry(_) => self.apply_ry(op.qubit, theta),
                        Gate::Rz(_) => self.apply_rz(op.qubit, theta),
                        _ => unreachable!(),
                    }
                }
                Gate::Cz => self.apply_cz(op.qubit, op.qubit2.expect("CZ has two operands")),
                Gate::Measure => {}
                other => return Err(QuantumError::NonNativeGate { gate: other.name() }),
            }
        }
        Ok(())
    }

    /// Draws `shots` outcomes, each qubit sampled independently from its
    /// marginal distribution.
    pub fn sample<R: Rng>(&self, rng: &mut R, shots: u64) -> Vec<BitString> {
        let n = self.n_qubits();
        let p1: Vec<f64> = self.qubits.iter().map(|b| (1.0 - b.z) / 2.0).collect();
        (0..shots)
            .map(|_| {
                let mut bits = BitString::zeros(n);
                for (q, &p) in p1.iter().enumerate() {
                    if rng.gen::<f64>() < p {
                        bits.set(q as u32, true);
                    }
                }
                bits
            })
            .collect()
    }
}

/// The state-independent sampling backend for one prepared circuit.
#[derive(Debug, Clone)]
enum PreparedBackend {
    /// Inverse sampling over the exact basis-state distribution.
    Exact { cumulative: Vec<f64>, total: f64 },
    /// Independent per-qubit marginals from the mean-field state.
    MeanField { p1: Vec<f64> },
}

/// A circuit applied once and frozen into its measurement distribution:
/// the immutable, thread-shareable half of a [`Simulator::run`].
///
/// Preparation (state evolution) is deterministic and happens once;
/// sampling draws from the frozen distribution with whatever RNG the
/// caller supplies. Splitting the two is what lets the parallel engine
/// share one `PreparedCircuit` across shot-shard workers — the struct
/// holds only plain probability tables, so it is `Send + Sync` — while
/// each shot consumes its own [`Simulator::shot_rng`] stream.
///
/// # Examples
///
/// ```
/// use qtenon_quantum::{Circuit, sim::Simulator};
///
/// let mut c = Circuit::new(4);
/// c.rx(0, std::f64::consts::PI).measure_all();
/// let mut sim = Simulator::auto(4, 1);
/// let prepared = sim.prepare(&c)?;
/// let base = sim.advance_cursor(10);
/// let shots: Vec<_> = (0..10)
///     .map(|s| prepared.sample_shot(&mut sim.shot_rng(base + s)))
///     .collect();
/// assert!(shots.iter().all(|s| s.get(0)));
/// # Ok::<(), qtenon_quantum::QuantumError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PreparedCircuit {
    n_qubits: u32,
    noise: NoiseModel,
    backend: PreparedBackend,
    fuse_stats: FuseStats,
}

impl PreparedCircuit {
    /// The circuit width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Fusion/kernel accounting from preparation. All-zero (see
    /// [`FuseStats::is_empty`]) for the mean-field backend, which never
    /// lowers through the kernel layer.
    pub fn fuse_stats(&self) -> FuseStats {
        self.fuse_stats
    }

    /// Draws one measurement outcome (including readout noise, when the
    /// owning simulator carries a noise model) from `rng`.
    pub fn sample_shot<R: Rng>(&self, rng: &mut R) -> BitString {
        let mut bits = match &self.backend {
            PreparedBackend::Exact { cumulative, total } => {
                let r: f64 = rng.gen::<f64>() * total;
                let idx = cumulative.partition_point(|&c| c < r);
                BitString::from_u64(idx.min(cumulative.len() - 1) as u64, self.n_qubits)
            }
            PreparedBackend::MeanField { p1 } => {
                let mut bits = BitString::zeros(self.n_qubits);
                for (q, &p) in p1.iter().enumerate() {
                    if rng.gen::<f64>() < p {
                        bits.set(q as u32, true);
                    }
                }
                bits
            }
        };
        if !self.noise.is_noiseless() {
            self.noise.corrupt_readout(&mut bits, rng);
        }
        bits
    }
}

/// Simulation front-end that picks the exact backend when feasible and the
/// mean-field backend beyond [`EXACT_QUBIT_LIMIT`] qubits.
///
/// # Determinism
///
/// Every shot owns an independent RNG stream seeded from
/// `(simulator seed, global shot index)`; the simulator itself only keeps
/// a monotone shot cursor. Shot *s* therefore draws the same values
/// whether the run is serial or sharded across any number of threads —
/// the bitwise-reproducibility contract the parallel execution engine is
/// built on (DESIGN.md §"Parallel execution model").
///
/// # Examples
///
/// ```
/// use qtenon_quantum::{Circuit, sim::Simulator};
///
/// let mut c = Circuit::new(64);
/// c.rx(0, std::f64::consts::PI).measure_all();
/// let mut sim = Simulator::auto(64, 1);
/// let shots = sim.run(&c, 10)?;
/// assert!(shots.iter().all(|s| s.get(0)));
/// # Ok::<(), qtenon_quantum::QuantumError>(())
/// ```
#[derive(Debug)]
pub struct Simulator {
    n_qubits: u32,
    exact: bool,
    seed: u64,
    shot_cursor: u64,
    noise: NoiseModel,
    fuse: bool,
}

impl Simulator {
    /// Creates a simulator choosing the backend by qubit count.
    pub fn auto(n_qubits: u32, seed: u64) -> Self {
        Simulator {
            n_qubits,
            exact: n_qubits <= EXACT_QUBIT_LIMIT,
            seed,
            shot_cursor: 0,
            noise: NoiseModel::NONE,
            fuse: true,
        }
    }

    /// Creates a simulator tuned for *system-timing* experiments: exact
    /// only up to [`FAST_EXACT_LIMIT`] qubits, mean-field beyond. Deep
    /// variational circuits are re-simulated hundreds of times per run,
    /// so the timing experiments trade amplitude exactness (which never
    /// affects timing) for tractability much earlier than
    /// [`Simulator::auto`] does.
    pub fn fast(n_qubits: u32, seed: u64) -> Self {
        Simulator {
            n_qubits,
            exact: n_qubits <= FAST_EXACT_LIMIT,
            seed,
            shot_cursor: 0,
            noise: NoiseModel::NONE,
            fuse: true,
        }
    }

    /// Creates a simulator that always uses the mean-field backend (useful
    /// for apples-to-apples scaling runs).
    pub fn mean_field(n_qubits: u32, seed: u64) -> Self {
        Simulator {
            n_qubits,
            exact: false,
            seed,
            shot_cursor: 0,
            noise: NoiseModel::NONE,
            fuse: true,
        }
    }

    /// Returns a copy of this simulator with gate fusion switched on or
    /// off (default: on). Fused and unfused execution are bitwise
    /// interchangeable (see `crates/quantum/src/fuse.rs`); the flag is a
    /// pure performance toggle, exposed as `--no-fuse` at the CLI.
    pub fn with_fusion(mut self, fuse: bool) -> Self {
        self.fuse = fuse;
        self
    }

    /// Whether gate fusion is enabled.
    pub fn fusion_enabled(&self) -> bool {
        self.fuse
    }

    /// Returns a copy of this simulator with a NISQ noise model attached:
    /// depolarizing error after each gate (mean-field backend) and
    /// readout bit-flips on every sampled shot (both backends).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// The attached noise model.
    pub fn noise(&self) -> NoiseModel {
        self.noise
    }

    /// The configured width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Whether the exact backend is in use.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// The configured RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Reserves `shots` global shot indices and returns the first one.
    /// The cursor is monotone across a simulator's lifetime, so every
    /// [`Simulator::run`] (or sharded equivalent) consumes a fresh,
    /// non-overlapping index range.
    pub fn advance_cursor(&mut self, shots: u64) -> u64 {
        let base = self.shot_cursor;
        self.shot_cursor = self.shot_cursor.wrapping_add(shots);
        base
    }

    /// The RNG for global shot index `global_shot`: a pure function of
    /// `(seed, global_shot)`, independent of every other shot's draws and
    /// of the thread that evaluates it.
    pub fn shot_rng(&self, global_shot: u64) -> StdRng {
        StdRng::seed_from_u64(stream_seed(self.seed, global_shot))
    }

    /// Prepares |0…0⟩, applies the bound native `circuit`, and freezes
    /// the resulting measurement distribution for sampling.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::QubitOutOfRange`] if the circuit width
    /// disagrees with the simulator, plus any backend error.
    pub fn prepare(&self, circuit: &Circuit) -> Result<PreparedCircuit, QuantumError> {
        if circuit.n_qubits() != self.n_qubits {
            return Err(QuantumError::QubitOutOfRange {
                qubit: circuit.n_qubits(),
                n_qubits: self.n_qubits,
            });
        }
        let mut fuse_stats = FuseStats::default();
        let backend = if self.exact {
            let plan = fuse::plan(circuit, self.fuse)?;
            fuse_stats = plan.stats;
            let mut sv = StateVector::new(self.n_qubits)?;
            sv.apply_plan(&plan);
            let (cumulative, total) = sv.cumulative_distribution();
            PreparedBackend::Exact { cumulative, total }
        } else {
            let mut mf = MeanFieldState::new(self.n_qubits);
            mf.apply_circuit_noisy(circuit, &self.noise)?;
            PreparedBackend::MeanField {
                p1: mf.qubits.iter().map(|b| (1.0 - b.z) / 2.0).collect(),
            }
        };
        Ok(PreparedCircuit {
            n_qubits: self.n_qubits,
            noise: self.noise,
            backend,
            fuse_stats,
        })
    }

    /// Prepares |0…0⟩, applies the bound native `circuit`, and draws
    /// `shots` measurement outcomes, one independent RNG stream per shot.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::QubitOutOfRange`] if the circuit width
    /// disagrees with the simulator, plus any backend error.
    pub fn run(&mut self, circuit: &Circuit, shots: u64) -> Result<Vec<BitString>, QuantumError> {
        let prepared = self.prepare(circuit)?;
        let base = self.advance_cursor(shots);
        Ok((0..shots)
            .map(|s| prepared.sample_shot(&mut self.shot_rng(base + s)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn mean_field_matches_exact_for_single_qubit_rotations() {
        let mut mf = MeanFieldState::new(1);
        let mut sv = StateVector::new(1).unwrap();
        for (i, theta) in [0.3, 1.1, 2.7].iter().enumerate() {
            match i {
                0 => {
                    mf.apply_rx(0, *theta);
                    sv.apply_rx(0, *theta);
                }
                1 => {
                    mf.apply_ry(0, *theta);
                    sv.apply_ry(0, *theta);
                }
                _ => {
                    mf.apply_rz(0, *theta);
                    sv.apply_rz(0, *theta);
                }
            }
            assert!(
                (mf.expectation_z(0) - sv.expectation_z(0)).abs() < 1e-10,
                "step {i}"
            );
        }
    }

    #[test]
    fn mean_field_cz_reduced_action_matches_exact_marginals() {
        // For a product input, tracing out the partner gives exactly the
        // mean-field update, so single-qubit marginals must agree.
        for (ta, tb) in [(0.4, 1.3), (FRAC_PI_2, FRAC_PI_2), (2.0, 0.1)] {
            let mut mf = MeanFieldState::new(2);
            mf.apply_ry(0, ta);
            mf.apply_ry(1, tb);
            mf.apply_cz(0, 1);
            let mut sv = StateVector::new(2).unwrap();
            sv.apply_ry(0, ta);
            sv.apply_ry(1, tb);
            sv.apply_cz(0, 1);
            assert!((mf.expectation_z(0) - sv.expectation_z(0)).abs() < 1e-10);
            assert!((mf.expectation_z(1) - sv.expectation_z(1)).abs() < 1e-10);
        }
    }

    #[test]
    fn mean_field_scales_to_320_qubits() {
        let mut mf = MeanFieldState::new(320);
        for q in 0..320 {
            mf.apply_ry(q, 0.01 * q as f64);
        }
        for q in 0..319 {
            mf.apply_cz(q, q + 1);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let shots = mf.sample(&mut rng, 10);
        assert_eq!(shots.len(), 10);
        assert_eq!(shots[0].len(), 320);
    }

    #[test]
    fn mean_field_sampling_tracks_rotation() {
        let mut mf = MeanFieldState::new(1);
        mf.apply_rx(0, PI / 3.0); // p1 = sin²(π/6) = 0.25
        let mut rng = StdRng::seed_from_u64(11);
        let shots = mf.sample(&mut rng, 8000);
        let ones: u32 = shots.iter().map(|s| s.count_ones()).sum();
        let frac = ones as f64 / 8000.0;
        assert!((frac - 0.25).abs() < 0.03, "frac={frac}");
    }

    #[test]
    fn simulator_auto_picks_backend() {
        assert!(Simulator::auto(8, 0).is_exact());
        assert!(!Simulator::auto(64, 0).is_exact());
        assert!(!Simulator::mean_field(4, 0).is_exact());
    }

    #[test]
    fn simulator_rejects_width_mismatch() {
        let mut sim = Simulator::auto(2, 0);
        let c = Circuit::new(3);
        assert!(sim.run(&c, 1).is_err());
    }

    #[test]
    fn simulator_is_deterministic_per_seed() {
        let mut c = Circuit::new(4);
        c.ry(0, 1.0).ry(1, 0.5).cz(0, 1).measure_all();
        let a = Simulator::auto(4, 99).run(&c, 50).unwrap();
        let b = Simulator::auto(4, 99).run(&c, 50).unwrap();
        assert_eq!(a, b);
        let c2 = Simulator::auto(4, 100).run(&c, 50).unwrap();
        assert_ne!(a, c2);
    }

    #[test]
    fn sharded_sampling_reproduces_serial_run() {
        // Sampling the same global shot range in arbitrary shard cuts
        // must reproduce Simulator::run bit for bit.
        let mut c = Circuit::new(16);
        c.ry(0, 1.0).ry(5, 0.5).cz(0, 5).rx(9, 2.2).measure_all();
        let serial = Simulator::fast(16, 7).run(&c, 60).unwrap();
        for split in [1u64, 17, 30, 59] {
            let mut sim = Simulator::fast(16, 7);
            let prepared = sim.prepare(&c).unwrap();
            let base = sim.advance_cursor(60);
            let mut sharded: Vec<BitString> = (base..base + split)
                .map(|s| prepared.sample_shot(&mut sim.shot_rng(s)))
                .collect();
            sharded.extend(
                (base + split..base + 60).map(|s| prepared.sample_shot(&mut sim.shot_rng(s))),
            );
            assert_eq!(sharded, serial, "split at {split} diverged");
        }
    }

    #[test]
    fn noisy_sharded_sampling_reproduces_serial_run() {
        let mut c = Circuit::new(8);
        c.ry(0, 1.2).ry(3, 0.4).cz(0, 3).measure_all();
        let noise = NoiseModel::typical_superconducting();
        let serial = Simulator::mean_field(8, 21)
            .with_noise(noise)
            .run(&c, 40)
            .unwrap();
        let mut sim = Simulator::mean_field(8, 21).with_noise(noise);
        let prepared = sim.prepare(&c).unwrap();
        let base = sim.advance_cursor(40);
        let sharded: Vec<BitString> = (0..40)
            .map(|s| prepared.sample_shot(&mut sim.shot_rng(base + s)))
            .collect();
        assert_eq!(sharded, serial);
    }

    #[test]
    fn successive_runs_consume_fresh_shot_indices() {
        let mut c = Circuit::new(6);
        c.ry(0, 1.0).ry(1, 1.0).ry(2, 1.0).measure_all();
        let mut sim = Simulator::mean_field(6, 5);
        let first = sim.run(&c, 200).unwrap();
        let second = sim.run(&c, 200).unwrap();
        assert_ne!(first, second, "reruns must see fresh randomness");
        assert_eq!(sim.advance_cursor(0), 400);
    }

    #[test]
    fn fused_and_unfused_prepare_sample_identically() {
        let mut c = Circuit::new(8);
        c.rz(0, 0.3)
            .rx(0, 0.7)
            .ry(0, -0.2)
            .cz(0, 1)
            .rx(3, 1.1)
            .rz(3, 0.2)
            .measure_all();
        let fused = Simulator::fast(8, 13).prepare(&c).unwrap();
        let unfused = Simulator::fast(8, 13)
            .with_fusion(false)
            .prepare(&c)
            .unwrap();
        assert!(fused.fuse_stats().gates_fused > 0);
        assert_eq!(unfused.fuse_stats().gates_fused, 0);
        assert_eq!(fused.fuse_stats().gates_in, unfused.fuse_stats().gates_in);
        let sim = Simulator::fast(8, 13);
        for s in 0..64 {
            assert_eq!(
                fused.sample_shot(&mut sim.shot_rng(s)),
                unfused.sample_shot(&mut sim.shot_rng(s)),
                "shot {s}"
            );
        }
    }

    #[test]
    fn mean_field_prepare_reports_empty_fuse_stats() {
        let mut c = Circuit::new(64);
        c.rx(0, 1.0).measure_all();
        let p = Simulator::fast(64, 1).prepare(&c).unwrap();
        assert!(p.fuse_stats().is_empty());
        let mut e = Circuit::new(8);
        e.rx(0, 1.0).cz(0, 1).measure_all();
        let p = Simulator::fast(8, 1).prepare(&e).unwrap();
        assert!(!p.fuse_stats().is_empty());
    }

    #[test]
    fn prepared_circuit_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PreparedCircuit>();
        assert_send_sync::<BitString>();
    }

    #[test]
    fn bloch_vector_stays_in_ball() {
        let mut mf = MeanFieldState::new(3);
        for i in 0..100 {
            mf.apply_rx(i % 3, 0.7);
            mf.apply_ry((i + 1) % 3, 1.3);
            mf.apply_cz(i % 3, (i + 1) % 3);
        }
        for q in 0..3 {
            let b = mf.qubits[q as usize];
            let norm = (b.x * b.x + b.y * b.y + b.z * b.z).sqrt();
            assert!(norm <= 1.0 + 1e-9, "norm={norm}");
        }
    }
}
