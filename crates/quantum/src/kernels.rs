//! Cache-blocked statevector gate kernels.
//!
//! Every gate the exact simulator executes bottoms out here. The layer
//! has one hard contract, on which the whole determinism story of the
//! repo rests: **for a fixed sequence of [`Kernel1Q`]s, the resulting
//! amplitudes are bitwise identical no matter how the sweeps are blocked
//! or batched.** A single-qubit kernel touches each amplitude pair
//! `(a[i], a[i | 1<<q])` independently, so applying a run of kernels
//! pair-by-pair in one memory sweep (gate fusion, [`apply_run`]) performs
//! exactly the same floating-point operations in exactly the same order
//! per pair as applying each kernel in its own full-array sweep — only
//! the traversal order between independent pairs changes, and IEEE-754
//! results do not depend on it.
//!
//! Kernel classes (see DESIGN.md §13):
//!
//! - [`Kernel1Q::General`]: full 2×2 complex multiply, stride-split into
//!   contiguous pair blocks with a `chunks_exact` inner loop so LLVM can
//!   emit wide f64 lanes;
//! - [`Kernel1Q::Diag`]: diagonal gates (RZ and friends) touch each
//!   amplitude once with a single complex multiply — 4× fewer flops and
//!   half the loads of the general path;
//! - [`apply_cz`]: controlled-Z enumerates only the n/4 basis states with
//!   both operand bits set instead of scanning and testing all n.
//!
//! The naive reference loops survive as `#[doc(hidden)]`
//! `apply_matrix2_reference`/`apply_cz_reference` on
//! [`crate::StateVector`]; `crates/quantum/tests/kernel_equiv.rs` proves
//! the equivalence on every CI run.

use crate::statevector::C64;

/// A 2×2 complex matrix in row-major order: `m[row][col]`.
pub type Mat2 = [[C64; 2]; 2];

/// Amplitude pairs processed per inner iteration of the general kernel.
/// Four complex pairs = 16 f64 values per side, enough for LLVM to fill
/// 256-bit lanes while staying far inside L1 for any stride.
const LANES: usize = 4;

/// The RX(θ) = exp(-iθX/2) matrix, bit-for-bit the one the simulator has
/// always applied.
pub fn mat_rx(theta: f64) -> Mat2 {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    [
        [C64::new(c, 0.0), C64::new(0.0, -s)],
        [C64::new(0.0, -s), C64::new(c, 0.0)],
    ]
}

/// The RY(θ) = exp(-iθY/2) matrix.
pub fn mat_ry(theta: f64) -> Mat2 {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    [
        [C64::new(c, 0.0), C64::new(-s, 0.0)],
        [C64::new(s, 0.0), C64::new(c, 0.0)],
    ]
}

/// The RZ(θ) = exp(-iθZ/2) matrix.
pub fn mat_rz(theta: f64) -> Mat2 {
    let half = theta / 2.0;
    [
        [C64::new(half.cos(), -half.sin()), C64::ZERO],
        [C64::ZERO, C64::new(half.cos(), half.sin())],
    ]
}

/// 2×2 complex matrix product `outer · inner` (apply `inner` first).
///
/// **Analysis only.** Executing a composed matrix performs *different*
/// floating-point operations than executing its factors in sequence, so
/// the execution path never multiplies matrices — fusion happens at the
/// loop level ([`apply_run`]). The fusion-algebra tests use this to check
/// approximate identities like RZ(a)·RZ(b) ≈ RZ(a+b).
pub fn compose(outer: &Mat2, inner: &Mat2) -> Mat2 {
    let mut out = [[C64::ZERO; 2]; 2];
    for (r, row) in out.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = outer[r][0] * inner[0][c] + outer[r][1] * inner[1][c];
        }
    }
    out
}

fn is_exact_zero(z: C64) -> bool {
    z.re.to_bits() == 0 && z.im.to_bits() == 0
}

fn is_exact_one(z: C64) -> bool {
    z.re.to_bits() == 1.0f64.to_bits() && z.im.to_bits() == 0
}

/// Kernel classes, for dispatch accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// Diagonal single-qubit kernel.
    Diag,
    /// General 2×2 single-qubit kernel.
    General,
}

/// A classified single-qubit kernel: the unit of execution for both the
/// fused and the unfused path, so toggling fusion can never change which
/// per-element arithmetic runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel1Q {
    /// Diagonal gate: `a0 ← d0·a0`, `a1 ← d1·a1`.
    Diag {
        /// Top-left diagonal element.
        d0: C64,
        /// Bottom-right diagonal element.
        d1: C64,
    },
    /// Arbitrary 2×2 unitary, applied as `m[r][0]·a0 + m[r][1]·a1`.
    General {
        /// The matrix.
        m: Mat2,
    },
}

impl Kernel1Q {
    /// Classifies a matrix. The diagonal class is claimed only when both
    /// off-diagonal entries are bit-exact `+0.0 + 0.0i`: the specialized
    /// kernel drops the zero cross terms, which is observably identical
    /// everywhere except the IEEE sign of exactly-zero results, and the
    /// strict predicate keeps e.g. RX(0) (whose off-diagonal carries a
    /// `-0.0`) on the general path it always took.
    pub fn from_matrix(m: Mat2) -> Self {
        if is_exact_zero(m[0][1]) && is_exact_zero(m[1][0]) {
            Kernel1Q::Diag {
                d0: m[0][0],
                d1: m[1][1],
            }
        } else {
            Kernel1Q::General { m }
        }
    }

    /// Whether this kernel is the bit-exact identity (`1.0 + 0.0i` on the
    /// diagonal, `+0.0 + 0.0i` off it). Deliberately strict: RZ(0) keeps
    /// a `-0.0` in a diagonal phase and is *not* elidable, while RX(-0.0)
    /// classifies to `diag(1, 1)` and is. The fusion planner drops only
    /// kernels this predicate accepts.
    pub fn is_identity(&self) -> bool {
        match self {
            Kernel1Q::Diag { d0, d1 } => is_exact_one(*d0) && is_exact_one(*d1),
            Kernel1Q::General { m } => {
                is_exact_one(m[0][0])
                    && is_exact_one(m[1][1])
                    && is_exact_zero(m[0][1])
                    && is_exact_zero(m[1][0])
            }
        }
    }

    /// The kernel's class.
    pub fn class(&self) -> KernelClass {
        match self {
            Kernel1Q::Diag { .. } => KernelClass::Diag,
            Kernel1Q::General { .. } => KernelClass::General,
        }
    }

    /// The kernel as a matrix (for analysis; see [`compose`]).
    pub fn matrix(&self) -> Mat2 {
        match self {
            Kernel1Q::Diag { d0, d1 } => [[*d0, C64::ZERO], [C64::ZERO, *d1]],
            Kernel1Q::General { m } => *m,
        }
    }

    /// Applies the kernel to one amplitude pair. This expression — not
    /// the sweep that drives it — defines the floating-point behaviour,
    /// and it is shared verbatim by the single-gate sweeps and the fused
    /// run sweep.
    #[inline(always)]
    fn apply_pair(&self, a0: C64, a1: C64) -> (C64, C64) {
        match self {
            Kernel1Q::Diag { d0, d1 } => (*d0 * a0, *d1 * a1),
            Kernel1Q::General { m } => (m[0][0] * a0 + m[0][1] * a1, m[1][0] * a0 + m[1][1] * a1),
        }
    }
}

/// Applies one single-qubit kernel over the full amplitude array.
///
/// # Panics
///
/// Panics (in debug builds) if `1 << q` is not below `amps.len()`.
pub fn apply_kernel(amps: &mut [C64], q: u32, kernel: &Kernel1Q) {
    match kernel {
        Kernel1Q::Diag { d0, d1 } => apply_diag(amps, q, *d0, *d1),
        Kernel1Q::General { m } => apply_general(amps, q, m),
    }
}

/// Diagonal kernel: one complex multiply per amplitude, no cross-pair
/// traffic at all. The two stride-halves are multiplied in place, so the
/// whole sweep is a pair of unit-stride streams LLVM vectorizes freely.
fn apply_diag(amps: &mut [C64], q: u32, d0: C64, d1: C64) {
    let stride = 1usize << q;
    debug_assert!(stride < amps.len(), "qubit {q} out of range");
    for block in amps.chunks_exact_mut(stride << 1) {
        let (lo, hi) = block.split_at_mut(stride);
        for a in lo.iter_mut() {
            *a = d0 * *a;
        }
        for a in hi.iter_mut() {
            *a = d1 * *a;
        }
    }
}

/// General kernel: stride-split pair blocks with a `chunks_exact` inner
/// loop of [`LANES`] pairs, identical per-element arithmetic to the naive
/// reference (`m[r][0]·a0 + m[r][1]·a1`, in that order).
fn apply_general(amps: &mut [C64], q: u32, m: &Mat2) {
    let stride = 1usize << q;
    debug_assert!(stride < amps.len(), "qubit {q} out of range");
    for block in amps.chunks_exact_mut(stride << 1) {
        let (lo, hi) = block.split_at_mut(stride);
        let mut lo_lanes = lo.chunks_exact_mut(LANES);
        let mut hi_lanes = hi.chunks_exact_mut(LANES);
        for (la, ha) in (&mut lo_lanes).zip(&mut hi_lanes) {
            for (a, b) in la.iter_mut().zip(ha.iter_mut()) {
                let (a0, a1) = (*a, *b);
                *a = m[0][0] * a0 + m[0][1] * a1;
                *b = m[1][0] * a0 + m[1][1] * a1;
            }
        }
        for (a, b) in lo_lanes
            .into_remainder()
            .iter_mut()
            .zip(hi_lanes.into_remainder())
        {
            let (a0, a1) = (*a, *b);
            *a = m[0][0] * a0 + m[0][1] * a1;
            *b = m[1][0] * a0 + m[1][1] * a1;
        }
    }
}

/// Applies a fused run of same-qubit kernels in **one** memory sweep:
/// each amplitude pair is loaded once, chased through every kernel of the
/// run with [`Kernel1Q::apply_pair`], and stored once. Because pairs are
/// independent and the per-pair arithmetic is shared with the single-gate
/// sweeps, the result is bitwise identical to applying the kernels one
/// full sweep at a time — fusion only removes memory traffic.
pub fn apply_run(amps: &mut [C64], q: u32, kernels: &[Kernel1Q]) {
    if let [kernel] = kernels {
        // A run of one is exactly a single-gate sweep; take the
        // specialized loop (same bits, better codegen).
        return apply_kernel(amps, q, kernel);
    }
    let stride = 1usize << q;
    debug_assert!(stride < amps.len(), "qubit {q} out of range");
    for block in amps.chunks_exact_mut(stride << 1) {
        let (lo, hi) = block.split_at_mut(stride);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (mut a0, mut a1) = (*a, *b);
            for kernel in kernels {
                (a0, a1) = kernel.apply_pair(a0, a1);
            }
            *a = a0;
            *b = a1;
        }
    }
}

/// Controlled-Z kernel: negates exactly the amplitudes with both operand
/// bits set by enumerating them (n/4 iterations) instead of scanning all
/// n basis states and testing masks. Negation is sign-bit flipping, so
/// the result is bitwise identical to the scanning reference.
pub fn apply_cz(amps: &mut [C64], a: u32, b: u32) {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let slo = 1usize << lo;
    let shi = 1usize << hi;
    let n = amps.len();
    debug_assert!(shi < n, "qubit out of range");
    debug_assert_ne!(a, b, "CZ operands must differ");
    let mut base_hi = shi;
    while base_hi < n {
        let mut base_lo = base_hi + slo;
        while base_lo < base_hi + shi {
            for amp in &mut amps[base_lo..base_lo + slo] {
                *amp = -*amp;
            }
            base_lo += slo << 1;
        }
        base_hi += shi << 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(z: C64) -> (u64, u64) {
        (z.re.to_bits(), z.im.to_bits())
    }

    /// A deterministic, non-trivial amplitude soup (not normalised; the
    /// kernels don't care).
    fn soup(n: usize) -> Vec<C64> {
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.37).sin();
                let y = (i as f64 * 0.91).cos() - 0.5;
                C64::new(x, y)
            })
            .collect()
    }

    fn naive_1q(amps: &mut [C64], q: u32, m: &Mat2) {
        let stride = 1usize << q;
        let n = amps.len();
        let mut base = 0;
        while base < n {
            for i in base..base + stride {
                let a0 = amps[i];
                let a1 = amps[i + stride];
                amps[i] = m[0][0] * a0 + m[0][1] * a1;
                amps[i + stride] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += stride << 1;
        }
    }

    #[test]
    fn general_kernel_is_bitwise_identical_to_naive_loop() {
        for q in 0..6u32 {
            let m = mat_ry(1.234 + f64::from(q));
            let mut a = soup(64);
            let mut b = a.clone();
            naive_1q(&mut a, q, &m);
            apply_general(&mut b, q, &m);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(bits(*x), bits(*y), "qubit {q}");
            }
        }
    }

    #[test]
    fn classify_routes_rz_to_diag_and_rx_ry_to_general() {
        assert_eq!(
            Kernel1Q::from_matrix(mat_rz(0.7)).class(),
            KernelClass::Diag
        );
        assert_eq!(
            Kernel1Q::from_matrix(mat_rx(0.7)).class(),
            KernelClass::General
        );
        assert_eq!(
            Kernel1Q::from_matrix(mat_ry(0.7)).class(),
            KernelClass::General
        );
        // RX(0): off-diagonal is (0, -0.0) — NOT exact zero, stays general.
        assert_eq!(
            Kernel1Q::from_matrix(mat_rx(0.0)).class(),
            KernelClass::General
        );
    }

    #[test]
    fn identity_predicate_is_strictly_bitwise() {
        let identity = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];
        assert!(Kernel1Q::from_matrix(identity).is_identity());
        // RZ(0) carries a -0.0 phase component: not elidable.
        assert!(!Kernel1Q::from_matrix(mat_rz(0.0)).is_identity());
        // RY(-0.0) keeps a -0.0 in its lower-left entry: not elidable.
        assert!(!Kernel1Q::from_matrix(mat_ry(-0.0)).is_identity());
        // RX(-0.0) really is diag(1, 1) bit-for-bit: elidable.
        assert!(Kernel1Q::from_matrix(mat_rx(-0.0)).is_identity());
    }

    #[test]
    fn fused_run_matches_sequential_sweeps_bitwise() {
        let kernels = [
            Kernel1Q::from_matrix(mat_rz(0.4)),
            Kernel1Q::from_matrix(mat_rx(1.1)),
            Kernel1Q::from_matrix(mat_ry(-2.6)),
            Kernel1Q::from_matrix(mat_rz(0.9)),
        ];
        for q in 0..5u32 {
            let mut fused = soup(32);
            let mut seq = fused.clone();
            apply_run(&mut fused, q, &kernels);
            for k in &kernels {
                apply_kernel(&mut seq, q, k);
            }
            for (x, y) in fused.iter().zip(&seq) {
                assert_eq!(bits(*x), bits(*y), "qubit {q}");
            }
        }
    }

    #[test]
    fn cz_kernel_matches_scanning_reference_bitwise() {
        for (a, b) in [(0u32, 1u32), (1, 0), (0, 3), (2, 4), (4, 1)] {
            let mut fast = soup(32);
            let mut slow = fast.clone();
            apply_cz(&mut fast, a, b);
            let (ma, mb) = (1usize << a, 1usize << b);
            for (i, amp) in slow.iter_mut().enumerate() {
                if i & ma != 0 && i & mb != 0 {
                    *amp = -*amp;
                }
            }
            for (x, y) in fast.iter().zip(&slow) {
                assert_eq!(bits(*x), bits(*y), "cz({a},{b})");
            }
        }
    }

    #[test]
    fn compose_matches_rz_angle_addition_approximately() {
        let (a, b) = (0.73, -1.31);
        let composed = compose(&mat_rz(b), &mat_rz(a));
        let direct = mat_rz(a + b);
        for r in 0..2 {
            for c in 0..2 {
                assert!((composed[r][c].re - direct[r][c].re).abs() < 1e-12);
                assert!((composed[r][c].im - direct[r][c].im).abs() < 1e-12);
            }
        }
    }
}
