//! Lowering logical circuits to the chip-native gate set.
//!
//! The Qtenon chip natively executes `{RX, RY, RZ, CZ}` plus measurement
//! (Section 7.1's benchmarks are all expressed this way: QAOA's standard
//! ansatz, VQE's hardware-efficient ansatz, and QNN's alternating RY/CZ
//! layers). [`to_native`] rewrites every non-native gate into that set, up
//! to global phase:
//!
//! - `H → RZ(π) · RY(π/2)`;
//! - `X → RX(π)`, `Y → RY(π)`, `Z → RZ(π)`, `S → RZ(π/2)`, `T → RZ(π/4)`;
//! - `CX(c, t) → H(t) · CZ(c, t) · H(t)` with the `H`s expanded.

use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

use crate::circuit::{Circuit, Operation};
use crate::gate::{Angle, Gate};
use crate::QuantumError;

/// Rewrites `circuit` into the native gate set.
///
/// Symbolic (parameterised) rotations pass through untouched, so circuits
/// can be transpiled once and bound many times — exactly the property
/// Qtenon's incremental compilation exploits.
///
/// # Errors
///
/// Returns [`QuantumError`] only via internal pushes, which cannot fail
/// for a well-formed input circuit.
pub fn to_native(circuit: &Circuit) -> Result<Circuit, QuantumError> {
    let mut out = Circuit::new(circuit.n_qubits());
    for op in circuit.operations() {
        lower(op, &mut out)?;
    }
    Ok(out)
}

fn lower(op: &Operation, out: &mut Circuit) -> Result<(), QuantumError> {
    let q = op.qubit;
    match op.gate {
        Gate::Rx(_) | Gate::Ry(_) | Gate::Rz(_) | Gate::Cz | Gate::Measure => {
            out.push(*op)?;
        }
        Gate::H => {
            push_h(out, q)?;
        }
        Gate::X => {
            push_rot(out, q, Gate::Rx(Angle::Value(PI)))?;
        }
        Gate::Y => {
            push_rot(out, q, Gate::Ry(Angle::Value(PI)))?;
        }
        Gate::Z => {
            push_rot(out, q, Gate::Rz(Angle::Value(PI)))?;
        }
        Gate::S => {
            push_rot(out, q, Gate::Rz(Angle::Value(FRAC_PI_2)))?;
        }
        Gate::T => {
            push_rot(out, q, Gate::Rz(Angle::Value(FRAC_PI_4)))?;
        }
        Gate::Cx => {
            let t = op.qubit2.expect("CX has two operands");
            push_h(out, t)?;
            out.push(Operation {
                gate: Gate::Cz,
                qubit: q,
                qubit2: Some(t),
            })?;
            push_h(out, t)?;
        }
    }
    Ok(())
}

fn push_rot(out: &mut Circuit, q: u32, gate: Gate) -> Result<(), QuantumError> {
    out.push(Operation {
        gate,
        qubit: q,
        qubit2: None,
    })?;
    Ok(())
}

fn push_h(out: &mut Circuit, q: u32) -> Result<(), QuantumError> {
    // H ≅ RY(π/2) ∘ RZ(π): apply RZ(π) first, then RY(π/2).
    push_rot(out, q, Gate::Rz(Angle::Value(PI)))?;
    push_rot(out, q, Gate::Ry(Angle::Value(FRAC_PI_2)))?;
    Ok(())
}

/// Returns `true` if every gate in `circuit` is native.
pub fn is_native(circuit: &Circuit) -> bool {
    circuit.operations().iter().all(|op| op.gate.is_native())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::ParamId;
    use crate::statevector::StateVector;

    fn run(circuit: &Circuit) -> StateVector {
        let native = to_native(circuit).unwrap();
        assert!(is_native(&native));
        let mut sv = StateVector::new(circuit.n_qubits()).unwrap();
        sv.apply_circuit(&native).unwrap();
        sv
    }

    #[test]
    fn h_gives_uniform_superposition() {
        let mut c = Circuit::new(1);
        c.h(0);
        let sv = run(&c);
        assert!((sv.probability_of_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn h_twice_is_identity() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        let sv = run(&c);
        assert!(sv.probability_of_one(0) < 1e-12);
    }

    #[test]
    fn x_flips() {
        let mut c = Circuit::new(1);
        c.x(0);
        let sv = run(&c);
        assert!((sv.probability_of_one(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn s_phase_detected_by_ramsey() {
        // H · S · H |0⟩ has p(1) = 1/2 (S rotates the equator by π/2).
        let mut c = Circuit::new(1);
        c.h(0)
            .push(Operation {
                gate: Gate::S,
                qubit: 0,
                qubit2: None,
            })
            .unwrap()
            .h(0);
        let sv = run(&c);
        assert!((sv.probability_of_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn t_phase_detected_by_ramsey() {
        // H · T · H |0⟩ has p(1) = sin²(π/8).
        let mut c = Circuit::new(1);
        c.h(0)
            .push(Operation {
                gate: Gate::T,
                qubit: 0,
                qubit2: None,
            })
            .unwrap()
            .h(0);
        let sv = run(&c);
        let expected = (PI / 8.0).sin().powi(2);
        assert!((sv.probability_of_one(0) - expected).abs() < 1e-12);
    }

    #[test]
    fn cx_builds_bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = run(&c);
        // Perfect ZZ correlation, maximally mixed marginals.
        assert!((sv.expectation_z_product(&[0, 1]) - 1.0).abs() < 1e-10);
        assert!((sv.probability_of_one(0) - 0.5).abs() < 1e-10);
        assert!((sv.probability_of_one(1) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn cx_truth_table() {
        // |10⟩ → |11⟩ (control = qubit 0).
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let sv = run(&c);
        assert!((sv.probability_of_one(1) - 1.0).abs() < 1e-10);
        // |00⟩ → |00⟩.
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let sv = run(&c);
        assert!(sv.probability_of_one(1) < 1e-10);
    }

    #[test]
    fn parameterised_gates_pass_through() {
        let mut c = Circuit::new(1);
        c.ry_param(0, ParamId::new(0));
        let native = to_native(&c).unwrap();
        assert_eq!(native.num_params(), 1);
        assert_eq!(native.operations().len(), 1);
    }

    #[test]
    fn native_circuits_are_untouched() {
        let mut c = Circuit::new(2);
        c.rx(0, 0.2).cz(0, 1).measure_all();
        let native = to_native(&c).unwrap();
        assert_eq!(native, c);
    }

    #[test]
    fn gate_counts_grow_as_expected() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let native = to_native(&c).unwrap();
        // H -> 2 gates; CX -> 2 + 1 + 2 gates.
        assert_eq!(native.operations().len(), 7);
    }
}
