//! Diagonal (Z-basis) Hamiltonians and cost functions.
//!
//! The three benchmark VQAs all minimise the expectation of a diagonal
//! observable estimated from Z-basis measurements: QAOA's MAX-CUT cost,
//! VQE's (Ising-encoded) molecular Hamiltonian, and the QNN readout loss.
//! A [`Hamiltonian`] is a constant plus a sum of weighted Pauli-Z product
//! terms; expectations can be estimated from sampled shots (what the host
//! computes at runtime) or evaluated exactly against a simulator backend
//! (used in tests).

use serde::{Deserialize, Serialize};

use crate::bits::BitString;
use crate::sim::MeanFieldState;
use crate::statevector::StateVector;

/// One weighted product of Pauli-Z operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PauliTerm {
    /// The term's coefficient.
    pub coeff: f64,
    /// Qubits carrying a Z factor (empty means a constant contribution —
    /// prefer [`Hamiltonian`]'s `constant` for that).
    pub qubits: Vec<u32>,
}

impl PauliTerm {
    /// Creates a single-qubit Z term.
    pub fn z(qubit: u32, coeff: f64) -> Self {
        PauliTerm {
            coeff,
            qubits: vec![qubit],
        }
    }

    /// Creates a two-qubit ZZ term.
    pub fn zz(a: u32, b: u32, coeff: f64) -> Self {
        PauliTerm {
            coeff,
            qubits: vec![a, b],
        }
    }

    /// The term's value on one measured bitstring: `coeff × (−1)^parity`.
    pub fn value_on(&self, bits: &BitString) -> f64 {
        if bits.parity_of(&self.qubits) {
            -self.coeff
        } else {
            self.coeff
        }
    }
}

/// A diagonal Hamiltonian: `constant + Σ terms`.
///
/// # Examples
///
/// ```
/// use qtenon_quantum::{BitString, Hamiltonian, PauliTerm};
///
/// // H = 1 − Z₀Z₁ (twice the MAX-CUT value of a single edge).
/// let h = Hamiltonian::new(2, vec![PauliTerm::zz(0, 1, -1.0)], 1.0);
/// let cut = BitString::from_u64(0b01, 2); // qubits disagree
/// assert_eq!(h.value_on(&cut), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hamiltonian {
    n_qubits: u32,
    terms: Vec<PauliTerm>,
    constant: f64,
}

impl Hamiltonian {
    /// Creates a Hamiltonian from terms and an identity offset.
    ///
    /// # Panics
    ///
    /// Panics if any term references a qubit at or beyond `n_qubits`.
    pub fn new(n_qubits: u32, terms: Vec<PauliTerm>, constant: f64) -> Self {
        for t in &terms {
            for &q in &t.qubits {
                assert!(q < n_qubits, "term qubit {q} out of range");
            }
        }
        Hamiltonian {
            n_qubits,
            terms,
            constant,
        }
    }

    /// The number of qubits the Hamiltonian acts on.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// The Pauli terms.
    pub fn terms(&self) -> &[PauliTerm] {
        &self.terms
    }

    /// The identity offset.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// The Hamiltonian's value on one measured bitstring.
    pub fn value_on(&self, bits: &BitString) -> f64 {
        self.constant + self.terms.iter().map(|t| t.value_on(bits)).sum::<f64>()
    }

    /// Sample-mean estimate of ⟨H⟩ from measured shots.
    ///
    /// Returns the constant alone for an empty shot list.
    pub fn expectation_from_shots(&self, shots: &[BitString]) -> f64 {
        if shots.is_empty() {
            return self.constant;
        }
        shots.iter().map(|s| self.value_on(s)).sum::<f64>() / shots.len() as f64
    }

    /// Exact ⟨H⟩ against a state vector.
    pub fn exact_expectation(&self, sv: &StateVector) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|t| t.coeff * sv.expectation_z_product(&t.qubits))
                .sum::<f64>()
    }

    /// Mean-field ⟨H⟩ against a product state.
    pub fn mean_field_expectation(&self, mf: &MeanFieldState) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|t| t.coeff * mf.expectation_z_product(&t.qubits))
                .sum::<f64>()
    }

    /// The MAX-CUT Hamiltonian for a weighted graph: minimising
    /// `H = Σ w·(Z_u Z_v − 1)/2` maximises the cut value, and `−⟨H⟩` is
    /// the expected cut size.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit at or beyond `n_qubits`.
    pub fn maxcut(n_qubits: u32, edges: &[(u32, u32, f64)]) -> Self {
        let mut terms = Vec::with_capacity(edges.len());
        let mut constant = 0.0;
        for &(u, v, w) in edges {
            terms.push(PauliTerm::zz(u, v, w / 2.0));
            constant -= w / 2.0;
        }
        Hamiltonian::new(n_qubits, terms, constant)
    }

    /// An Ising-encoded "molecular" Hamiltonian: nearest-neighbour and
    /// next-nearest ZZ couplings plus on-site fields, with deterministic
    /// pseudo-random coefficients derived from `seed`.
    ///
    /// This stands in for a Jordan–Wigner-mapped electronic-structure
    /// Hamiltonian restricted to its diagonal part (see DESIGN.md): it has
    /// the same term count scaling (O(n) here vs the paper's spin-orbital
    /// couplings) and exercises identical measurement/post-processing
    /// paths.
    pub fn molecular(n_qubits: u32, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            // xorshift64* — deterministic, dependency-free coefficients.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (v >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let mut terms = Vec::new();
        for q in 0..n_qubits {
            terms.push(PauliTerm::z(q, next()));
        }
        for q in 0..n_qubits.saturating_sub(1) {
            terms.push(PauliTerm::zz(q, q + 1, next()));
        }
        for q in 0..n_qubits.saturating_sub(2) {
            terms.push(PauliTerm::zz(q, q + 2, 0.5 * next()));
        }
        Hamiltonian::new(n_qubits, terms, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_value_signs() {
        let t = PauliTerm::zz(0, 1, 2.0);
        assert_eq!(t.value_on(&BitString::from_u64(0b00, 2)), 2.0);
        assert_eq!(t.value_on(&BitString::from_u64(0b11, 2)), 2.0);
        assert_eq!(t.value_on(&BitString::from_u64(0b01, 2)), -2.0);
    }

    #[test]
    fn maxcut_counts_cut_edges() {
        // Triangle with unit weights: best cut value is 2.
        let h = Hamiltonian::maxcut(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let cut = BitString::from_u64(0b001, 3); // {0} vs {1,2}: cuts 2 edges
        assert_eq!(-h.value_on(&cut), 2.0);
        let no_cut = BitString::from_u64(0b000, 3);
        assert_eq!(-h.value_on(&no_cut), 0.0);
    }

    #[test]
    fn expectation_from_shots_averages() {
        let h = Hamiltonian::new(1, vec![PauliTerm::z(0, 1.0)], 0.0);
        let shots = vec![
            BitString::from_u64(0, 1),
            BitString::from_u64(0, 1),
            BitString::from_u64(1, 1),
            BitString::from_u64(1, 1),
        ];
        assert_eq!(h.expectation_from_shots(&shots), 0.0);
        assert_eq!(h.expectation_from_shots(&[]), 0.0);
    }

    #[test]
    fn exact_expectation_matches_shot_limit() {
        use crate::circuit::Circuit;
        let mut c = Circuit::new(2);
        c.ry(0, 1.0).cz(0, 1).ry(1, 0.5);
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_circuit(&c).unwrap();
        let h = Hamiltonian::new(
            2,
            vec![PauliTerm::z(0, 0.7), PauliTerm::zz(0, 1, -0.3)],
            0.1,
        );
        let exact = h.exact_expectation(&sv);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let shots = sv.sample(&mut rng, 20_000);
        let est = h.expectation_from_shots(&shots);
        assert!((exact - est).abs() < 0.03, "exact={exact} est={est}");
    }

    #[test]
    fn mean_field_expectation_consistent() {
        let mut mf = MeanFieldState::new(2);
        mf.apply_ry(0, 0.9);
        let h = Hamiltonian::new(2, vec![PauliTerm::z(0, 2.0)], 1.0);
        assert!((h.mean_field_expectation(&mf) - (1.0 + 2.0 * 0.9f64.cos())).abs() < 1e-12);
    }

    #[test]
    fn molecular_is_deterministic_and_scales() {
        let a = Hamiltonian::molecular(8, 42);
        let b = Hamiltonian::molecular(8, 42);
        assert_eq!(a, b);
        let c = Hamiltonian::molecular(8, 43);
        assert_ne!(a, c);
        // Term count: n fields + (n-1) + (n-2) couplings.
        assert_eq!(a.terms().len(), 8 + 7 + 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_term_panics() {
        let _ = Hamiltonian::new(2, vec![PauliTerm::z(2, 1.0)], 0.0);
    }
}
