//! Packed measurement bitstrings.
//!
//! The scalability experiments run up to 320 qubits, past the width of any
//! primitive integer, so measurement outcomes are stored as packed 64-bit
//! words. One [`BitString`] is one shot's outcome across all measured
//! qubits.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A fixed-width string of measurement bits, packed into 64-bit words.
///
/// Bit `i` is qubit `i`'s measured value.
///
/// # Examples
///
/// ```
/// use qtenon_quantum::BitString;
///
/// let mut bits = BitString::zeros(70);
/// bits.set(69, true);
/// assert!(bits.get(69));
/// assert_eq!(bits.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct BitString {
    len: u32,
    words: Vec<u64>,
}

impl BitString {
    /// Creates an all-zero bitstring of `len` bits.
    pub fn zeros(len: u32) -> Self {
        BitString {
            len,
            words: vec![0; (len as usize).div_ceil(64)],
        }
    }

    /// Creates a bitstring from the low `len` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_u64(value: u64, len: u32) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits");
        let mut out = BitString::zeros(len);
        if len > 0 {
            let mask = if len == 64 { u64::MAX } else { (1 << len) - 1 };
            out.words[0] = value & mask;
        }
        out
    }

    /// The number of bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Returns `true` for a zero-width bitstring.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: u32) -> bool {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: u32, value: bool) {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        let word = &mut self.words[(i / 64) as usize];
        if value {
            *word |= 1 << (i % 64);
        } else {
            *word &= !(1 << (i % 64));
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Parity (XOR) of the bits at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn parity_of(&self, indices: &[u32]) -> bool {
        indices.iter().fold(false, |acc, &i| acc ^ self.get(i))
    }

    /// The packed words, least-significant first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The number of bytes needed to transmit this bitstring (the paper's
    /// Algorithm 1 uses ⌈N/8⌉ bytes per shot).
    pub fn byte_len(&self) -> u64 {
        (self.len as u64).div_ceil(8)
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Most-significant qubit first, like ket notation.
        for i in (0..self.len).rev() {
            write!(f, "{}", self.get(i) as u8)?;
        }
        if self.len == 0 {
            write!(f, "ε")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_across_word_boundary() {
        let mut b = BitString::zeros(130);
        b.set(0, true);
        b.set(63, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(65));
        assert_eq!(b.count_ones(), 4);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn from_u64_masks() {
        let b = BitString::from_u64(0b1011, 3);
        assert_eq!(b.count_ones(), 2); // top bit masked off
        assert!(b.get(0) && b.get(1) && !b.get(2));
    }

    #[test]
    fn parity() {
        let b = BitString::from_u64(0b101, 3);
        assert!(!b.parity_of(&[0, 2]));
        assert!(b.parity_of(&[0, 1]));
        assert!(!b.parity_of(&[]));
    }

    #[test]
    fn byte_len_matches_algorithm1() {
        assert_eq!(BitString::zeros(64).byte_len(), 8);
        assert_eq!(BitString::zeros(65).byte_len(), 9);
        assert_eq!(BitString::zeros(8).byte_len(), 1);
    }

    #[test]
    fn display_msb_first() {
        let b = BitString::from_u64(0b01, 2);
        assert_eq!(b.to_string(), "01");
        assert_eq!(BitString::zeros(0).to_string(), "ε");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let b = BitString::zeros(4);
        b.get(4);
    }
}
