//! Exact state-vector simulation of native-gate circuits.

use std::fmt;

use rand::Rng;

use crate::bits::BitString;
use crate::circuit::Circuit;
use crate::fuse::{self, ExecPlan, PlanOp};
use crate::kernels::{self, Kernel1Q};
use crate::QuantumError;

/// A complex number with `f64` parts.
///
/// # Examples
///
/// ```
/// use qtenon_quantum::statevector::C64;
///
/// let i = C64::new(0.0, 1.0);
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> C64 {
        C64::new(self.re, -self.im)
    }
}

impl std::ops::Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.4}{:+.4}i", self.re, self.im)
    }
}

/// Widest circuit the exact simulator accepts (2²² amplitudes ≈ 67 MB).
pub const EXACT_QUBIT_LIMIT: u32 = 22;

/// An exact state vector over up to [`EXACT_QUBIT_LIMIT`] qubits.
///
/// # Examples
///
/// ```
/// use qtenon_quantum::{Circuit, StateVector};
/// use std::f64::consts::FRAC_PI_2;
///
/// let mut sv = StateVector::new(1)?;
/// sv.apply_ry(0, FRAC_PI_2);
/// assert!((sv.probability_of_one(0) - 0.5).abs() < 1e-12);
/// # Ok::<(), qtenon_quantum::QuantumError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StateVector {
    n_qubits: u32,
    amps: Vec<C64>,
}

impl StateVector {
    /// Creates the all-zeros computational basis state |0…0⟩.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::TooManyQubits`] beyond
    /// [`EXACT_QUBIT_LIMIT`].
    pub fn new(n_qubits: u32) -> Result<Self, QuantumError> {
        if n_qubits > EXACT_QUBIT_LIMIT {
            return Err(QuantumError::TooManyQubits {
                n_qubits,
                limit: EXACT_QUBIT_LIMIT,
            });
        }
        let mut amps = vec![C64::ZERO; 1usize << n_qubits];
        amps[0] = C64::ONE;
        Ok(StateVector { n_qubits, amps })
    }

    /// The number of qubits.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// The amplitude of a computational basis state.
    ///
    /// # Panics
    ///
    /// Panics if `basis` is out of range.
    pub fn amplitude(&self, basis: usize) -> C64 {
        self.amps[basis]
    }

    /// Applies an arbitrary single-qubit unitary `[[a, b], [c, d]]`,
    /// dispatching on the kernel class ([`Kernel1Q::from_matrix`]):
    /// diagonal matrices take the single-multiply diagonal kernel,
    /// everything else the cache-blocked general kernel.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_matrix2(&mut self, q: u32, m: [[C64; 2]; 2]) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        kernels::apply_kernel(&mut self.amps, q, &Kernel1Q::from_matrix(m));
    }

    /// The naive reference implementation `apply_matrix2` historically
    /// was: a scanning pair loop with the full 2×2 multiply for every
    /// gate. Kept (hidden) as the ground truth the kernel-equivalence
    /// differential harness compares against; not part of the public API.
    #[doc(hidden)]
    pub fn apply_matrix2_reference(&mut self, q: u32, m: [[C64; 2]; 2]) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let stride = 1usize << q;
        let n = self.amps.len();
        let mut base = 0;
        while base < n {
            for i in base..base + stride {
                let a0 = self.amps[i];
                let a1 = self.amps[i + stride];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[i + stride] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += stride << 1;
        }
    }

    /// Applies RX(θ) = exp(-iθX/2).
    pub fn apply_rx(&mut self, q: u32, theta: f64) {
        self.apply_matrix2(q, kernels::mat_rx(theta));
    }

    /// Applies RY(θ) = exp(-iθY/2).
    pub fn apply_ry(&mut self, q: u32, theta: f64) {
        self.apply_matrix2(q, kernels::mat_ry(theta));
    }

    /// Applies RZ(θ) = exp(-iθZ/2).
    pub fn apply_rz(&mut self, q: u32, theta: f64) {
        self.apply_matrix2(q, kernels::mat_rz(theta));
    }

    /// Applies a controlled-Z between two qubits via the enumerating
    /// kernel (visits the n/4 affected amplitudes instead of scanning n).
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range or they coincide.
    pub fn apply_cz(&mut self, a: u32, b: u32) {
        assert!(a < self.n_qubits && b < self.n_qubits, "qubit out of range");
        assert_ne!(a, b, "CZ operands must differ");
        kernels::apply_cz(&mut self.amps, a, b);
    }

    /// The scanning reference implementation `apply_cz` historically was.
    /// Kept (hidden) for the differential harness and kernel benches.
    #[doc(hidden)]
    pub fn apply_cz_reference(&mut self, a: u32, b: u32) {
        assert!(a < self.n_qubits && b < self.n_qubits, "qubit out of range");
        assert_ne!(a, b, "CZ operands must differ");
        let ma = 1usize << a;
        let mb = 1usize << b;
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & ma != 0 && i & mb != 0 {
                *amp = -*amp;
            }
        }
    }

    /// Executes a lowered plan (see [`fuse::plan`]): kernel runs in one
    /// sweep each, CZs via the enumerating kernel.
    ///
    /// # Panics
    ///
    /// Panics if the plan references qubits outside this state vector.
    pub fn apply_plan(&mut self, plan: &ExecPlan) {
        for op in &plan.ops {
            match op {
                PlanOp::Run { qubit, kernels: ks } => {
                    assert!(*qubit < self.n_qubits, "qubit {qubit} out of range");
                    kernels::apply_run(&mut self.amps, *qubit, ks);
                }
                PlanOp::Cz { a, b } => self.apply_cz(*a, *b),
            }
        }
    }

    /// Runs all gate operations of a *bound, native* circuit (measurements
    /// are ignored here; use [`StateVector::sample`] afterwards). Lowers
    /// through [`fuse::plan`] with fusion off — callers that want fused
    /// execution plan once and use [`StateVector::apply_plan`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::NonNativeGate`] for non-native gates and
    /// [`QuantumError::UnboundParameter`] for symbolic angles.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), QuantumError> {
        let plan = fuse::plan(circuit, false)?;
        self.apply_plan(&plan);
        Ok(())
    }

    /// The probability that measuring qubit `q` yields 1.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn probability_of_one(&self, q: u32) -> f64 {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// ⟨Z⟩ on qubit `q`.
    pub fn expectation_z(&self, q: u32) -> f64 {
        1.0 - 2.0 * self.probability_of_one(q)
    }

    /// Expectation of a product of Z operators over `qubits`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn expectation_z_product(&self, qubits: &[u32]) -> f64 {
        let mut mask = 0usize;
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
            mask |= 1usize << q;
        }
        self.amps
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let sign = if (i & mask).count_ones().is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                sign * a.norm_sqr()
            })
            .sum()
    }

    /// The cumulative probability distribution over basis states plus its
    /// total mass (clamped away from zero), ready for inverse sampling.
    /// Summation runs in basis-state order, so the distribution — and
    /// therefore every draw made from it — is identical no matter which
    /// thread or shard computes it.
    pub fn cumulative_distribution(&self) -> (Vec<f64>, f64) {
        let mut cumulative = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0;
        for a in &self.amps {
            acc += a.norm_sqr();
            cumulative.push(acc);
        }
        (cumulative, acc.max(f64::MIN_POSITIVE))
    }

    /// Draws `shots` full measurement outcomes.
    pub fn sample<R: Rng>(&self, rng: &mut R, shots: u64) -> Vec<BitString> {
        // Cumulative distribution over basis states, then inverse sampling.
        let (cumulative, total) = self.cumulative_distribution();
        (0..shots)
            .map(|_| {
                let r: f64 = rng.gen::<f64>() * total;
                let idx = cumulative.partition_point(|&c| c < r);
                BitString::from_u64(idx.min(self.amps.len() - 1) as u64, self.n_qubits)
            })
            .collect()
    }

    /// Total probability (should be 1 within floating-point error).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn initial_state_is_all_zeros() {
        let sv = StateVector::new(3).unwrap();
        assert_eq!(sv.amplitude(0), C64::ONE);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
        assert_eq!(sv.expectation_z(0), 1.0);
    }

    #[test]
    fn too_many_qubits_rejected() {
        assert!(StateVector::new(EXACT_QUBIT_LIMIT + 1).is_err());
    }

    #[test]
    fn rx_pi_flips() {
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_rx(0, PI);
        assert!((sv.probability_of_one(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ry_half_pi_is_plus_state() {
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_ry(0, FRAC_PI_2);
        assert!((sv.probability_of_one(0) - 0.5).abs() < 1e-12);
        // RY(π/2)|0> = (|0>+|1>)/√2 with real positive amplitudes.
        assert!((sv.amplitude(0).re - 1.0 / 2f64.sqrt()).abs() < 1e-12);
        assert!((sv.amplitude(1).re - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rz_preserves_populations() {
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_ry(0, 1.234);
        let p_before = sv.probability_of_one(0);
        sv.apply_rz(0, 0.77);
        assert!((sv.probability_of_one(0) - p_before).abs() < 1e-12);
    }

    #[test]
    fn cz_entangles_plus_states_into_bell_basis() {
        // (H⊗H)|00>, then CZ, then H on qubit 1 gives a Bell state with
        // perfect ZZ correlation.
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_ry(0, FRAC_PI_2);
        sv.apply_ry(1, FRAC_PI_2);
        sv.apply_cz(0, 1);
        sv.apply_ry(1, -FRAC_PI_2);
        let zz = sv.expectation_z_product(&[0, 1]);
        assert!((zz.abs() - 1.0).abs() < 1e-10, "zz={zz}");
    }

    #[test]
    fn cz_is_symmetric_and_involutive() {
        let mut a = StateVector::new(2).unwrap();
        a.apply_ry(0, 0.3);
        a.apply_ry(1, 1.1);
        let mut b = a.clone();
        a.apply_cz(0, 1);
        b.apply_cz(1, 0);
        for i in 0..4 {
            assert!((a.amplitude(i).re - b.amplitude(i).re).abs() < 1e-12);
            assert!((a.amplitude(i).im - b.amplitude(i).im).abs() < 1e-12);
        }
        a.apply_cz(0, 1);
        // Applying CZ twice restores the pre-CZ state.
        for i in 0..4 {
            assert!((a.amplitude(i).re - b.amplitude(i).re).abs() > -1.0); // sanity
        }
    }

    #[test]
    fn expectation_z_tracks_rotation() {
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_ry(0, 1.0);
        assert!((sv.expectation_z(0) - 1.0f64.cos()).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_ry(0, FRAC_PI_2); // 50/50
        let shots = sv.sample(&mut rng(), 4000);
        let ones: u32 = shots.iter().map(|b| b.count_ones()).sum();
        let frac = ones as f64 / 4000.0;
        assert!((frac - 0.5).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn apply_circuit_runs_native_and_rejects_symbolic() {
        use crate::gate::ParamId;
        let mut c = Circuit::new(2);
        c.ry(0, FRAC_PI_2).cz(0, 1).measure_all();
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_circuit(&c).unwrap();
        assert!((sv.norm() - 1.0).abs() < 1e-12);

        let mut sym = Circuit::new(1);
        sym.ry_param(0, ParamId::new(0));
        let mut sv = StateVector::new(1).unwrap();
        assert!(matches!(
            sv.apply_circuit(&sym),
            Err(QuantumError::UnboundParameter { .. })
        ));
    }

    #[test]
    fn apply_circuit_rejects_non_native() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mut sv = StateVector::new(1).unwrap();
        assert!(matches!(
            sv.apply_circuit(&c),
            Err(QuantumError::NonNativeGate { gate: "H" })
        ));
    }

    #[test]
    fn norm_is_preserved_by_long_random_circuit() {
        let mut sv = StateVector::new(4).unwrap();
        let mut r = rng();
        for i in 0..200 {
            let q = i % 4;
            match i % 3 {
                0 => sv.apply_rx(q, r.gen::<f64>() * PI),
                1 => sv.apply_ry(q, r.gen::<f64>() * PI),
                _ => sv.apply_rz(q, r.gen::<f64>() * PI),
            }
            if i % 5 == 0 {
                sv.apply_cz(q, (q + 1) % 4);
            }
        }
        assert!((sv.norm() - 1.0).abs() < 1e-9);
    }
}
