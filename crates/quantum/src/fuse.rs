//! Deterministic gate-fusion planning.
//!
//! [`plan`] lowers a bound native circuit into an [`ExecPlan`]: a list of
//! single-qubit kernel *runs* and CZ applications. With fusion enabled,
//! maximal runs of **adjacent** gates on the **same qubit** collapse into
//! one run that [`crate::kernels::apply_run`] executes in a single memory
//! sweep. Planning is a pure function of the circuit and the fusion flag
//! — it never consults thread count, shard layout, or timing — so every
//! shard of every job lowers the same circuit to the same plan and
//! results are identical across `--threads`.
//!
//! Fusion rules (the boring-on-purpose subset that preserves bitwise
//! equality with unfused execution; DESIGN.md §13):
//!
//! - only *adjacent* same-qubit single-qubit gates join a run — a gate on
//!   any other qubit redirects the open run even when the two would
//!   commute mathematically, because "commutes" is not "bit-identical";
//! - CZ is a barrier: it closes every open run, and never fuses itself;
//! - a measurement closes the open run on **its own qubit only** (the
//!   simulator samples all qubits at the end, so measurement is a no-op
//!   here; it still barriers its qubit so the plan shape matches program
//!   intent);
//! - kernels whose matrix is the bit-exact identity (see
//!   [`Kernel1Q::is_identity`]) are elided. Elision is applied whether or
//!   not fusion is on — it is a plan-level decision, so the fused and
//!   unfused plans always contain exactly the same kernels and stay
//!   bitwise interchangeable. An elided gate leaves the open run open:
//!   dropping a no-op cannot un-adjoin its neighbours.

use serde::{Deserialize, Serialize};

use crate::circuit::Circuit;
use crate::gate::{Angle, Gate};
use crate::kernels::{compose, mat_rx, mat_ry, mat_rz, Kernel1Q, KernelClass, Mat2};
use crate::statevector::C64;
use crate::QuantumError;

/// One step of an execution plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// A run of single-qubit kernels on one qubit, applied in order in a
    /// single sweep.
    Run {
        /// Target qubit.
        qubit: u32,
        /// The kernels, in program order.
        kernels: Vec<Kernel1Q>,
    },
    /// A controlled-Z between two qubits.
    Cz {
        /// First operand.
        a: u32,
        /// Second operand.
        b: u32,
    },
}

/// Accounting for one lowering pass (and, additively, for a whole run's
/// worth of them — see [`FuseStats::absorb`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FuseStats {
    /// Native gate operations seen (measurements excluded).
    pub gates_in: u64,
    /// Gates that landed in a multi-gate run (sum of run lengths over
    /// runs of ≥ 2 kernels).
    pub gates_fused: u64,
    /// Single-qubit runs emitted.
    pub runs: u64,
    /// Runs of ≥ 2 kernels.
    pub fused_runs: u64,
    /// Bit-exact identity kernels dropped at plan level.
    pub identities_elided: u64,
    /// Diagonal kernels emitted.
    pub diag_kernels: u64,
    /// General 2×2 kernels emitted.
    pub general_kernels: u64,
    /// CZ applications emitted.
    pub cz_kernels: u64,
}

impl FuseStats {
    /// Whether this is the all-zero accounting (no exact-backend circuit
    /// was ever lowered). Metric export is gated on this so runs that
    /// never touch the statevector stay byte-identical.
    pub fn is_empty(&self) -> bool {
        *self == FuseStats::default()
    }

    /// Adds another accounting into this one.
    pub fn absorb(&mut self, other: &FuseStats) {
        self.gates_in += other.gates_in;
        self.gates_fused += other.gates_fused;
        self.runs += other.runs;
        self.fused_runs += other.fused_runs;
        self.identities_elided += other.identities_elided;
        self.diag_kernels += other.diag_kernels;
        self.general_kernels += other.general_kernels;
        self.cz_kernels += other.cz_kernels;
    }
}

/// A lowered circuit, ready for [`crate::StateVector::apply_plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPlan {
    /// The plan steps, in program order.
    pub ops: Vec<PlanOp>,
    /// Lowering statistics.
    pub stats: FuseStats,
}

/// Lowers a bound native circuit to an execution plan.
///
/// With `fuse` off, every surviving kernel becomes its own length-1 run;
/// with it on, adjacent same-qubit kernels share a run. Either way the
/// plans contain exactly the same kernels in the same order, which is
/// what makes `--no-fuse` a pure performance toggle.
///
/// # Errors
///
/// Returns [`QuantumError::NonNativeGate`] for non-native gates and
/// [`QuantumError::UnboundParameter`] for symbolic angles — the same
/// contract as the pre-kernel `apply_circuit`.
pub fn plan(circuit: &Circuit, fuse: bool) -> Result<ExecPlan, QuantumError> {
    let mut ops: Vec<PlanOp> = Vec::new();
    let mut stats = FuseStats::default();
    // The open run: (qubit, index into `ops`). Only the most recent run
    // can accept another kernel, and only while nothing redirected it.
    let mut open: Option<(u32, usize)> = None;
    for op in circuit.operations() {
        match op.gate {
            Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) => {
                let theta = match a {
                    Angle::Value(v) => v,
                    Angle::Param { param, .. } => {
                        return Err(QuantumError::UnboundParameter { param })
                    }
                };
                let m = match op.gate {
                    Gate::Rx(_) => mat_rx(theta),
                    Gate::Ry(_) => mat_ry(theta),
                    Gate::Rz(_) => mat_rz(theta),
                    _ => unreachable!(),
                };
                stats.gates_in += 1;
                let kernel = Kernel1Q::from_matrix(m);
                if kernel.is_identity() {
                    // Dropped in fused AND unfused plans; the open run
                    // stays open across the no-op.
                    stats.identities_elided += 1;
                    continue;
                }
                match kernel.class() {
                    KernelClass::Diag => stats.diag_kernels += 1,
                    KernelClass::General => stats.general_kernels += 1,
                }
                match open {
                    Some((q, idx)) if fuse && q == op.qubit => {
                        if let PlanOp::Run { kernels, .. } = &mut ops[idx] {
                            kernels.push(kernel);
                        }
                    }
                    _ => {
                        ops.push(PlanOp::Run {
                            qubit: op.qubit,
                            kernels: vec![kernel],
                        });
                        open = Some((op.qubit, ops.len() - 1));
                    }
                }
            }
            Gate::Cz => {
                stats.gates_in += 1;
                stats.cz_kernels += 1;
                ops.push(PlanOp::Cz {
                    a: op.qubit,
                    b: op.qubit2.expect("CZ has two operands"),
                });
                open = None;
            }
            Gate::Measure => {
                if let Some((q, _)) = open {
                    if q == op.qubit {
                        open = None;
                    }
                }
            }
            other => {
                return Err(QuantumError::NonNativeGate { gate: other.name() });
            }
        }
    }
    for op in &ops {
        if let PlanOp::Run { kernels, .. } = op {
            stats.runs += 1;
            if kernels.len() >= 2 {
                stats.fused_runs += 1;
                stats.gates_fused += kernels.len() as u64;
            }
        }
    }
    Ok(ExecPlan { ops, stats })
}

/// The net 2×2 matrix of a kernel run (first kernel applied first).
///
/// **Analysis only** — execution never multiplies matrices (see
/// [`compose`]); the fusion-algebra tests use this to check identities
/// like RZ(a) then RZ(b) ≈ RZ(a+b).
pub fn run_matrix(kernels: &[Kernel1Q]) -> Mat2 {
    let mut m = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];
    for k in kernels {
        m = compose(&k.matrix(), &m);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs(plan: &ExecPlan) -> Vec<(u32, usize)> {
        plan.ops
            .iter()
            .filter_map(|op| match op {
                PlanOp::Run { qubit, kernels } => Some((*qubit, kernels.len())),
                PlanOp::Cz { .. } => None,
            })
            .collect()
    }

    #[test]
    fn adjacent_same_qubit_gates_fuse_into_one_run() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.3).rx(0, 0.7).ry(0, -0.2).rz(1, 0.5);
        let fused = plan(&c, true).unwrap();
        assert_eq!(runs(&fused), vec![(0, 3), (1, 1)]);
        assert_eq!(fused.stats.gates_in, 4);
        assert_eq!(fused.stats.gates_fused, 3);
        assert_eq!(fused.stats.runs, 2);
        assert_eq!(fused.stats.fused_runs, 1);
        let unfused = plan(&c, false).unwrap();
        assert_eq!(runs(&unfused), vec![(0, 1), (0, 1), (0, 1), (1, 1)]);
        assert_eq!(unfused.stats.gates_fused, 0);
    }

    #[test]
    fn cz_is_a_fusion_barrier() {
        let mut c = Circuit::new(2);
        c.rx(0, 0.4).cz(0, 1).rx(0, 0.4);
        let p = plan(&c, true).unwrap();
        assert_eq!(p.ops.len(), 3);
        assert_eq!(runs(&p), vec![(0, 1), (0, 1)]);
        assert_eq!(p.stats.fused_runs, 0);
        assert_eq!(p.stats.cz_kernels, 1);
    }

    #[test]
    fn other_qubit_gate_redirects_the_open_run() {
        let mut c = Circuit::new(2);
        c.rx(0, 0.4).rx(1, 0.5).rx(0, 0.6);
        let p = plan(&c, true).unwrap();
        // q0's run is closed by the q1 gate even though RX⊗RX commute.
        assert_eq!(runs(&p), vec![(0, 1), (1, 1), (0, 1)]);
    }

    #[test]
    fn measure_barriers_only_its_own_qubit() {
        let mut c = Circuit::new(2);
        c.rx(0, 0.4).measure(1).rx(0, 0.5);
        let p = plan(&c, true).unwrap();
        assert_eq!(runs(&p), vec![(0, 2)]);

        let mut c = Circuit::new(2);
        c.rx(0, 0.4).measure(0).rx(0, 0.5);
        let p = plan(&c, true).unwrap();
        assert_eq!(runs(&p), vec![(0, 1), (0, 1)]);
    }

    #[test]
    fn identity_elision_is_fuse_independent_and_keeps_runs_open() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.3).rx(0, -0.0).rz(0, 0.4);
        for fuse in [true, false] {
            let p = plan(&c, fuse).unwrap();
            assert_eq!(p.stats.identities_elided, 1, "fuse={fuse}");
            assert_eq!(p.stats.diag_kernels, 2);
        }
        // With fusion, the two RZs sit in ONE run across the elided RX.
        assert_eq!(runs(&plan(&c, true).unwrap()), vec![(0, 2)]);
    }

    #[test]
    fn rz_zero_and_ry_negative_zero_are_not_elided() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.0).ry(0, -0.0);
        let p = plan(&c, false).unwrap();
        assert_eq!(p.stats.identities_elided, 0);
        assert_eq!(p.stats.runs, 2);
    }

    #[test]
    fn empty_and_measure_only_circuits_lower_to_empty_plans() {
        let c = Circuit::new(3);
        let p = plan(&c, true).unwrap();
        assert!(p.ops.is_empty());
        assert!(p.stats.is_empty());

        let mut m = Circuit::new(2);
        m.measure_all();
        let p = plan(&m, true).unwrap();
        assert!(p.ops.is_empty());
        assert!(p.stats.is_empty());
    }

    #[test]
    fn plan_propagates_circuit_errors() {
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(matches!(
            plan(&c, true),
            Err(QuantumError::NonNativeGate { gate: "H" })
        ));
        let mut sym = Circuit::new(1);
        sym.ry_param(0, crate::gate::ParamId::new(0));
        assert!(matches!(
            plan(&sym, true),
            Err(QuantumError::UnboundParameter { .. })
        ));
    }

    #[test]
    fn stats_absorb_adds_fieldwise() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.3).rx(0, 0.7).cz(0, 1);
        let p = plan(&c, true).unwrap();
        let mut acc = FuseStats::default();
        acc.absorb(&p.stats);
        acc.absorb(&p.stats);
        assert_eq!(acc.gates_in, 2 * p.stats.gates_in);
        assert_eq!(acc.cz_kernels, 2);
        assert!(!acc.is_empty());
    }

    #[test]
    fn run_matrix_matches_rz_angle_addition() {
        let kernels = [
            Kernel1Q::from_matrix(mat_rz(0.3)),
            Kernel1Q::from_matrix(mat_rz(0.8)),
        ];
        let net = run_matrix(&kernels);
        let direct = mat_rz(1.1);
        for r in 0..2 {
            for c in 0..2 {
                assert!((net[r][c].re - direct[r][c].re).abs() < 1e-12);
                assert!((net[r][c].im - direct[r][c].im).abs() < 1e-12);
            }
        }
    }
}
