//! The parameterised quantum circuit IR.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::gate::{Angle, Gate, ParamId};
use crate::QuantumError;

/// One gate application within a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    /// The gate applied.
    pub gate: Gate,
    /// Target qubit (single-qubit gates) or first operand (two-qubit).
    pub qubit: u32,
    /// Second operand for two-qubit gates.
    pub qubit2: Option<u32>,
}

impl Operation {
    /// The qubits this operation touches.
    pub fn qubits(&self) -> impl Iterator<Item = u32> + '_ {
        std::iter::once(self.qubit).chain(self.qubit2)
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.qubit2 {
            Some(q2) => write!(f, "{} q{}, q{}", self.gate, self.qubit, q2),
            None => write!(f, "{} q{}", self.gate, self.qubit),
        }
    }
}

/// A quantum circuit over `n_qubits` qubits, possibly containing symbolic
/// parameters.
///
/// Builder methods return `&mut Self` so circuits can be written fluently;
/// they panic on out-of-range qubits (use [`Circuit::push`] for the
/// fallible form).
///
/// # Examples
///
/// ```
/// use qtenon_quantum::{Circuit, ParamId};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1).measure_all();
/// assert_eq!(bell.operations().len(), 4);
///
/// let mut var = Circuit::new(1);
/// var.ry_param(0, ParamId::new(0));
/// assert_eq!(var.num_params(), 1);
/// let bound = var.bind(&[1.57]).unwrap();
/// assert_eq!(bound.num_params(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Circuit {
    n_qubits: u32,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` qubits.
    pub fn new(n_qubits: u32) -> Self {
        Circuit {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// The circuit width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// The operations in program order.
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// Appends an operation, validating its operands.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::QubitOutOfRange`] or
    /// [`QuantumError::DuplicateQubit`] for bad operands.
    pub fn push(&mut self, op: Operation) -> Result<&mut Self, QuantumError> {
        for q in op.qubits() {
            if q >= self.n_qubits {
                return Err(QuantumError::QubitOutOfRange {
                    qubit: q,
                    n_qubits: self.n_qubits,
                });
            }
        }
        if op.qubit2 == Some(op.qubit) {
            return Err(QuantumError::DuplicateQubit { qubit: op.qubit });
        }
        debug_assert_eq!(
            op.gate.arity(),
            if op.qubit2.is_some() { 2 } else { 1 },
            "operand count must match gate arity"
        );
        self.ops.push(op);
        Ok(self)
    }

    fn push_expect(&mut self, gate: Gate, qubit: u32, qubit2: Option<u32>) -> &mut Self {
        self.push(Operation {
            gate,
            qubit,
            qubit2,
        })
        .expect("invalid circuit operation");
        self
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.push_expect(Gate::H, q, None)
    }

    /// Appends a Pauli-X.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.push_expect(Gate::X, q, None)
    }

    /// Appends an X rotation by a literal angle.
    pub fn rx(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push_expect(Gate::Rx(Angle::Value(theta)), q, None)
    }

    /// Appends a Y rotation by a literal angle.
    pub fn ry(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push_expect(Gate::Ry(Angle::Value(theta)), q, None)
    }

    /// Appends a Z rotation by a literal angle.
    pub fn rz(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push_expect(Gate::Rz(Angle::Value(theta)), q, None)
    }

    /// Appends an X rotation by a parameter.
    pub fn rx_param(&mut self, q: u32, p: ParamId) -> &mut Self {
        self.push_expect(Gate::Rx(Angle::param(p)), q, None)
    }

    /// Appends a Y rotation by a parameter.
    pub fn ry_param(&mut self, q: u32, p: ParamId) -> &mut Self {
        self.push_expect(Gate::Ry(Angle::param(p)), q, None)
    }

    /// Appends a Z rotation by a parameter.
    pub fn rz_param(&mut self, q: u32, p: ParamId) -> &mut Self {
        self.push_expect(Gate::Rz(Angle::param(p)), q, None)
    }

    /// Appends a Z rotation by `scale × θ[p]`.
    pub fn rz_scaled_param(&mut self, q: u32, p: ParamId, scale: f64) -> &mut Self {
        self.push_expect(Gate::Rz(Angle::scaled_param(p, scale)), q, None)
    }

    /// Appends an X rotation by `scale × θ[p]`.
    pub fn rx_scaled_param(&mut self, q: u32, p: ParamId, scale: f64) -> &mut Self {
        self.push_expect(Gate::Rx(Angle::scaled_param(p, scale)), q, None)
    }

    /// Appends a CNOT.
    pub fn cx(&mut self, control: u32, target: u32) -> &mut Self {
        self.push_expect(Gate::Cx, control, Some(target))
    }

    /// Appends a controlled-Z.
    pub fn cz(&mut self, a: u32, b: u32) -> &mut Self {
        self.push_expect(Gate::Cz, a, Some(b))
    }

    /// Appends a measurement of one qubit.
    pub fn measure(&mut self, q: u32) -> &mut Self {
        self.push_expect(Gate::Measure, q, None)
    }

    /// Appends measurements of every qubit.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.n_qubits {
            self.measure(q);
        }
        self
    }

    /// The number of distinct parameters referenced (parameters are
    /// expected to be numbered densely from zero; the count is
    /// `max_id + 1`).
    pub fn num_params(&self) -> usize {
        self.ops
            .iter()
            .filter_map(|op| op.gate.angle().and_then(|a| a.param_id()))
            .map(|p| p.index() as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Binds all symbolic parameters, producing a fully concrete circuit.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::ParameterCountMismatch`] if `params` is
    /// shorter than [`Circuit::num_params`].
    pub fn bind(&self, params: &[f64]) -> Result<Circuit, QuantumError> {
        let needed = self.num_params();
        if params.len() < needed {
            return Err(QuantumError::ParameterCountMismatch {
                expected: needed,
                got: params.len(),
            });
        }
        let mut out = Circuit::new(self.n_qubits);
        for op in &self.ops {
            let gate = match op.gate {
                Gate::Rx(a) => Gate::Rx(Angle::Value(a.resolve(params).expect("checked above"))),
                Gate::Ry(a) => Gate::Ry(Angle::Value(a.resolve(params).expect("checked above"))),
                Gate::Rz(a) => Gate::Rz(Angle::Value(a.resolve(params).expect("checked above"))),
                g => g,
            };
            out.ops.push(Operation { gate, ..*op });
        }
        Ok(out)
    }

    /// Counts operations by kind: `(single_qubit, two_qubit, measure)`.
    pub fn gate_census(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for op in &self.ops {
            match op.gate {
                Gate::Measure => counts.2 += 1,
                g if g.arity() == 2 => counts.1 += 1,
                _ => counts.0 += 1,
            }
        }
        counts
    }

    /// Iterates over the parameterised operations with their indices.
    pub fn parameterised_ops(&self) -> impl Iterator<Item = (usize, &Operation)> + '_ {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.gate.angle().and_then(|a| a.param_id()).is_some())
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} ops):",
            self.n_qubits,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_census() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2).rx(2, 0.5).measure_all();
        assert_eq!(c.gate_census(), (2, 2, 3));
        assert_eq!(c.operations().len(), 7);
    }

    #[test]
    fn push_validates_operands() {
        let mut c = Circuit::new(2);
        assert!(matches!(
            c.push(Operation {
                gate: Gate::H,
                qubit: 2,
                qubit2: None
            }),
            Err(QuantumError::QubitOutOfRange { qubit: 2, .. })
        ));
        assert!(matches!(
            c.push(Operation {
                gate: Gate::Cz,
                qubit: 1,
                qubit2: Some(1)
            }),
            Err(QuantumError::DuplicateQubit { qubit: 1 })
        ));
    }

    #[test]
    #[should_panic(expected = "invalid circuit operation")]
    fn fluent_builder_panics_on_bad_qubit() {
        let mut c = Circuit::new(1);
        c.h(5);
    }

    #[test]
    fn num_params_is_dense_max() {
        let mut c = Circuit::new(2);
        c.ry_param(0, ParamId::new(0)).ry_param(1, ParamId::new(2));
        assert_eq!(c.num_params(), 3);
    }

    #[test]
    fn bind_substitutes_and_scales() {
        let mut c = Circuit::new(1);
        c.rz_scaled_param(0, ParamId::new(0), 2.0);
        let b = c.bind(&[0.25]).unwrap();
        match b.operations()[0].gate {
            Gate::Rz(Angle::Value(v)) => assert!((v - 0.5).abs() < 1e-12),
            ref g => panic!("unexpected gate {g:?}"),
        }
        assert_eq!(b.num_params(), 0);
    }

    #[test]
    fn bind_rejects_short_vector() {
        let mut c = Circuit::new(1);
        c.ry_param(0, ParamId::new(4));
        assert!(matches!(
            c.bind(&[0.0; 3]),
            Err(QuantumError::ParameterCountMismatch {
                expected: 5,
                got: 3
            })
        ));
    }

    #[test]
    fn parameterised_ops_enumeration() {
        let mut c = Circuit::new(2);
        c.h(0)
            .ry_param(0, ParamId::new(0))
            .cz(0, 1)
            .rx_param(1, ParamId::new(1));
        let idxs: Vec<usize> = c.parameterised_ops().map(|(i, _)| i).collect();
        assert_eq!(idxs, vec![1, 3]);
    }

    #[test]
    fn display_lists_ops() {
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1);
        let s = c.to_string();
        assert!(s.contains("H q0"));
        assert!(s.contains("CZ q0, q1"));
    }
}
