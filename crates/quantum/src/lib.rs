//! Quantum substrate for the Qtenon reproduction.
//!
//! The paper takes quantum-chip input/output from Qiskit simulations; this
//! crate is the from-scratch replacement. It provides:
//!
//! - [`gate`] / [`circuit`]: a parameterised quantum circuit IR;
//! - [`transpile`]: lowering to the Qtenon chip's native gate set
//!   `{RX, RY, RZ, CZ}` + measurement;
//! - [`statevector`]: an exact state-vector simulator (used up to
//!   [`sim::EXACT_QUBIT_LIMIT`] qubits), executing through the
//!   cache-blocked gate kernels in [`kernels`] with deterministic gate
//!   fusion planned by [`fuse`];
//! - [`sim::MeanFieldState`]: a product-state (mean-field) approximation
//!   that scales to the paper's 320-qubit experiments — measurement
//!   statistics stay parameter-responsive while timing is unaffected,
//!   which is all the evaluation needs (see DESIGN.md substitutions);
//! - [`hamiltonian`]: diagonal (Z-basis) Hamiltonians for MAX-CUT, Ising
//!   chemistry encodings, and QNN losses, with expectation evaluation;
//! - [`timing`]: the analytic circuit-duration model with the paper's gate
//!   times (single-qubit 20 ns, two-qubit 40 ns, measurement 600 ns).
//!
//! # Examples
//!
//! ```
//! use qtenon_quantum::{Circuit, sim::Simulator};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).measure_all();
//! let native = qtenon_quantum::transpile::to_native(&c)?;
//! let mut sim = Simulator::auto(2, 42);
//! let shots = sim.run(&native, 100)?;
//! assert_eq!(shots.len(), 100);
//! # Ok::<(), qtenon_quantum::QuantumError>(())
//! ```

pub mod bits;
pub mod circuit;
pub mod fuse;
pub mod gate;
pub mod hamiltonian;
pub mod kernels;
pub mod noise;
pub mod qasm;
pub mod sim;
pub mod statevector;
pub mod timing;
pub mod transpile;

pub use bits::BitString;
pub use circuit::{Circuit, Operation};
pub use fuse::{ExecPlan, FuseStats};
pub use gate::{Angle, Gate, ParamId};
pub use hamiltonian::{Hamiltonian, PauliTerm};
pub use kernels::{Kernel1Q, KernelClass};
pub use sim::{PreparedCircuit, Simulator};
pub use statevector::StateVector;
pub use timing::{CircuitTiming, GateTimes};

use std::fmt;

/// Errors from circuit construction and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantumError {
    /// A qubit index exceeded the circuit width.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: u32,
        /// The circuit width.
        n_qubits: u32,
    },
    /// A two-qubit gate named the same qubit twice.
    DuplicateQubit {
        /// The repeated qubit index.
        qubit: u32,
    },
    /// A parameterised circuit was executed without binding parameters.
    UnboundParameter {
        /// The unbound parameter.
        param: ParamId,
    },
    /// A parameter vector had the wrong length.
    ParameterCountMismatch {
        /// Parameters expected by the circuit.
        expected: usize,
        /// Parameters supplied.
        got: usize,
    },
    /// A gate outside the native set reached a native-only consumer.
    NonNativeGate {
        /// Name of the offending gate.
        gate: &'static str,
    },
    /// The exact simulator was asked for more qubits than it can hold.
    TooManyQubits {
        /// Requested width.
        n_qubits: u32,
        /// Supported maximum.
        limit: u32,
    },
}

impl fmt::Display for QuantumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantumError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit {qubit} out of range for {n_qubits}-qubit circuit")
            }
            QuantumError::DuplicateQubit { qubit } => {
                write!(f, "two-qubit gate names qubit {qubit} twice")
            }
            QuantumError::UnboundParameter { param } => {
                write!(f, "parameter {param} is unbound")
            }
            QuantumError::ParameterCountMismatch { expected, got } => {
                write!(f, "expected {expected} parameters, got {got}")
            }
            QuantumError::NonNativeGate { gate } => {
                write!(f, "gate {gate} is not in the native set; transpile first")
            }
            QuantumError::TooManyQubits { n_qubits, limit } => {
                write!(
                    f,
                    "{n_qubits} qubits exceed the exact-simulation limit of {limit}"
                )
            }
        }
    }
}

impl std::error::Error for QuantumError {}
