//! OpenQASM 2.0 subset: parsing and emission.
//!
//! The paper's baseline flow generates circuits with Qiskit and compiles
//! them through OpenQASM (Section 7.1); eQASM is likewise "translated
//! from OpenQASM". This module implements the subset those flows need:
//! one quantum register, the gates this crate models (`h`, `x`, `y`, `z`,
//! `s`, `t`, `rx`, `ry`, `rz`, `cx`, `cz`), and `measure`.
//!
//! # Examples
//!
//! ```
//! use qtenon_quantum::qasm;
//!
//! let src = r#"
//!     OPENQASM 2.0;
//!     include "qelib1.inc";
//!     qreg q[2];
//!     creg c[2];
//!     h q[0];
//!     cx q[0], q[1];
//!     measure q[0] -> c[0];
//!     measure q[1] -> c[1];
//! "#;
//! let circuit = qasm::parse(src)?;
//! assert_eq!(circuit.n_qubits(), 2);
//! let text = qasm::emit(&circuit);
//! assert_eq!(qasm::parse(&text)?, circuit);
//! # Ok::<(), qtenon_quantum::qasm::QasmError>(())
//! ```

use std::fmt;

use crate::circuit::{Circuit, Operation};
use crate::gate::{Angle, Gate};

/// Errors from QASM parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmError {
    /// 1-based line of the failure (0 when global).
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qasm error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for QasmError {}

fn err(line: usize, message: impl Into<String>) -> QasmError {
    QasmError {
        line,
        message: message.into(),
    }
}

/// Parses an OpenQASM 2.0 subset program into a [`Circuit`].
///
/// Supported statements: the `OPENQASM` header, `include`, one `qreg`,
/// any number of `creg`s (sizes ignored), the gate set listed in the
/// module docs, `measure q[i] -> c[j]`, and `barrier` (a scheduling
/// no-op here). Comments (`//`) are stripped.
///
/// # Errors
///
/// Returns [`QasmError`] with the offending line for anything else.
pub fn parse(source: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut pending: Vec<(usize, String)> = Vec::new();

    // Split into ';'-terminated statements, tracking line numbers.
    for (lineno, raw) in source.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if !stmt.is_empty() {
                pending.push((lineno + 1, stmt.to_string()));
            }
        }
    }

    for (lineno, stmt) in pending {
        let (head, rest) = stmt
            .split_once(char::is_whitespace)
            .map(|(h, r)| (h, r.trim()))
            .unwrap_or((stmt.as_str(), ""));
        let head_name = head.split('(').next().unwrap_or(head);
        match head_name {
            "OPENQASM" | "include" | "creg" | "barrier" => {}
            "qreg" => {
                if circuit.is_some() {
                    return Err(err(lineno, "multiple qreg declarations are not supported"));
                }
                let size = parse_index(rest, lineno)?;
                circuit = Some(Circuit::new(size));
            }
            "measure" => {
                let c = circuit
                    .as_mut()
                    .ok_or_else(|| err(lineno, "measure before qreg"))?;
                let src = rest.split("->").next().unwrap_or(rest).trim();
                let q = parse_index(src, lineno)?;
                c.push(Operation {
                    gate: Gate::Measure,
                    qubit: q,
                    qubit2: None,
                })
                .map_err(|e| err(lineno, e.to_string()))?;
            }
            name => {
                let c = circuit
                    .as_mut()
                    .ok_or_else(|| err(lineno, "gate before qreg"))?;
                let (gate, operands) = parse_gate(name, head, rest, lineno)?;
                let qubit2 = operands.get(1).copied();
                c.push(Operation {
                    gate,
                    qubit: operands[0],
                    qubit2,
                })
                .map_err(|e| err(lineno, e.to_string()))?;
            }
        }
    }

    circuit.ok_or_else(|| err(0, "no qreg declaration found"))
}

fn parse_gate(
    name: &str,
    head: &str,
    rest: &str,
    lineno: usize,
) -> Result<(Gate, Vec<u32>), QasmError> {
    // Rotation parameters may be attached to the head (`rz(0.5)`) since we
    // split on whitespace.
    let full = format!("{head} {rest}");
    let angle = || -> Result<Angle, QasmError> {
        let open = full
            .find('(')
            .ok_or_else(|| err(lineno, format!("{name} requires an angle")))?;
        let close = full[open..]
            .find(')')
            .map(|i| open + i)
            .ok_or_else(|| err(lineno, "unterminated angle"))?;
        let text = &full[open + 1..close];
        Ok(Angle::Value(parse_angle_expr(text, lineno)?))
    };
    let gate = match name {
        "h" => Gate::H,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "s" => Gate::S,
        "t" => Gate::T,
        "rx" => Gate::Rx(angle()?),
        "ry" => Gate::Ry(angle()?),
        "rz" | "u1" => Gate::Rz(angle()?),
        "cx" | "CX" => Gate::Cx,
        "cz" => Gate::Cz,
        other => return Err(err(lineno, format!("unsupported gate {other:?}"))),
    };
    // Operands are everything after the closing paren (if any).
    let operand_text = match full.find(')') {
        Some(i) => &full[i + 1..],
        None => rest,
    };
    let operands: Vec<u32> = operand_text
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_index(s, lineno))
        .collect::<Result<_, _>>()?;
    if operands.len() != gate.arity() {
        return Err(err(
            lineno,
            format!(
                "{name} expects {} operand(s), got {}",
                gate.arity(),
                operands.len()
            ),
        ));
    }
    Ok((gate, operands))
}

/// Parses `pi`-aware angle expressions: `0.5`, `pi`, `-pi/2`, `3*pi/4`,
/// `2pi`.
fn parse_angle_expr(text: &str, lineno: usize) -> Result<f64, QasmError> {
    let t: String = text.chars().filter(|c| !c.is_whitespace()).collect();
    let (num_text, denom) = match t.split_once('/') {
        Some((n, d)) => (
            n.to_string(),
            d.parse::<f64>()
                .map_err(|_| err(lineno, format!("bad denominator {d:?}")))?,
        ),
        None => (t.clone(), 1.0),
    };
    let parse_pi_factor = |s: &str| -> Result<f64, QasmError> {
        if let Some(stripped) = s.strip_suffix("pi") {
            let stripped = stripped.strip_suffix('*').unwrap_or(stripped);
            let factor = match stripped {
                "" => 1.0,
                "-" => -1.0,
                other => other
                    .parse::<f64>()
                    .map_err(|_| err(lineno, format!("bad angle {s:?}")))?,
            };
            Ok(factor * std::f64::consts::PI)
        } else {
            s.parse::<f64>()
                .map_err(|_| err(lineno, format!("bad angle {s:?}")))
        }
    };
    Ok(parse_pi_factor(&num_text)? / denom)
}

fn parse_index(text: &str, lineno: usize) -> Result<u32, QasmError> {
    let open = text
        .find('[')
        .ok_or_else(|| err(lineno, format!("expected register index in {text:?}")))?;
    let close = text
        .find(']')
        .ok_or_else(|| err(lineno, "unterminated index"))?;
    text[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(lineno, format!("bad index in {text:?}")))
}

/// Emits a circuit as OpenQASM 2.0 text.
///
/// Symbolic (unbound) angles are emitted as `rz(theta<N>)` placeholders,
/// which [`parse`] does not accept — bind the circuit first for a
/// round-trippable artifact.
pub fn emit(circuit: &Circuit) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "OPENQASM 2.0;");
    let _ = writeln!(out, "include \"qelib1.inc\";");
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    let _ = writeln!(out, "creg c[{}];", circuit.n_qubits());
    for op in circuit.operations() {
        let line = match op.gate {
            Gate::H => format!("h q[{}];", op.qubit),
            Gate::X => format!("x q[{}];", op.qubit),
            Gate::Y => format!("y q[{}];", op.qubit),
            Gate::Z => format!("z q[{}];", op.qubit),
            Gate::S => format!("s q[{}];", op.qubit),
            Gate::T => format!("t q[{}];", op.qubit),
            Gate::Rx(a) => format!("rx({}) q[{}];", emit_angle(a), op.qubit),
            Gate::Ry(a) => format!("ry({}) q[{}];", emit_angle(a), op.qubit),
            Gate::Rz(a) => format!("rz({}) q[{}];", emit_angle(a), op.qubit),
            Gate::Cx => format!(
                "cx q[{}], q[{}];",
                op.qubit,
                op.qubit2.expect("cx has two operands")
            ),
            Gate::Cz => format!(
                "cz q[{}], q[{}];",
                op.qubit,
                op.qubit2.expect("cz has two operands")
            ),
            Gate::Measure => format!("measure q[{0}] -> c[{0}];", op.qubit),
        };
        let _ = writeln!(out, "{line}");
    }
    out
}

fn emit_angle(a: Angle) -> String {
    match a {
        Angle::Value(v) => format!("{v:.12}"),
        Angle::Param { param, scale } => {
            if scale == 1.0 {
                format!("theta{}", param.index())
            } else {
                format!("{scale:.6}*theta{}", param.index())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn parses_bell_program() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            creg c[2];
            h q[0];
            cx q[0], q[1];
            measure q[0] -> c[0];
            measure q[1] -> c[1];
        "#;
        let c = parse(src).unwrap();
        assert_eq!(c.n_qubits(), 2);
        assert_eq!(c.operations().len(), 4);
        assert_eq!(c.operations()[0].gate, Gate::H);
        assert_eq!(c.operations()[1].gate, Gate::Cx);
    }

    #[test]
    fn parses_pi_expressions() {
        let src = "qreg q[1]; rz(pi/2) q[0]; rx(-pi/4) q[0]; ry(3*pi/4) q[0]; rz(2pi) q[0];";
        let c = parse(src).unwrap();
        let angles: Vec<f64> = c
            .operations()
            .iter()
            .map(|op| match op.gate.angle().unwrap() {
                Angle::Value(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert!((angles[0] - PI / 2.0).abs() < 1e-12);
        assert!((angles[1] + PI / 4.0).abs() < 1e-12);
        assert!((angles[2] - 3.0 * PI / 4.0).abs() < 1e-12);
        assert!((angles[3] - 2.0 * PI).abs() < 1e-12);
    }

    #[test]
    fn comments_and_semicolon_packing() {
        let src = "qreg q[1]; // register\nh q[0]; t q[0]; // two gates one line";
        let c = parse(src).unwrap();
        assert_eq!(c.operations().len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "qreg q[2];\nfoo q[0];";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unsupported gate"));
    }

    #[test]
    fn rejects_structural_mistakes() {
        assert!(parse("h q[0];").is_err()); // gate before qreg
        assert!(parse("qreg q[1]; qreg r[1];").is_err());
        assert!(parse("qreg q[2]; cx q[0];").is_err()); // missing operand
        assert!(parse("qreg q[1]; rx q[0];").is_err()); // missing angle
        assert!(parse("qreg q[1]; h q[5];").is_err()); // out of range
        assert!(parse("").is_err());
    }

    #[test]
    fn emit_parse_round_trip() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .cz(1, 2)
            .rx(2, 0.25)
            .ry(0, -1.5)
            .rz(1, PI)
            .measure_all();
        let text = emit(&c);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.n_qubits(), c.n_qubits());
        assert_eq!(parsed.operations().len(), c.operations().len());
        for (a, b) in parsed.operations().iter().zip(c.operations()) {
            assert_eq!(a.qubit, b.qubit);
            assert_eq!(a.qubit2, b.qubit2);
            match (a.gate.angle(), b.gate.angle()) {
                (Some(Angle::Value(x)), Some(Angle::Value(y))) => {
                    assert!((x - y).abs() < 1e-9)
                }
                _ => assert_eq!(a.gate.name(), b.gate.name()),
            }
        }
    }

    #[test]
    fn parsed_circuit_simulates_correctly() {
        use crate::statevector::StateVector;
        use crate::transpile;
        let src = "qreg q[2]; h q[0]; cx q[0], q[1];";
        let c = parse(src).unwrap();
        let native = transpile::to_native(&c).unwrap();
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_circuit(&native).unwrap();
        assert!((sv.expectation_z_product(&[0, 1]) - 1.0).abs() < 1e-10);
    }
}
