//! Differential kernel-equivalence harness (ISSUE 9 headline).
//!
//! Runs seeded random native circuits through three executions:
//!
//! (a) the **naive reference**: `apply_matrix2_reference` /
//!     `apply_cz_reference`, the scanning loops gate application used
//!     before the kernel layer existed;
//! (b) the **specialized kernels**: the unfused plan (every gate its own
//!     classified kernel sweep) — what `apply_circuit` runs today;
//! (c) the **fused plan**: adjacent same-qubit runs collapsed into
//!     single sweeps.
//!
//! and asserts amplitude equality at the f64 *bit* level:
//!
//! - (b) vs (c) must be **raw** bitwise identical, signs of zero
//!   included — fusion re-orders memory traffic, never arithmetic;
//! - (a) vs (b) must be bitwise identical after canonicalizing IEEE
//!   signed zeros (`-0.0 → +0.0`) and proving no NaNs: the diagonal
//!   kernel drops exactly-zero cross terms whose only observable effect
//!   is the sign of exactly-zero results, and every downstream artefact
//!   (probabilities, expectations, samples) squares that sign away.
//!
//! Sampled artefacts (the bitstrings jobs actually consume) must match
//! **byte-for-byte across all three paths**, serial and sharded — the
//! suite reads `QTENON_THREADS` so the CI determinism matrix exercises
//! both pool widths.

use qtenon_quantum::fuse::{plan, run_matrix};
use qtenon_quantum::kernels::{mat_rx, mat_ry, mat_rz, Kernel1Q};
use qtenon_quantum::sim::Simulator;
use qtenon_quantum::{Angle, BitString, Circuit, Gate, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Circuits per property sweep (the ISSUE floor is 200).
const CIRCUITS: usize = 200;

/// Builds a random native circuit at 2–10 qubits: rotations, CZs, and
/// interleaved measurements, with angles drawn from [-π, π). Uses only
/// `gen::<u64>`/`gen::<f64>` so the suite runs against any RNG that
/// provides the core `Rng` surface.
fn random_circuit(seed: u64) -> Circuit {
    let mut r = StdRng::seed_from_u64(seed);
    let n_qubits = 2 + (seed % 9) as u32; // 2..=10
    let mut c = Circuit::new(n_qubits);
    let ops = 20 + (r.gen::<u64>() % 31) as usize;
    for _ in 0..ops {
        let q = (r.gen::<u64>() % u64::from(n_qubits)) as u32;
        let theta = (r.gen::<f64>() * 2.0 - 1.0) * PI;
        match r.gen::<u64>() % 8 {
            0 | 1 => c.rx(q, theta),
            2 | 3 => c.ry(q, theta),
            4 | 5 => c.rz(q, theta),
            6 => {
                let q2 = (q + 1 + (r.gen::<u64>() % u64::from(n_qubits - 1)) as u32) % n_qubits;
                c.cz(q, q2)
            }
            _ => c.measure(q),
        };
    }
    c.measure_all();
    c
}

/// Path (a): the naive pre-kernel loops, gate by gate.
fn reference_state(c: &Circuit) -> StateVector {
    let mut sv = StateVector::new(c.n_qubits()).unwrap();
    for op in c.operations() {
        match op.gate {
            Gate::Rx(Angle::Value(v)) => sv.apply_matrix2_reference(op.qubit, mat_rx(v)),
            Gate::Ry(Angle::Value(v)) => sv.apply_matrix2_reference(op.qubit, mat_ry(v)),
            Gate::Rz(Angle::Value(v)) => sv.apply_matrix2_reference(op.qubit, mat_rz(v)),
            Gate::Cz => sv.apply_cz_reference(op.qubit, op.qubit2.expect("CZ has two operands")),
            Gate::Measure => {}
            ref g => panic!("non-native gate {g:?} in random circuit"),
        }
    }
    sv
}

/// Executes a circuit through the kernel layer, fused or not.
fn kernel_state(c: &Circuit, fuse: bool) -> StateVector {
    let p = plan(c, fuse).unwrap();
    let mut sv = StateVector::new(c.n_qubits()).unwrap();
    sv.apply_plan(&p);
    sv
}

/// Raw amplitude bits, zero signs and all.
fn raw_bits(sv: &StateVector) -> Vec<(u64, u64)> {
    (0..1usize << sv.n_qubits())
        .map(|i| {
            let a = sv.amplitude(i);
            (a.re.to_bits(), a.im.to_bits())
        })
        .collect()
}

/// Amplitude bits with IEEE signed zeros canonicalized; rejects NaN.
fn canonical_bits(sv: &StateVector) -> Vec<(u64, u64)> {
    let canon = |x: f64| {
        assert!(!x.is_nan(), "NaN amplitude");
        if x == 0.0 {
            0.0f64.to_bits()
        } else {
            x.to_bits()
        }
    };
    (0..1usize << sv.n_qubits())
        .map(|i| {
            let a = sv.amplitude(i);
            (canon(a.re), canon(a.im))
        })
        .collect()
}

/// Samples `shots` bitstrings from a frozen statevector with the same
/// per-shot RNG streams the simulator uses.
fn sample_from_state(sv: &StateVector, sim: &Simulator, shots: u64) -> Vec<BitString> {
    let (cumulative, total) = sv.cumulative_distribution();
    (0..shots)
        .map(|s| {
            let mut rng = sim.shot_rng(s);
            let r: f64 = rng.gen::<f64>() * total;
            let idx = cumulative.partition_point(|&c| c < r);
            BitString::from_u64(idx.min(cumulative.len() - 1) as u64, sv.n_qubits())
        })
        .collect()
}

/// The pool width the CI determinism matrix selects (1 or 4).
fn matrix_threads() -> u64 {
    std::env::var("QTENON_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(1)
}

#[test]
fn fused_execution_is_raw_bitwise_identical_to_unfused() {
    for seed in 0..CIRCUITS as u64 {
        let c = random_circuit(seed);
        let unfused = kernel_state(&c, false);
        let fused = kernel_state(&c, true);
        assert_eq!(
            raw_bits(&unfused),
            raw_bits(&fused),
            "seed {seed}: fusion changed amplitude bits"
        );
    }
}

#[test]
fn kernel_execution_matches_naive_reference_bitwise() {
    for seed in 0..CIRCUITS as u64 {
        let c = random_circuit(seed);
        let reference = reference_state(&c);
        let kernel = kernel_state(&c, false);
        assert_eq!(
            canonical_bits(&reference),
            canonical_bits(&kernel),
            "seed {seed}: kernels diverged from the naive reference"
        );
    }
}

#[test]
fn sampled_artefacts_agree_across_all_three_paths_and_shard_cuts() {
    let threads = matrix_threads();
    // A subset of the sweep with real shot sampling: the artefact jobs
    // actually consume, compared byte-for-byte.
    for seed in (0..CIRCUITS as u64).step_by(16) {
        let c = random_circuit(seed);
        let n = c.n_qubits();
        let shots = 48u64;
        let sim = Simulator::auto(n, 7 + seed);
        let reference = sample_from_state(&reference_state(&c), &sim, shots);
        for fuse in [true, false] {
            let prepared = Simulator::auto(n, 7 + seed)
                .with_fusion(fuse)
                .prepare(&c)
                .unwrap();
            let serial: Vec<BitString> = (0..shots)
                .map(|s| prepared.sample_shot(&mut sim.shot_rng(s)))
                .collect();
            assert_eq!(serial, reference, "seed {seed} fuse={fuse}: artefacts");
            // Shard the shot range the way the parallel engine does:
            // contiguous chunks, reassembled in shard order.
            let per = shots.div_ceil(threads);
            let mut sharded = Vec::with_capacity(shots as usize);
            for t in 0..threads {
                let lo = (t * per).min(shots);
                let hi = ((t + 1) * per).min(shots);
                sharded.extend((lo..hi).map(|s| prepared.sample_shot(&mut sim.shot_rng(s))));
            }
            assert_eq!(
                sharded, serial,
                "seed {seed} fuse={fuse}: sharding at {threads} threads diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Fusion edge-case regressions: fused must stay byte-identical to
// unfused on every boundary shape the planner handles.
// ---------------------------------------------------------------------

fn assert_fused_equals_unfused(c: &Circuit, what: &str) {
    assert_eq!(
        raw_bits(&kernel_state(c, false)),
        raw_bits(&kernel_state(c, true)),
        "{what}: fused diverged from unfused"
    );
}

#[test]
fn edge_case_empty_circuit() {
    let c = Circuit::new(3);
    assert_fused_equals_unfused(&c, "empty circuit");
    let p = plan(&c, true).unwrap();
    assert!(p.ops.is_empty());
}

#[test]
fn edge_case_single_gate_circuit() {
    let cases: [fn(&mut Circuit); 3] = [
        |c| {
            c.rx(0, 0.7);
        },
        |c| {
            c.rz(1, -1.3);
        },
        |c| {
            c.cz(0, 1);
        },
    ];
    for (i, build) in cases.iter().enumerate() {
        let mut c = Circuit::new(2);
        build(&mut c);
        c.measure_all();
        assert_fused_equals_unfused(&c, &format!("single-gate case {i}"));
    }
}

#[test]
fn edge_case_runs_interrupted_by_cz_and_measurement() {
    // CZ splits q0's would-be run; measure(0) splits it again; measure(1)
    // must NOT split it (it barriers only its own qubit).
    let mut c = Circuit::new(2);
    c.rx(0, 0.4).rz(0, 0.2).cz(0, 1).ry(0, 1.0);
    c.measure(0).rx(0, 0.9).measure(1).rz(0, 0.1).measure_all();
    assert_fused_equals_unfused(&c, "interrupted runs");
    let p = plan(&c, true).unwrap();
    // Runs: [rx,rz] | CZ | [ry] (measure 0) [rx, rz] — measure(1) kept
    // the last run open.
    assert_eq!(p.stats.runs, 3);
    assert_eq!(p.stats.fused_runs, 2);
}

#[test]
fn edge_case_cancelling_rz_pair_fuses_to_approximate_identity() {
    let theta = 0.73;
    let mut c = Circuit::new(1);
    c.rz(0, theta).rz(0, -theta).measure_all();
    // Byte-identical fused vs unfused — cancellation is NOT elided
    // (cos/sin round-off means the kernels are not bit-exact identity),
    // both plans keep both kernels.
    assert_fused_equals_unfused(&c, "RZ(θ)+RZ(−θ)");
    let p = plan(&c, true).unwrap();
    assert_eq!(p.stats.identities_elided, 0);
    assert_eq!(p.stats.fused_runs, 1);
    // Algebraically the run is the identity to 1e-12.
    if let qtenon_quantum::fuse::PlanOp::Run { kernels, .. } = &p.ops[0] {
        let m = run_matrix(kernels);
        assert!((m[0][0].re - 1.0).abs() < 1e-12 && m[0][0].im.abs() < 1e-12);
        assert!((m[1][1].re - 1.0).abs() < 1e-12 && m[1][1].im.abs() < 1e-12);
        assert!(m[0][1].re.abs() < 1e-12 && m[1][0].re.abs() < 1e-12);
    } else {
        panic!("expected a run");
    }
}

#[test]
fn edge_case_bit_exact_identity_is_elided_identically_in_both_plans() {
    // RX(-0.0) classifies to bit-exact diag(1, 1): elided from BOTH
    // plans, so fused and unfused stay interchangeable.
    let mut c = Circuit::new(1);
    c.rz(0, 0.3).rx(0, -0.0).rz(0, 0.4).measure_all();
    assert_fused_equals_unfused(&c, "elided identity");
    for fuse in [true, false] {
        let p = plan(&c, fuse).unwrap();
        assert_eq!(p.stats.identities_elided, 1, "fuse={fuse}");
    }
    // The near-misses are refused: RZ(0) and RY(-0.0) carry -0.0 bits.
    assert!(!Kernel1Q::from_matrix(mat_rz(0.0)).is_identity());
    assert!(!Kernel1Q::from_matrix(mat_ry(-0.0)).is_identity());
    assert!(Kernel1Q::from_matrix(mat_rx(-0.0)).is_identity());
}

// ---------------------------------------------------------------------
// Fusion algebra: the analysis-side matrix model agrees with the gate
// definitions (approximate — execution never multiplies matrices).
// ---------------------------------------------------------------------

#[test]
fn fusion_algebra_rz_angles_add() {
    for (a, b) in [(0.3, 0.5), (-1.2, 0.7), (PI / 3.0, -PI / 5.0)] {
        let m = run_matrix(&[
            Kernel1Q::from_matrix(mat_rz(a)),
            Kernel1Q::from_matrix(mat_rz(b)),
        ]);
        let direct = mat_rz(a + b);
        for r in 0..2 {
            for c in 0..2 {
                assert!((m[r][c].re - direct[r][c].re).abs() < 1e-12, "({a},{b})");
                assert!((m[r][c].im - direct[r][c].im).abs() < 1e-12, "({a},{b})");
            }
        }
    }
}

#[test]
fn fusion_refused_across_cz_barriers() {
    // Same-qubit rotations on both sides of a CZ must stay in separate
    // runs — and the circuit-level result must match the reference.
    let mut c = Circuit::new(2);
    c.ry(0, 0.8).cz(0, 1).ry(0, -0.8).measure_all();
    let p = plan(&c, true).unwrap();
    assert_eq!(p.stats.fused_runs, 0, "fusion leaked across a CZ barrier");
    assert_eq!(p.ops.len(), 3);
    assert_fused_equals_unfused(&c, "CZ barrier");
    assert_eq!(
        canonical_bits(&reference_state(&c)),
        canonical_bits(&kernel_state(&c, true))
    );
}

#[test]
fn deep_single_qubit_runs_stay_bitwise_stable() {
    // A 60-gate single-qubit run: the deepest fusion the planner will
    // ever build from real workloads, executed as ONE sweep.
    let mut r = StdRng::seed_from_u64(0xF05E);
    let mut c = Circuit::new(4);
    for _ in 0..60 {
        let theta = (r.gen::<f64>() * 2.0 - 1.0) * PI;
        match r.gen::<u64>() % 3 {
            0 => c.rx(2, theta),
            1 => c.ry(2, theta),
            _ => c.rz(2, theta),
        };
    }
    c.measure_all();
    let p = plan(&c, true).unwrap();
    assert_eq!(p.stats.runs, 1);
    assert_eq!(p.stats.gates_fused, 60);
    assert_fused_equals_unfused(&c, "60-gate run");
    assert_eq!(
        canonical_bits(&reference_state(&c)),
        canonical_bits(&kernel_state(&c, true))
    );
}
