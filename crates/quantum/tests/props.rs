//! Property-based tests for the quantum substrate's invariants.

use proptest::prelude::*;

use qtenon_quantum::sim::MeanFieldState;
use qtenon_quantum::{Circuit, CircuitTiming, GateTimes, Hamiltonian, PauliTerm, StateVector};

proptest! {
    #[test]
    fn statevector_norm_invariant_under_random_rotations(
        gates in prop::collection::vec((0u8..4, 0u32..3, -7.0f64..7.0), 0..60)
    ) {
        let mut sv = StateVector::new(3).unwrap();
        for (kind, q, theta) in gates {
            match kind {
                0 => sv.apply_rx(q, theta),
                1 => sv.apply_ry(q, theta),
                2 => sv.apply_rz(q, theta),
                _ => sv.apply_cz(q, (q + 1) % 3),
            }
        }
        prop_assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_field_agrees_with_exact_on_single_qubit_chains(
        gates in prop::collection::vec((0u8..3, -7.0f64..7.0), 0..40)
    ) {
        let mut sv = StateVector::new(1).unwrap();
        let mut mf = MeanFieldState::new(1);
        for (kind, theta) in gates {
            match kind {
                0 => { sv.apply_rx(0, theta); mf.apply_rx(0, theta); }
                1 => { sv.apply_ry(0, theta); mf.apply_ry(0, theta); }
                _ => { sv.apply_rz(0, theta); mf.apply_rz(0, theta); }
            }
        }
        prop_assert!((sv.expectation_z(0) - mf.expectation_z(0)).abs() < 1e-9);
    }

    #[test]
    fn z_expectations_bounded(
        gates in prop::collection::vec((0u8..4, 0u32..4, -7.0f64..7.0), 0..60)
    ) {
        let mut mf = MeanFieldState::new(4);
        for (kind, q, theta) in gates {
            match kind {
                0 => mf.apply_rx(q, theta),
                1 => mf.apply_ry(q, theta),
                2 => mf.apply_rz(q, theta),
                _ => mf.apply_cz(q, (q + 1) % 4),
            }
        }
        for q in 0..4 {
            let z = mf.expectation_z(q);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&z));
        }
    }

    #[test]
    fn circuit_duration_bounds(
        thetas in prop::collection::vec(-3.0f64..3.0, 1..20),
    ) {
        // Duration is at least the longest per-qubit path and at most the
        // serial sum.
        let mut c = Circuit::new(2);
        for (i, &t) in thetas.iter().enumerate() {
            c.ry((i % 2) as u32, t);
            if i % 3 == 0 {
                c.cz(0, 1);
            }
        }
        let timing = CircuitTiming::of(&c, &GateTimes::default());
        prop_assert!(timing.shot_duration <= timing.total_gate_time);
        prop_assert!(timing.shot_duration.as_ns() * 2.0 + 1e-9 >= timing.total_gate_time.as_ns());
    }

    #[test]
    fn hamiltonian_expectation_bounded_by_coefficients(
        coeffs in prop::collection::vec(-5.0f64..5.0, 1..10),
        bits in any::<u64>(),
    ) {
        let terms: Vec<PauliTerm> = coeffs
            .iter()
            .enumerate()
            .map(|(i, &w)| PauliTerm::z((i % 8) as u32, w))
            .collect();
        let h = Hamiltonian::new(8, terms, 0.0);
        let shot = qtenon_quantum::BitString::from_u64(bits, 8);
        let bound: f64 = coeffs.iter().map(|w| w.abs()).sum();
        prop_assert!(h.value_on(&shot).abs() <= bound + 1e-9);
    }

    #[test]
    fn binding_is_idempotent(params in prop::collection::vec(-3.0f64..3.0, 3)) {
        use qtenon_quantum::ParamId;
        let mut c = Circuit::new(3);
        for q in 0..3u32 {
            c.ry_param(q, ParamId::new(q));
        }
        let bound = c.bind(&params).unwrap();
        let rebound = bound.bind(&[]).unwrap();
        prop_assert_eq!(bound, rebound);
    }
}
