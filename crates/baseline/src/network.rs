//! The host↔FPGA Ethernet/UDP link.
//!
//! The paper's baseline connects host and controller with 100-gigabit
//! Ethernet under UDP, omitting switches — "optimal conditions". Even so,
//! every message pays protocol-stack latency, and streaming readout sends
//! one small packet per shot, which is what pushes decoupled
//! communication into the 1–10 ms band of Table 1.

use qtenon_sim_engine::SimDuration;
use serde::{Deserialize, Serialize};

/// Link latency/bandwidth parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Fixed per-message cost (syscall + NIC + UDP stack both ends).
    pub per_message_latency: SimDuration,
    /// Per-packet cost for small streamed packets (readout results).
    pub per_packet_overhead: SimDuration,
    /// Raw link bandwidth in bits per second.
    pub bandwidth_bits_per_sec: u64,
    /// Maximum UDP payload per packet.
    pub mtu_bytes: u64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            per_message_latency: SimDuration::from_us(200),
            per_packet_overhead: SimDuration::from_us(15),
            bandwidth_bits_per_sec: 100_000_000_000, // 100 GbE
            mtu_bytes: 1_472,
        }
    }
}

impl NetworkModel {
    /// Time to move one bulk message of `bytes` (program upload): fixed
    /// latency plus serialisation at link bandwidth.
    pub fn message_time(&self, bytes: u64) -> SimDuration {
        self.per_message_latency + self.serialisation_time(bytes)
    }

    /// Time to stream `count` small records of `record_bytes` each, one
    /// packet per record (the per-shot readout path).
    pub fn stream_time(&self, count: u64, record_bytes: u64) -> SimDuration {
        (self.per_packet_overhead + self.serialisation_time(record_bytes)) * count
    }

    /// Pure wire time for `bytes`.
    pub fn serialisation_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ns_f64(bytes as f64 * 8.0 / self.bandwidth_bits_per_sec as f64 * 1e9)
    }

    /// Packets needed for a bulk transfer (MTU-limited).
    pub fn packets_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.mtu_bytes).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_latency_dominates_small_transfers() {
        let net = NetworkModel::default();
        let t = net.message_time(64);
        // Table 1: decoupled communication is in the 0.1–10 ms class.
        assert!(t >= SimDuration::from_us(100));
        assert!(t <= SimDuration::from_ms(10));
    }

    #[test]
    fn serialisation_scales_with_size() {
        let net = NetworkModel::default();
        // 100 Gb/s = 12.5 GB/s → 125 MB in 10 ms.
        let t = net.serialisation_time(125_000_000);
        assert!((t.as_ms() - 10.0).abs() < 0.1, "t={t}");
    }

    #[test]
    fn per_shot_streaming_cost() {
        let net = NetworkModel::default();
        // 500 shots × 8 B each: overhead-dominated, ~7.5 ms.
        let t = net.stream_time(500, 8);
        assert!(t >= SimDuration::from_ms(7));
        assert!(t < SimDuration::from_ms(8));
    }

    #[test]
    fn packet_count_respects_mtu() {
        let net = NetworkModel::default();
        assert_eq!(net.packets_for(100), 1);
        assert_eq!(net.packets_for(1_472), 1);
        assert_eq!(net.packets_for(1_473), 2);
        assert_eq!(net.packets_for(0), 1);
    }
}
