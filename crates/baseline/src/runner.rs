//! Sequential end-to-end execution on the decoupled baseline.

use qtenon_compiler::{BaselineCompiler, BaselineCompilerConfig};
use qtenon_core::report::{CommBreakdown, RunReport, TimeBreakdown};
use qtenon_core::SystemError;
use qtenon_quantum::sim::Simulator;
use qtenon_quantum::{CircuitTiming, GateTimes};
use qtenon_sim_engine::{CritKind, CritPathTracker, OpCounter, SimDuration, SimTime};
use qtenon_workloads::{evaluate_cost, Optimizer, Workload};
use serde::{Deserialize, Serialize};

use crate::host_model::BaselineHostModel;
use crate::network::NetworkModel;

/// Configuration of the decoupled baseline system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Ethernet/UDP link.
    pub network: NetworkModel,
    /// Host cost model.
    pub host: BaselineHostModel,
    /// JIT compiler costs.
    pub compiler: BaselineCompilerConfig,
    /// FPGA pulse generation latency per pulse (Section 7.1: 1000 ns,
    /// sequential — the FPGA has no SLT and no pulse reuse).
    pub fpga_pulse_latency: SimDuration,
    /// ADI latency per direction.
    pub adi_latency: SimDuration,
    /// Quantum gate durations (same chip as Qtenon).
    pub gate_times: GateTimes,
    /// Chip sampling seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            network: NetworkModel::default(),
            host: BaselineHostModel::default(),
            compiler: BaselineCompilerConfig::default(),
            fpga_pulse_latency: SimDuration::from_ns(1_000),
            adi_latency: SimDuration::from_ns(100),
            gate_times: GateTimes::default(),
            seed: 0x51,
        }
    }
}

/// Executes hybrid workloads on the decoupled baseline, producing the
/// same [`RunReport`] shape as the Qtenon runner.
///
/// # Examples
///
/// ```
/// use qtenon_baseline::{BaselineConfig, BaselineRunner};
/// use qtenon_workloads::{SpsaOptimizer, Workload};
///
/// let workload = Workload::qaoa(8, 2, 7)?;
/// let mut runner = BaselineRunner::new(BaselineConfig::default(), workload);
/// let report = runner.run(&mut SpsaOptimizer::new(7), 2, 50)?;
/// // Decoupled execution: communication dominates (Fig. 1).
/// assert!(report.comm.total() > report.breakdown.quantum);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct BaselineRunner {
    config: BaselineConfig,
    workload: Workload,
    simulator: Simulator,
}

impl std::fmt::Debug for BaselineRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineRunner")
            .field("workload", &self.workload.kind)
            .field("n_qubits", &self.workload.n_qubits())
            .finish()
    }
}

impl BaselineRunner {
    /// Creates a runner for a workload.
    pub fn new(config: BaselineConfig, workload: Workload) -> Self {
        let simulator = Simulator::fast(workload.n_qubits(), config.seed);
        BaselineRunner {
            config,
            workload,
            simulator,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// Runs `iterations` optimizer iterations at `shots` shots per
    /// evaluation, strictly sequentially.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Quantum`] for simulation failures.
    pub fn run(
        &mut self,
        optimizer: &mut dyn Optimizer,
        iterations: usize,
        shots: u64,
    ) -> Result<RunReport, SystemError> {
        let cfg = self.config;
        let jit = BaselineCompiler::new(cfg.compiler);
        let mut total = SimDuration::ZERO;
        let mut breakdown = TimeBreakdown::default();
        let mut comm = CommBreakdown::default();
        let mut host_ops_total = OpCounter::new();
        let mut dynamic_instructions = 0u64;
        let mut pulses_generated = 0u64;
        let mut cost_history = Vec::with_capacity(iterations);
        let bytes_per_shot = (self.workload.n_qubits() as u64).div_ceil(8);

        // Strictly sequential system: every step blocks the next, so the
        // causal chain is the whole timeline. Node times mirror `total`.
        let mut critpath = CritPathTracker::new();
        let compile_edge = critpath.edge("readout->host");
        let upload_edge = critpath.edge("host->bus");
        let fpga_edge = critpath.edge("pgu->pipeline");
        let quantum_edge = critpath.edge("pipeline->chip");
        let download_edge = critpath.edge("chip->readout");
        critpath.open_at(SimTime::ZERO);
        let at = |total: SimDuration| SimTime::ZERO + total;

        let mut params = self.workload.initial_params.clone();
        for _iter in 0..iterations {
            let plan = optimizer.iteration_plan(&params);
            let mut evals = Vec::with_capacity(plan.len());
            for eval_params in &plan {
                // 1. JIT recompile from scratch (no incremental path).
                let bound = self.workload.circuit.bind(eval_params)?;
                let compiled = jit.compile(&bound);
                breakdown.host += compiled.compile_time;
                total += compiled.compile_time;
                dynamic_instructions += compiled.instruction_count;
                critpath.advance(compile_edge, at(total), CritKind::Complete);

                // 2. Upload the binary over Ethernet.
                let upload = cfg.network.message_time(compiled.binary_bytes);
                comm.q_set += upload;
                comm.q_set_count += 1;
                total += upload;
                critpath.advance(upload_edge, at(total), CritKind::Grant);

                // 3. FPGA pulse generation: every pulse, sequentially.
                let pg = cfg.fpga_pulse_latency * compiled.pulses_required;
                breakdown.pulse_generation += pg;
                pulses_generated += compiled.pulses_required;
                total += pg;
                critpath.advance(fpga_edge, at(total), CritKind::Dispatch);

                // 4. Quantum execution behind the ADI.
                let timing = CircuitTiming::of(&bound, &cfg.gate_times);
                let q = cfg.adi_latency * 2 + timing.shot_duration * shots;
                breakdown.quantum += q;
                total += q;
                critpath.advance(quantum_edge, at(total), CritKind::Complete);
                let results = self.simulator.run(&bound, shots)?;

                // 5. Stream per-shot readout packets back to the host.
                let download = cfg.network.stream_time(shots, bytes_per_shot);
                comm.q_acquire += download;
                comm.q_acquire_count += shots;
                total += download;
                critpath.advance(download_edge, at(total), CritKind::Drain);

                // 6. Host post-processing through the software stack.
                let mut ops = OpCounter::new();
                let cost = evaluate_cost(&self.workload.hamiltonian, &results, &mut ops);
                let d = cfg.host.duration_for(&ops);
                host_ops_total += ops;
                breakdown.host += d;
                total += d;
                critpath.advance(compile_edge, at(total), CritKind::Ack);
                evals.push(cost);
            }
            let mut ops = OpCounter::new();
            params = optimizer.update(&params, &plan, &evals, &mut ops);
            let d = cfg.host.duration_for(&ops);
            host_ops_total += ops;
            breakdown.host += d;
            total += d;
            critpath.advance(compile_edge, at(total), CritKind::Ack);
            let mean = evals.iter().sum::<f64>() / evals.len().max(1) as f64;
            cost_history.push(mean);
        }

        breakdown.communication = comm.total();
        let final_cost = cost_history.last().copied().unwrap_or(f64::NAN);
        Ok(RunReport {
            total,
            breakdown,
            comm,
            dynamic_instructions,
            static_instructions: dynamic_instructions / (iterations as u64 * 2).max(1), // one compile's worth
            pulses_generated,
            slt: Default::default(),
            host_cycles: qtenon_core::host::HostCoreModel::new(
                qtenon_core::config::CoreModel::Rocket,
            )
            .cycles_for(&host_ops_total),
            cost_history,
            final_cost,
            pulse_reduction: 0.0,
            resilience: Default::default(),
            phases: Default::default(),
            critpath: critpath.report(),
            cache: Default::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtenon_workloads::{GradientDescentOptimizer, SpsaOptimizer, WorkloadKind};

    fn run_baseline(kind: WorkloadKind, n: u32) -> RunReport {
        let workload = Workload::benchmark(kind, n, 11).unwrap();
        let mut runner = BaselineRunner::new(BaselineConfig::default(), workload);
        runner.run(&mut SpsaOptimizer::new(5), 2, 100).unwrap()
    }

    #[test]
    fn quantum_is_minor_fraction_of_total() {
        // Fig. 1a: quantum execution is a small share on the baseline.
        let report = run_baseline(WorkloadKind::Vqe, 8);
        let share = report.breakdown.quantum.fraction_of(report.total);
        assert!(share < 0.35, "quantum share {share}");
    }

    #[test]
    fn total_is_sum_of_parts() {
        // Sequential system: no overlap, wall time = Σ busy times.
        let report = run_baseline(WorkloadKind::Qaoa, 8);
        assert_eq!(report.total, report.breakdown.busy_total());
    }

    #[test]
    fn recompiles_every_evaluation() {
        let workload = Workload::qaoa(8, 2, 1).unwrap();
        let per_compile = BaselineCompiler::new(BaselineCompilerConfig::default())
            .compile(&workload.circuit.bind(&workload.initial_params).unwrap())
            .instruction_count;
        let mut runner = BaselineRunner::new(BaselineConfig::default(), workload);
        let report = runner.run(&mut SpsaOptimizer::new(5), 3, 10).unwrap();
        // 3 iterations × 2 SPSA evals = 6 compiles.
        assert_eq!(report.dynamic_instructions, 6 * per_compile);
        assert_eq!(report.pulse_reduction, 0.0);
    }

    #[test]
    fn gd_pays_more_communication_than_spsa() {
        // Fig. 14: GD's per-parameter rounds multiply communication.
        let workload = Workload::vqe(8, 1).unwrap();
        let gd = BaselineRunner::new(BaselineConfig::default(), workload.clone())
            .run(&mut GradientDescentOptimizer::new(0.05), 2, 20)
            .unwrap();
        let spsa = BaselineRunner::new(BaselineConfig::default(), workload)
            .run(&mut SpsaOptimizer::new(5), 2, 20)
            .unwrap();
        assert!(gd.comm.total() > 4 * spsa.comm.total());
    }

    #[test]
    fn communication_in_table1_band() {
        // Per-evaluation round-trip lands in the ~1–10 ms decoupled band.
        let report = run_baseline(WorkloadKind::Qaoa, 8);
        let evals = 2 * 2; // SPSA, 2 iterations
        let per_eval = report.comm.total() / evals;
        assert!(per_eval >= SimDuration::from_us(300), "per_eval={per_eval}");
        assert!(per_eval <= SimDuration::from_ms(10), "per_eval={per_eval}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_baseline(WorkloadKind::Qnn, 8);
        let b = run_baseline(WorkloadKind::Qnn, 8);
        assert_eq!(a.total, b.total);
        assert_eq!(a.cost_history, b.cost_history);
    }
}
