//! The baseline host: fast silicon, slow software.
//!
//! The baseline host is an i9-14900K — several times faster per
//! operation than a 1 GHz Rocket — but it runs the hybrid loop through a
//! Python/Qiskit-class framework whose interpretive and object overhead
//! multiplies every abstract operation. The net effect (silicon speedup ÷
//! software overhead) is what lets a bare-metal RISC-V core beat a
//! workstation on host computation outright (Fig. 15).

use qtenon_core::config::CoreModel;
use qtenon_core::host::HostCoreModel;
use qtenon_sim_engine::{OpCounter, SimDuration};
use serde::{Deserialize, Serialize};

/// The baseline host cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineHostModel {
    /// Hardware speed relative to the 1 GHz Rocket reference (clock ×
    /// IPC advantage).
    pub hardware_speedup: f64,
    /// Software-stack multiplier on every abstract operation
    /// (interpreter dispatch, boxing, framework layers).
    pub software_overhead: f64,
}

impl Default for BaselineHostModel {
    fn default() -> Self {
        BaselineHostModel {
            hardware_speedup: 4.0,
            software_overhead: 200.0,
        }
    }
}

impl BaselineHostModel {
    /// Wall time for the tallied operations on the baseline host.
    pub fn duration_for(&self, ops: &OpCounter) -> SimDuration {
        let reference = HostCoreModel::new(CoreModel::Rocket).duration_for(ops);
        let factor = self.software_overhead / self.hardware_speedup;
        SimDuration::from_ns_f64(reference.as_ns() * factor)
    }

    /// The net slowdown factor relative to bare-metal Rocket.
    pub fn net_factor(&self) -> f64 {
        self.software_overhead / self.hardware_speedup
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtenon_sim_engine::OpClass;

    #[test]
    fn default_net_factor_is_50x() {
        let m = BaselineHostModel::default();
        assert!((m.net_factor() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn duration_scales_reference_by_net_factor() {
        let m = BaselineHostModel::default();
        let mut ops = OpCounter::new();
        ops.record(OpClass::IntAlu, 1_000);
        // Rocket: 1 µs → baseline: 50 µs.
        assert_eq!(m.duration_for(&ops), SimDuration::from_us(50));
    }

    #[test]
    fn faster_software_stack_narrows_gap() {
        let fast = BaselineHostModel {
            hardware_speedup: 4.0,
            software_overhead: 4.0,
        };
        let mut ops = OpCounter::new();
        ops.record(OpClass::FpAlu, 100);
        let slow = BaselineHostModel::default();
        assert!(fast.duration_for(&ops) < slow.duration_for(&ops));
        assert!((fast.net_factor() - 1.0).abs() < 1e-12);
    }
}
