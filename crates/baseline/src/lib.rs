//! The decoupled baseline system (Section 7.1's comparison target).
//!
//! The baseline reproduces the classic architecture of Fig. 2: a
//! workstation-class host (i9-14900K + 64 GB DDR5 running a
//! Python/Qiskit-class software stack), an FPGA controller reached over a
//! 100-gigabit Ethernet/UDP link, and the quantum chip behind a 100 ns
//! Analog-Digital Interface. Execution is strictly sequential: compile →
//! upload → pulse generation (1000 ns per pulse, no reuse) → quantum run
//! (per-shot result packets) → host post-processing — then recompile from
//! scratch for the next evaluation.
//!
//! - [`network`]: the Ethernet/UDP link model;
//! - [`host_model`]: the i9-plus-software-stack host cost model;
//! - [`runner`]: [`BaselineRunner`], producing the same
//!   [`qtenon_core::RunReport`] as the Qtenon runner so experiments can
//!   compare them directly.

pub mod host_model;
pub mod network;
pub mod runner;

pub use host_model::BaselineHostModel;
pub use network::NetworkModel;
pub use runner::{BaselineConfig, BaselineRunner};
