//! Property tests for the fleet compilation cache (`compiler::cache`).
//!
//! The contract under test: a cache **hit is byte-identical to a cold
//! compile** — at any pool width, under contention, after eviction —
//! and canonical keys never alias circuits that differ in structure,
//! layout, or hardware-visible parameter value.
//!
//! "Byte-identical" is checked through each artefact's canonical
//! `Debug` rendering, which covers every field of the compiled
//! program, the pulse work-item stream, and the bound circuit.

use std::sync::Arc;

use qtenon_compiler::{CompilationCache, CompileError, QtenonCompiler};
use qtenon_isa::QccLayout;
use qtenon_quantum::{Circuit, ParamId};

fn layout(n: u32) -> QccLayout {
    QccLayout::for_qubits(n).unwrap()
}

/// A small parameterised ansatz whose shape is controlled by `variant`,
/// so distinct variants must produce distinct program keys.
fn ansatz(n: u32, variant: u32) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.ry_param(q, ParamId::new(q));
    }
    for q in 0..n.saturating_sub(1) {
        c.cz(q, q + 1);
    }
    // Structural twist: a literal-angle gate whose angle encodes the
    // variant, so every variant is a different cacheable program.
    c.rx(0, 0.1 + f64::from(variant) * 0.05);
    c.measure_all();
    c
}

fn params_for(n: u32, round: usize) -> Vec<f64> {
    (0..n)
        .map(|q| 0.3 + f64::from(q) * 0.01 + round as f64 * 0.11)
        .collect()
}

/// The cold-path reference: compile, generate, and bind directly,
/// bypassing the cache entirely.
fn reference(n: u32, variant: u32, params: &[f64]) -> (String, String, String) {
    let circuit = ansatz(n, variant);
    let program = QtenonCompiler::new(layout(n)).compile(&circuit).unwrap();
    let items = program.work_items(params).unwrap();
    let bound = circuit.bind(params).unwrap();
    (
        format!("{program:?}"),
        format!("{items:?}"),
        format!("{bound:?}"),
    )
}

/// Pull all three artefact renderings for one (variant, params) pair
/// through the shared cache.
fn via_cache(
    cache: &CompilationCache,
    n: u32,
    variant: u32,
    params: &[f64],
) -> (String, String, String) {
    let circuit = ansatz(n, variant);
    let program = cache.compile(layout(n), &circuit).unwrap();
    let items = cache.work_items(&program, params).unwrap();
    let bound = cache.bound_circuit(&program, params).unwrap();
    (
        format!("{:?}", program.program()),
        format!("{:?}", items.items()),
        format!("{:?}", bound.circuit().as_ref()),
    )
}

/// Cold-vs-hit byte equality at pool widths 1, 2, and 8: every worker
/// hammers one shared cache with overlapping (variant, params) pairs,
/// and every artefact served — first writer or racer, hit or miss —
/// must render identically to a direct cache-free compile.
#[test]
fn hits_are_byte_identical_to_cold_compiles_at_widths_1_2_8() {
    const N: u32 = 6;
    const VARIANTS: u32 = 3;
    const ROUNDS: usize = 4;

    // Precompute the cache-free ground truth once.
    let mut truth = Vec::new();
    for variant in 0..VARIANTS {
        for round in 0..ROUNDS {
            let params = params_for(N, round);
            truth.push(((variant, round), reference(N, variant, &params)));
        }
    }
    let truth = Arc::new(truth);

    for width in [1usize, 2, 8] {
        let cache = CompilationCache::shared(64);
        std::thread::scope(|scope| {
            for worker in 0..width {
                let cache = Arc::clone(&cache);
                let truth = Arc::clone(&truth);
                scope.spawn(move || {
                    // Stagger iteration order per worker so hits and
                    // misses interleave differently on each thread.
                    for step in 0..truth.len() {
                        let idx = (step + worker * 5) % truth.len();
                        let ((variant, round), expected) = &truth[idx];
                        let params = params_for(N, *round);
                        let got = via_cache(&cache, N, *variant, &params);
                        assert_eq!(&got, expected, "width {width} diverged");
                    }
                });
            }
        });
        let stats = cache.stats();
        // Every lookup is accounted as exactly one hit or one miss.
        let calls = (width * VARIANTS as usize * ROUNDS) as u64;
        assert_eq!(stats.program_hits + stats.program_misses, calls);
        assert_eq!(stats.pulse_hits + stats.pulse_misses, calls);
        assert_eq!(stats.bound_hits + stats.bound_misses, calls);
        // The cache actually deduplicated: unique artefacts bound the
        // misses from below, insert races from above.
        let unique = (VARIANTS as usize * ROUNDS) as u64;
        assert!(stats.program_misses >= VARIANTS as u64);
        assert!(stats.pulse_misses >= unique);
        assert!(
            stats.insert_races <= stats.program_misses + stats.pulse_misses + stats.bound_misses
        );
        if width == 1 {
            // Serial runs have exact, deterministic hit splits.
            assert_eq!(stats.program_misses, VARIANTS as u64);
            assert_eq!(stats.pulse_misses, unique);
            assert_eq!(stats.bound_misses, unique);
            assert_eq!(stats.insert_races, 0);
        }
    }
}

/// All contenders racing to compile the same circuit end up sharing
/// one identical program: first writer wins, losers adopt the winner.
#[test]
fn racing_writers_converge_on_one_program() {
    const N: u32 = 5;
    let cache = CompilationCache::shared(16);
    let rendered: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let p = cache.compile(layout(N), &ansatz(N, 0)).unwrap();
                    format!("{:?}", p.program())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &rendered[1..] {
        assert_eq!(r, &rendered[0]);
    }
    let stats = cache.stats();
    assert_eq!(stats.program_hits + stats.program_misses, 8);
    assert!(stats.program_misses >= 1);
}

/// Collision shape: program keys must separate every hardware-visible
/// structural difference.
#[test]
fn program_keys_separate_structure_layout_and_operands() {
    let base = ansatz(4, 0);
    let key = |c: &Circuit, l: &QccLayout| CompilationCache::program_key(c, l);

    // Different layout width, same circuit.
    assert_ne!(key(&base, &layout(4)), key(&base, &layout(8)));

    // Different literal angle (variant) in an otherwise equal circuit.
    assert_ne!(key(&base, &layout(4)), key(&ansatz(4, 1), &layout(4)));

    // Operand order of a symmetric two-qubit gate is still a distinct
    // program: the key encodes operands, not gate semantics.
    let mut ab = Circuit::new(2);
    ab.cz(0, 1).measure_all();
    let mut ba = Circuit::new(2);
    ba.cz(1, 0).measure_all();
    assert_ne!(key(&ab, &layout(2)), key(&ba, &layout(2)));

    // Gate order matters.
    let mut xy = Circuit::new(2);
    xy.rx(0, 0.5);
    xy.ry(0, 0.25);
    let mut yx = Circuit::new(2);
    yx.ry(0, 0.25);
    yx.rx(0, 0.5);
    assert_ne!(key(&xy, &layout(2)), key(&yx, &layout(2)));

    // Parameter slot identity matters even at equal arity.
    let mut p0 = Circuit::new(2);
    p0.ry_param(0, ParamId::new(0)).ry_param(1, ParamId::new(1));
    let mut p1 = Circuit::new(2);
    p1.ry_param(0, ParamId::new(1)).ry_param(1, ParamId::new(0));
    assert_ne!(key(&p0, &layout(2)), key(&p1, &layout(2)));
}

/// Collision shape at the parameter level: vectors that encode to the
/// same 27-bit hardware codes share pulse/bound entries; vectors that
/// differ by at least one code never alias.
#[test]
fn pulse_keys_follow_hardware_resolution() {
    let cache = CompilationCache::new(16);
    let n = 4u32;
    let p = cache.compile(layout(n), &ansatz(n, 0)).unwrap();
    let base = params_for(n, 0);

    // Sub-resolution wiggle: identical codes, must hit both levels.
    let mut wiggled = base.clone();
    wiggled[2] += 1e-12;
    let a = cache.work_items(&p, &base).unwrap();
    let b = cache.work_items(&p, &wiggled).unwrap();
    assert!(b.is_hit());
    assert!(Arc::ptr_eq(a.items(), b.items()));
    let ba = cache.bound_circuit(&p, &base).unwrap();
    let bb = cache.bound_circuit(&p, &wiggled).unwrap();
    assert!(bb.is_hit());
    assert!(Arc::ptr_eq(ba.circuit(), bb.circuit()));

    // A full-resolution change in any single coordinate must miss.
    for i in 0..base.len() {
        let mut moved = base.clone();
        moved[i] += 0.25;
        let c = cache.work_items(&p, &moved).unwrap();
        assert!(!c.is_hit(), "coordinate {i} aliased");
        assert!(!Arc::ptr_eq(a.items(), c.items()));
    }
}

/// Wrong-length parameter vectors are rejected before touching any
/// cache level, at both the pulse and bound entry points.
#[test]
fn wrong_length_vectors_are_typed_errors_and_leave_no_trace() {
    let cache = CompilationCache::new(16);
    let n = 4u32;
    let p = cache.compile(layout(n), &ansatz(n, 0)).unwrap();
    let expected = p.program().num_params();
    for bad in [vec![0.5; expected - 1], vec![0.5; expected + 1], vec![]] {
        match cache.work_items(&p, &bad) {
            Err(CompileError::ParameterCountMismatch { expected: e, got }) => {
                assert_eq!(e, expected);
                assert_eq!(got, bad.len());
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        match cache.bound_circuit(&p, &bad) {
            Err(CompileError::ParameterCountMismatch { expected: e, got }) => {
                assert_eq!(e, expected);
                assert_eq!(got, bad.len());
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.pulse_hits + stats.pulse_misses, 0);
    assert_eq!(stats.bound_hits + stats.bound_misses, 0);
}

/// Eviction never corrupts results: with a pathologically small cache,
/// re-compiling an evicted circuit still matches the cache-free
/// reference byte for byte.
#[test]
fn eviction_preserves_byte_equality() {
    const N: u32 = 4;
    let cache = CompilationCache::new(2);
    let params = params_for(N, 0);
    for pass in 0..2 {
        for variant in 0..8u32 {
            let got = via_cache(&cache, N, variant, &params);
            let want = reference(N, variant, &params);
            assert_eq!(got, want, "pass {pass} variant {variant}");
        }
    }
    let stats = cache.stats();
    assert!(
        stats.evictions > 0,
        "capacity 2 must evict across 8 variants"
    );
}
