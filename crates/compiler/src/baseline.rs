//! The decoupled baseline's JIT compiler model.
//!
//! eQASM/HiSEP-Q-class systems encode the qubit index statically into
//! every instruction and have no channel for in-place parameter updates,
//! so the host recompiles the whole circuit from scratch *every
//! iteration* (Section 6.1). For Table 1's 64-qubit five-layer QAOA this
//! yields instruction streams above 10⁴ entries and 1–100 ms of
//! recompilation per iteration.
//!
//! The model counts instructions from the circuit structure and charges a
//! per-instruction software cost covering the Qiskit-class transpile +
//! assemble stack the paper's baseline runs on an i9-14900K.

use qtenon_quantum::{Circuit, Gate};
use qtenon_sim_engine::SimDuration;
use serde::{Deserialize, Serialize};

/// Cost parameters of the baseline JIT compiler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineCompilerConfig {
    /// Extra encoding instructions per gate beyond the gate itself
    /// (timing setup, qubit addressing): eQASM-style streams carry
    /// roughly one auxiliary instruction per two gates.
    pub aux_instructions_per_gate: f64,
    /// Host-side compile cost per emitted instruction, including the
    /// interpreter/transpiler software stack.
    pub compile_cost_per_instruction: SimDuration,
    /// Fixed per-compilation overhead (graph construction, scheduling
    /// passes).
    pub fixed_overhead: SimDuration,
}

impl Default for BaselineCompilerConfig {
    fn default() -> Self {
        BaselineCompilerConfig {
            aux_instructions_per_gate: 0.5,
            // ~0.5 µs/instruction lands a 64-qubit QAOA-5 recompile in the
            // paper's 1–100 ms band.
            compile_cost_per_instruction: SimDuration::from_ns(500),
            fixed_overhead: SimDuration::from_us(300),
        }
    }
}

/// One compiled baseline binary: a flat, statically-addressed instruction
/// stream that must be re-emitted whenever any parameter changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineProgram {
    /// Instructions in the emitted stream.
    pub instruction_count: u64,
    /// Bytes shipped to the FPGA controller (4 B per instruction).
    pub binary_bytes: u64,
    /// Host time spent compiling.
    pub compile_time: SimDuration,
    /// Pulses the FPGA must generate (every gate, every time — no SLT).
    pub pulses_required: u64,
}

/// The baseline JIT compiler.
///
/// # Examples
///
/// ```
/// use qtenon_compiler::BaselineCompiler;
/// use qtenon_quantum::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.rx(0, 0.4).cz(0, 1).measure_all();
/// let jit = BaselineCompiler::default();
/// let prog = jit.compile(&c);
/// assert!(prog.instruction_count >= 4);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineCompiler {
    config: BaselineCompilerConfig,
}

impl BaselineCompiler {
    /// Creates a compiler with explicit costs.
    pub fn new(config: BaselineCompilerConfig) -> Self {
        BaselineCompiler { config }
    }

    /// The configuration.
    pub fn config(&self) -> BaselineCompilerConfig {
        self.config
    }

    /// Compiles (from scratch) one bound circuit.
    pub fn compile(&self, circuit: &Circuit) -> BaselineProgram {
        let gates = circuit.operations().len() as u64;
        let pulses = circuit
            .operations()
            .iter()
            .filter(|op| !matches!(op.gate, Gate::Measure))
            .count() as u64
            + circuit
                .operations()
                .iter()
                .filter(|op| matches!(op.gate, Gate::Measure))
                .count() as u64;
        let aux = (gates as f64 * self.config.aux_instructions_per_gate).round() as u64;
        let instruction_count = gates + aux;
        BaselineProgram {
            instruction_count,
            binary_bytes: instruction_count * 4,
            compile_time: self.config.fixed_overhead
                + self.config.compile_cost_per_instruction * instruction_count,
            pulses_required: pulses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qaoa_like(n: u32, layers: u32) -> Circuit {
        // Structure-only stand-in: per layer, a CZ+RZ per ring edge and an
        // RX per qubit, plus initial/final single-qubit work.
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.ry(q, 0.5);
        }
        for _ in 0..layers {
            for q in 0..n {
                let partner = (q + 1) % n;
                if partner != q {
                    c.cz(q, partner);
                    c.rz(q, 0.3);
                }
            }
            for q in 0..n {
                c.rx(q, 0.7);
            }
        }
        c.measure_all();
        c
    }

    #[test]
    fn instruction_count_scales_with_gates() {
        let jit = BaselineCompiler::default();
        let small = jit.compile(&qaoa_like(8, 1));
        let big = jit.compile(&qaoa_like(8, 5));
        assert!(big.instruction_count > 3 * small.instruction_count);
    }

    #[test]
    fn table1_band_for_64q_qaoa5() {
        // Table 1: ~3×10⁴ instructions for 64-qubit QAOA-5 over ten
        // GD iterations; per-compile that is ~1.5–3×10³.
        let jit = BaselineCompiler::default();
        let prog = jit.compile(&qaoa_like(64, 5));
        assert!(
            prog.instruction_count > 1_000 && prog.instruction_count < 5_000,
            "count={}",
            prog.instruction_count
        );
        // Recompile cost within the paper's 1–100 ms band.
        assert!(prog.compile_time >= SimDuration::from_ms(1));
        assert!(prog.compile_time <= SimDuration::from_ms(100));
    }

    #[test]
    fn every_gate_needs_a_pulse() {
        let jit = BaselineCompiler::default();
        let mut c = Circuit::new(2);
        c.rx(0, 0.1).cz(0, 1).measure_all();
        let prog = jit.compile(&c);
        assert_eq!(prog.pulses_required, 4);
    }

    #[test]
    fn binary_bytes_track_instructions() {
        let jit = BaselineCompiler::default();
        let prog = jit.compile(&qaoa_like(16, 2));
        assert_eq!(prog.binary_bytes, prog.instruction_count * 4);
    }

    #[test]
    fn empty_circuit_costs_only_fixed_overhead() {
        let jit = BaselineCompiler::default();
        let prog = jit.compile(&Circuit::new(4));
        assert_eq!(prog.instruction_count, 0);
        assert_eq!(prog.compile_time, SimDuration::from_us(300));
    }
}
