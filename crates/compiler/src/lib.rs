//! Compilation of quantum circuits to Qtenon programs — and to the
//! baseline's flat instruction stream.
//!
//! The central software idea (Section 6.1) is *dynamic incremental
//! compilation*: hybrid algorithms exhibit quantum locality — across
//! iterations only some gate parameters change while the program structure
//! is identical. Qtenon compiles a circuit **once** into per-qubit program
//! entries; every parameterised gate carries a `reg_flag` and reads its
//! angle from the `.regfile`, so a parameter change is a single `q_update`
//! instead of a recompile.
//!
//! - [`program`]: [`QtenonCompiler`] and the [`CompiledProgram`] it
//!   produces (per-qubit chunks, register-slot table, instruction
//!   generators);
//! - [`incremental`]: the parameter-diff engine emitting minimal
//!   `q_update` sequences;
//! - [`cache`]: the fleet-scale content-addressed compilation/pulse
//!   cache — across near-identical jobs, whole compiles and work-item
//!   streams are shared instead of redone;
//! - [`baseline`]: the decoupled baseline's JIT compiler model
//!   (eQASM/HiSEP-Q-style flat instruction streams, recompiled from
//!   scratch every iteration — Table 1's ~3×10⁴ instructions and
//!   1–100 ms recompile overhead).

pub mod baseline;
pub mod cache;
pub mod eqasm;
pub mod incremental;
pub mod program;

pub use baseline::{BaselineCompiler, BaselineCompilerConfig, BaselineProgram};
pub use cache::{
    CacheStats, CachedBound, CachedProgram, CachedPulses, CompilationCache, PulseSchedule,
};
pub use eqasm::{EqasmInstruction, EqasmOpcode, EqasmProgram};
pub use incremental::ParameterDiff;
pub use program::{CompiledProgram, QtenonCompiler, RegSlot};

use std::fmt;

/// Errors from compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The circuit contains a gate outside the native set.
    NonNativeGate {
        /// Name of the offending gate.
        gate: &'static str,
    },
    /// A per-qubit chunk overflowed the layout's entry budget.
    ChunkOverflow {
        /// The qubit whose chunk overflowed.
        qubit: u32,
        /// The chunk capacity.
        capacity: u64,
    },
    /// The register file cannot hold all distinct parameter slots.
    RegfileOverflow {
        /// Slots required.
        needed: usize,
        /// Slots available.
        capacity: u64,
    },
    /// The circuit is wider than the layout.
    TooManyQubits {
        /// Circuit width.
        circuit: u32,
        /// Layout width.
        layout: u32,
    },
    /// A parameter vector had the wrong length.
    ParameterCountMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// A two-qubit gate arrived without its second operand.
    MissingOperand {
        /// Name of the malformed gate.
        gate: &'static str,
    },
    /// A register slot index fell outside the layout's register file.
    SlotOutOfRange {
        /// The offending slot index.
        slot: usize,
        /// Register-file capacity of the layout.
        capacity: u64,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NonNativeGate { gate } => {
                write!(f, "gate {gate} is not native; transpile before compiling")
            }
            CompileError::ChunkOverflow { qubit, capacity } => {
                write!(
                    f,
                    "program chunk for qubit {qubit} overflows {capacity} entries"
                )
            }
            CompileError::RegfileOverflow { needed, capacity } => {
                write!(f, "{needed} register slots needed, {capacity} available")
            }
            CompileError::TooManyQubits { circuit, layout } => {
                write!(f, "{circuit}-qubit circuit exceeds {layout}-qubit layout")
            }
            CompileError::ParameterCountMismatch { expected, got } => {
                write!(f, "expected {expected} parameters, got {got}")
            }
            CompileError::MissingOperand { gate } => {
                write!(f, "gate {gate} is missing its second operand")
            }
            CompileError::SlotOutOfRange { slot, capacity } => {
                write!(
                    f,
                    "register slot {slot} outside the {capacity}-entry register file"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}
