//! An eQASM/HiSEP-Q-class *quantum-dedicated* instruction stream.
//!
//! Decoupled systems (Section 2.3) drive their FPGA controllers with a
//! dedicated ISA whose instructions statically encode the qubit index and
//! explicit timing. This module implements such an ISA concretely — a
//! 32-bit format with opcode, timing, qubit, and immediate fields — so
//! Table 1's instruction-count and binary-size comparisons are measured
//! from a real emitted stream rather than estimated.
//!
//! The format (inspired by eQASM's wait/operate split):
//!
//! ```text
//! [31:28] opcode   (WAIT, SQGATE, TQGATE, MEASURE, SETPARAM, END)
//! [27:21] qubit    (7 bits → up to 128 qubits, as HiSEP-Q)
//! [20:14] qubit2 / timing slack
//! [13:0]  immediate (quantized angle / wait cycles)
//! ```

use qtenon_quantum::{Angle, Circuit, Gate};
use serde::{Deserialize, Serialize};

use crate::CompileError;

/// Opcodes of the dedicated baseline ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EqasmOpcode {
    /// Advance the timing grid.
    Wait,
    /// Single-qubit gate.
    SqGate,
    /// Two-qubit gate.
    TqGate,
    /// Measurement.
    Measure,
    /// Load a pulse parameter (one per parameterised gate — dedicated
    /// ISAs have no register indirection, so parameters are inline).
    SetParam,
    /// End of program.
    End,
}

impl EqasmOpcode {
    fn encode(self) -> u32 {
        match self {
            EqasmOpcode::Wait => 0,
            EqasmOpcode::SqGate => 1,
            EqasmOpcode::TqGate => 2,
            EqasmOpcode::Measure => 3,
            EqasmOpcode::SetParam => 4,
            EqasmOpcode::End => 5,
        }
    }

    fn decode(bits: u32) -> Option<Self> {
        Some(match bits {
            0 => EqasmOpcode::Wait,
            1 => EqasmOpcode::SqGate,
            2 => EqasmOpcode::TqGate,
            3 => EqasmOpcode::Measure,
            4 => EqasmOpcode::SetParam,
            5 => EqasmOpcode::End,
            _ => return None,
        })
    }
}

/// One 32-bit dedicated-ISA instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EqasmInstruction {
    /// Operation.
    pub opcode: EqasmOpcode,
    /// Primary qubit (7 bits).
    pub qubit: u8,
    /// Second qubit or timing slack (7 bits).
    pub qubit2: u8,
    /// Immediate: quantized angle or wait cycles (14 bits).
    pub immediate: u16,
}

/// Maximum qubit index representable (HiSEP-Q extends eQASM to 128).
pub const MAX_QUBITS: u32 = 128;

const IMM_MASK: u32 = (1 << 14) - 1;

impl EqasmInstruction {
    /// Packs to the 32-bit word.
    pub fn encode(&self) -> u32 {
        (self.opcode.encode() << 28)
            | ((self.qubit as u32 & 0x7f) << 21)
            | ((self.qubit2 as u32 & 0x7f) << 14)
            | (self.immediate as u32 & IMM_MASK)
    }

    /// Unpacks a 32-bit word.
    ///
    /// Returns `None` for unassigned opcodes.
    pub fn decode(bits: u32) -> Option<Self> {
        Some(EqasmInstruction {
            opcode: EqasmOpcode::decode(bits >> 28)?,
            qubit: ((bits >> 21) & 0x7f) as u8,
            qubit2: ((bits >> 14) & 0x7f) as u8,
            immediate: (bits & IMM_MASK) as u16,
        })
    }
}

/// A fully emitted dedicated-ISA program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EqasmProgram {
    instructions: Vec<EqasmInstruction>,
}

impl EqasmProgram {
    /// Emits the dedicated-ISA stream for a *bound, native* circuit.
    ///
    /// Every parameterised gate becomes `SETPARAM` + gate (the angle is
    /// inline — this is why any parameter change forces a full
    /// recompile), every layer boundary a `WAIT`, and the stream ends
    /// with `END`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::TooManyQubits`] beyond 128 qubits (the
    /// dedicated ISA's hard limit — one of Table 1's scalability
    /// contrasts) or [`CompileError::NonNativeGate`] for unbound or
    /// non-native gates.
    pub fn emit(circuit: &Circuit) -> Result<Self, CompileError> {
        if circuit.n_qubits() > MAX_QUBITS {
            return Err(CompileError::TooManyQubits {
                circuit: circuit.n_qubits(),
                layout: MAX_QUBITS,
            });
        }
        let mut out = Vec::new();
        let quantize = |theta: f64| -> u16 {
            let frac = (theta / std::f64::consts::TAU).rem_euclid(1.0);
            ((frac * 16_384.0).round() as u32 % 16_384) as u16
        };
        let mut busy_until = vec![0u16; circuit.n_qubits() as usize];
        for op in circuit.operations() {
            // Dedicated ISAs schedule on an explicit timing grid: emit a
            // WAIT when the operand is still busy.
            let start = op
                .qubits()
                .map(|q| busy_until[q as usize])
                .max()
                .unwrap_or(0);
            if start > 0 && op.qubits().any(|q| busy_until[q as usize] == start) {
                out.push(EqasmInstruction {
                    opcode: EqasmOpcode::Wait,
                    qubit: op.qubit as u8,
                    qubit2: 0,
                    immediate: start,
                });
            }
            match op.gate {
                Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) => {
                    let theta = match a {
                        Angle::Value(v) => v,
                        Angle::Param { .. } => {
                            return Err(CompileError::NonNativeGate {
                                gate: "unbound parameter",
                            })
                        }
                    };
                    let axis = match op.gate {
                        Gate::Rx(_) => 0u8,
                        Gate::Ry(_) => 1,
                        _ => 2,
                    };
                    out.push(EqasmInstruction {
                        opcode: EqasmOpcode::SetParam,
                        qubit: op.qubit as u8,
                        qubit2: axis,
                        immediate: quantize(theta),
                    });
                    out.push(EqasmInstruction {
                        opcode: EqasmOpcode::SqGate,
                        qubit: op.qubit as u8,
                        qubit2: axis,
                        immediate: 0,
                    });
                    busy_until[op.qubit as usize] = start.saturating_add(1);
                }
                Gate::Cz => {
                    let partner = op
                        .qubit2
                        .ok_or(CompileError::MissingOperand { gate: "cz" })?;
                    out.push(EqasmInstruction {
                        opcode: EqasmOpcode::TqGate,
                        qubit: op.qubit as u8,
                        qubit2: partner as u8,
                        immediate: 0,
                    });
                    let t = start.saturating_add(2);
                    busy_until[op.qubit as usize] = t;
                    busy_until[partner as usize] = t;
                }
                Gate::Measure => {
                    out.push(EqasmInstruction {
                        opcode: EqasmOpcode::Measure,
                        qubit: op.qubit as u8,
                        qubit2: 0,
                        immediate: 0,
                    });
                    busy_until[op.qubit as usize] = start.saturating_add(30);
                }
                other => {
                    return Err(CompileError::NonNativeGate { gate: other.name() });
                }
            }
        }
        out.push(EqasmInstruction {
            opcode: EqasmOpcode::End,
            qubit: 0,
            qubit2: 0,
            immediate: 0,
        });
        Ok(EqasmProgram { instructions: out })
    }

    /// The emitted instructions.
    pub fn instructions(&self) -> &[EqasmInstruction] {
        &self.instructions
    }

    /// Instruction count (Table 1's comparison quantity).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` for an empty stream (never produced by `emit`).
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The binary image shipped to the FPGA.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.instructions
            .iter()
            .flat_map(|i| i.encode().to_le_bytes())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtenon_quantum::transpile;

    fn bound_qaoa(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n - 1 {
            c.cz(q, q + 1);
            c.rz(q, 0.3);
        }
        c.measure_all();
        transpile::to_native(&c).unwrap()
    }

    #[test]
    fn instruction_round_trip() {
        let instr = EqasmInstruction {
            opcode: EqasmOpcode::SqGate,
            qubit: 127,
            qubit2: 2,
            immediate: 16_383,
        };
        assert_eq!(EqasmInstruction::decode(instr.encode()), Some(instr));
        assert_eq!(EqasmInstruction::decode(0xF000_0000), None);
    }

    #[test]
    fn emits_setparam_per_rotation() {
        let mut c = Circuit::new(1);
        c.rx(0, 0.5).ry(0, 1.5);
        let prog = EqasmProgram::emit(&c).unwrap();
        let setparams = prog
            .instructions()
            .iter()
            .filter(|i| i.opcode == EqasmOpcode::SetParam)
            .count();
        assert_eq!(setparams, 2);
        // Ends with END.
        assert_eq!(prog.instructions().last().unwrap().opcode, EqasmOpcode::End);
    }

    #[test]
    fn stream_is_much_larger_than_gate_count() {
        // The Table 1 effect: dedicated encoding inflates the stream.
        let native = bound_qaoa(16);
        let prog = EqasmProgram::emit(&native).unwrap();
        assert!(prog.len() > native.operations().len());
        assert_eq!(prog.to_bytes().len(), prog.len() * 4);
    }

    #[test]
    fn qubit_limit_is_128() {
        let mut c = Circuit::new(129);
        c.rx(128, 0.1);
        assert!(matches!(
            EqasmProgram::emit(&c),
            Err(CompileError::TooManyQubits { layout: 128, .. })
        ));
        let mut ok = Circuit::new(128);
        ok.rx(127, 0.1);
        assert!(EqasmProgram::emit(&ok).is_ok());
    }

    #[test]
    fn unbound_parameters_rejected() {
        use qtenon_quantum::ParamId;
        let mut c = Circuit::new(1);
        c.ry_param(0, ParamId::new(0));
        assert!(EqasmProgram::emit(&c).is_err());
    }

    #[test]
    fn rebinding_changes_the_binary() {
        // The dedicated ISA's weakness: a one-parameter change produces a
        // different binary → full re-upload.
        let mut c = Circuit::new(2);
        use qtenon_quantum::ParamId;
        c.ry_param(0, ParamId::new(0)).cz(0, 1).measure_all();
        let a = EqasmProgram::emit(&c.bind(&[0.4]).unwrap()).unwrap();
        let b = EqasmProgram::emit(&c.bind(&[0.9]).unwrap()).unwrap();
        assert_eq!(a.len(), b.len());
        assert_ne!(a.to_bytes(), b.to_bytes());
    }
}
