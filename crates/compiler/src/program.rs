//! Circuit → Qtenon program compilation.

use qtenon_isa::{EncodedAngle, GateType, Instruction, ProgramEntry, QccLayout, QubitId};
use qtenon_quantum::{Angle, Circuit, Gate, ParamId};
use serde::{Deserialize, Serialize};

use crate::CompileError;

/// One register-file slot: a `(parameter, scale)` binding shared by every
/// gate whose angle is `scale × θ[param]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegSlot {
    /// The variational parameter feeding the slot.
    pub param: ParamId,
    /// The per-gate scale folded into the stored angle.
    pub scale: f64,
}

impl RegSlot {
    /// The encoded angle this slot holds for a parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if the parameter index is out of range.
    pub fn encoded_value(&self, params: &[f64]) -> EncodedAngle {
        EncodedAngle::from_radians(self.scale * params[self.param.index() as usize])
    }
}

/// A circuit compiled into Qtenon's program representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    layout: QccLayout,
    /// Per-qubit program chunks, in execution order.
    chunks: Vec<Vec<ProgramEntry>>,
    /// Register-slot table; index = regfile index.
    slots: Vec<RegSlot>,
    /// Number of measurement entries (one `.measure` result per measured
    /// qubit per shot).
    measured_qubits: Vec<u32>,
    /// Number of parameters the source circuit takes.
    num_params: usize,
}

impl CompiledProgram {
    /// The layout this program was compiled against.
    pub fn layout(&self) -> QccLayout {
        self.layout
    }

    /// Per-qubit program chunks.
    pub fn chunks(&self) -> &[Vec<ProgramEntry>] {
        &self.chunks
    }

    /// The register-slot table.
    pub fn slots(&self) -> &[RegSlot] {
        &self.slots
    }

    /// Qubits measured by the program, in program order.
    pub fn measured_qubits(&self) -> &[u32] {
        &self.measured_qubits
    }

    /// Parameters expected by [`CompiledProgram::bind_instructions`].
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Total program entries across all chunks.
    pub fn total_entries(&self) -> u64 {
        self.chunks.iter().map(|c| c.len() as u64).sum()
    }

    /// Instructions that load the program into the controller: one
    /// `q_set` per non-empty qubit chunk (the chunk layout means no qubit
    /// indices travel with the data — Table 1's code-size win).
    ///
    /// `host_base` is where the program image lives in host memory.
    pub fn load_instructions(&self, host_base: u64) -> Vec<Instruction> {
        let mut out = Vec::new();
        let mut host_addr = host_base;
        for (q, chunk) in self.chunks.iter().enumerate() {
            if chunk.is_empty() {
                continue;
            }
            let qaddr = self
                .layout
                .program_entry(QubitId::new(q as u32), 0)
                .expect("chunk fits layout");
            out.push(Instruction::QSet {
                classical_addr: host_addr,
                qaddr,
                length: chunk.len() as u64,
            });
            // Program entries pack to 65 bits; the host image stores them
            // as 9-byte records.
            host_addr += chunk.len() as u64 * 9;
        }
        out
    }

    /// Instructions that (re)bind every register slot for `params`: one
    /// `q_update` per slot.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::ParameterCountMismatch`] on a vector whose
    /// length differs from [`CompiledProgram::num_params`] (excess
    /// parameters are rejected, not ignored), and
    /// [`CompileError::SlotOutOfRange`] if a slot exceeds the register
    /// file — unreachable for programs this compiler produced, but typed
    /// rather than a panic for deserialized ones.
    pub fn bind_instructions(&self, params: &[f64]) -> Result<Vec<Instruction>, CompileError> {
        if params.len() != self.num_params {
            return Err(CompileError::ParameterCountMismatch {
                expected: self.num_params,
                got: params.len(),
            });
        }
        self.slots
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                let qaddr = self.layout.regfile_entry(i as u64).map_err(|_| {
                    CompileError::SlotOutOfRange {
                        slot: i,
                        capacity: self.layout.regfile_entries(),
                    }
                })?;
                Ok(Instruction::QUpdate {
                    qaddr,
                    value: slot.encoded_value(params).code(),
                })
            })
            .collect()
    }

    /// One `q_gen` per non-empty chunk, covering exactly the used entries.
    pub fn gen_instructions(&self) -> Vec<Instruction> {
        self.chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(q, c)| Instruction::QGen {
                qaddr: self
                    .layout
                    .program_entry(QubitId::new(q as u32), 0)
                    .expect("chunk fits layout"),
                length: c.len() as u64,
            })
            .collect()
    }

    /// The pulse work implied by the program for a parameter vector: the
    /// regfile-resolved `(qubit, gate, data)` stream the controller
    /// pipeline consumes, in chunk order.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::ParameterCountMismatch`] on a vector whose
    /// length differs from [`CompiledProgram::num_params`], and
    /// [`CompileError::SlotOutOfRange`] if a `reg_flag` entry references
    /// a slot outside the slot table.
    pub fn work_items(
        &self,
        params: &[f64],
    ) -> Result<Vec<(QubitId, GateType, u32)>, CompileError> {
        if params.len() != self.num_params {
            return Err(CompileError::ParameterCountMismatch {
                expected: self.num_params,
                got: params.len(),
            });
        }
        let mut out = Vec::with_capacity(self.total_entries() as usize);
        for (q, chunk) in self.chunks.iter().enumerate() {
            for entry in chunk {
                let data = if entry.reg_flag {
                    let slot = self.slots.get(entry.data as usize).ok_or(
                        CompileError::SlotOutOfRange {
                            slot: entry.data as usize,
                            capacity: self.slots.len() as u64,
                        },
                    )?;
                    slot.encoded_value(params).code()
                } else {
                    entry.data
                };
                out.push((QubitId::new(q as u32), entry.gate, data));
            }
        }
        Ok(out)
    }
}

/// Compiler from native circuits to [`CompiledProgram`]s.
///
/// # Examples
///
/// ```
/// use qtenon_compiler::QtenonCompiler;
/// use qtenon_isa::QccLayout;
/// use qtenon_quantum::{Circuit, ParamId};
///
/// let layout = QccLayout::for_qubits(4)?;
/// let mut c = Circuit::new(4);
/// c.ry_param(0, ParamId::new(0)).cz(0, 1).measure_all();
/// let program = QtenonCompiler::new(layout).compile(&c)?;
/// assert_eq!(program.slots().len(), 1);
/// assert_eq!(program.measured_qubits().len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct QtenonCompiler {
    layout: QccLayout,
}

impl QtenonCompiler {
    /// Creates a compiler targeting `layout`.
    pub fn new(layout: QccLayout) -> Self {
        QtenonCompiler { layout }
    }

    /// Compiles a *native* (transpiled) circuit.
    ///
    /// Gates whose angle is symbolic get `reg_flag = 1` and share register
    /// slots by `(parameter, scale)`; literal angles are inlined.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] for non-native gates or capacity overflow.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, CompileError> {
        if circuit.n_qubits() > self.layout.n_qubits() {
            return Err(CompileError::TooManyQubits {
                circuit: circuit.n_qubits(),
                layout: self.layout.n_qubits(),
            });
        }
        let mut chunks: Vec<Vec<ProgramEntry>> = vec![Vec::new(); self.layout.n_qubits() as usize];
        let mut slots: Vec<RegSlot> = Vec::new();
        let mut measured = Vec::new();

        let slot_for = |param: ParamId, scale: f64, slots: &mut Vec<RegSlot>| -> u32 {
            match slots
                .iter()
                .position(|s| s.param == param && s.scale.to_bits() == scale.to_bits())
            {
                Some(i) => i as u32,
                None => {
                    slots.push(RegSlot { param, scale });
                    (slots.len() - 1) as u32
                }
            }
        };

        for op in circuit.operations() {
            let q = op.qubit as usize;
            let entry = match op.gate {
                Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) => {
                    let gate_type = match op.gate {
                        Gate::Rx(_) => GateType::Rx,
                        Gate::Ry(_) => GateType::Ry,
                        _ => GateType::Rz,
                    };
                    match a {
                        Angle::Value(v) => {
                            ProgramEntry::rotation(gate_type, EncodedAngle::from_radians(v))
                        }
                        Angle::Param { param, scale } => {
                            let idx = slot_for(param, scale, &mut slots);
                            ProgramEntry::rotation_from_reg(gate_type, idx).map_err(|_| {
                                CompileError::SlotOutOfRange {
                                    slot: idx as usize,
                                    capacity: self.layout.regfile_entries(),
                                }
                            })?
                        }
                    }
                }
                Gate::Cz => {
                    let partner = op
                        .qubit2
                        .ok_or(CompileError::MissingOperand { gate: "cz" })?;
                    ProgramEntry::cz(partner).map_err(|_| CompileError::TooManyQubits {
                        circuit: circuit.n_qubits(),
                        layout: self.layout.n_qubits(),
                    })?
                }
                Gate::Measure => {
                    measured.push(op.qubit);
                    ProgramEntry::measure()
                }
                other => {
                    return Err(CompileError::NonNativeGate { gate: other.name() });
                }
            };
            chunks[q].push(entry);
            let cap = self.layout.program_entries_per_qubit();
            if chunks[q].len() as u64 > cap {
                return Err(CompileError::ChunkOverflow {
                    qubit: op.qubit,
                    capacity: cap,
                });
            }
        }

        if slots.len() as u64 > self.layout.regfile_entries() {
            return Err(CompileError::RegfileOverflow {
                needed: slots.len(),
                capacity: self.layout.regfile_entries(),
            });
        }

        Ok(CompiledProgram {
            layout: self.layout,
            chunks,
            slots,
            measured_qubits: measured,
            num_params: circuit.num_params(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtenon_quantum::transpile;

    fn layout() -> QccLayout {
        QccLayout::for_qubits(8).unwrap()
    }

    #[test]
    fn entries_land_in_owning_chunks() {
        let mut c = Circuit::new(8);
        c.rx(0, 0.5).rx(3, 0.7).cz(3, 4).measure(3);
        let p = QtenonCompiler::new(layout()).compile(&c).unwrap();
        assert_eq!(p.chunks()[0].len(), 1);
        assert_eq!(p.chunks()[3].len(), 3); // rx + cz + measure
        assert_eq!(p.chunks()[4].len(), 0); // CZ lives on its primary qubit
        assert_eq!(p.total_entries(), 4);
        assert_eq!(p.measured_qubits(), &[3]);
    }

    #[test]
    fn shared_parameters_share_slots() {
        let mut c = Circuit::new(4);
        let gamma = ParamId::new(0);
        // Same (param, scale) on many qubits: one slot.
        for q in 0..4 {
            c.rx_scaled_param(q, gamma, 2.0);
        }
        // Different scale: second slot.
        c.rz_scaled_param(0, gamma, 1.0);
        let p = QtenonCompiler::new(layout()).compile(&c).unwrap();
        assert_eq!(p.slots().len(), 2);
        assert_eq!(p.num_params(), 1);
    }

    #[test]
    fn literal_angles_are_inlined() {
        let mut c = Circuit::new(1);
        c.ry(0, 1.25);
        let p = QtenonCompiler::new(layout()).compile(&c).unwrap();
        let entry = p.chunks()[0][0];
        assert!(!entry.reg_flag);
        assert_eq!(entry.data, EncodedAngle::from_radians(1.25).code());
        assert!(p.slots().is_empty());
    }

    #[test]
    fn non_native_rejected_but_transpiled_accepted() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let compiler = QtenonCompiler::new(layout());
        assert!(matches!(
            compiler.compile(&c),
            Err(CompileError::NonNativeGate { gate: "H" })
        ));
        let native = transpile::to_native(&c).unwrap();
        assert!(compiler.compile(&native).is_ok());
    }

    #[test]
    fn load_instructions_one_qset_per_used_chunk() {
        let mut c = Circuit::new(8);
        c.rx(0, 0.1).rx(5, 0.2).rx(5, 0.3);
        let p = QtenonCompiler::new(layout()).compile(&c).unwrap();
        let loads = p.load_instructions(0x9000_0000);
        assert_eq!(loads.len(), 2);
        match loads[1] {
            Instruction::QSet {
                classical_addr,
                qaddr,
                length,
            } => {
                assert_eq!(length, 2);
                // Host image advances past qubit 0's 1 entry × 9 bytes.
                assert_eq!(classical_addr, 0x9000_0000 + 9);
                assert_eq!(qaddr, layout().program_entry(QubitId::new(5), 0).unwrap());
            }
            ref other => panic!("expected q_set, got {other}"),
        }
    }

    #[test]
    fn bind_instructions_encode_scaled_angles() {
        let mut c = Circuit::new(1);
        c.rx_scaled_param(0, ParamId::new(0), 2.0);
        let p = QtenonCompiler::new(layout()).compile(&c).unwrap();
        let binds = p.bind_instructions(&[0.75]).unwrap();
        assert_eq!(binds.len(), 1);
        match binds[0] {
            Instruction::QUpdate { value, .. } => {
                assert_eq!(value, EncodedAngle::from_radians(1.5).code());
            }
            ref other => panic!("expected q_update, got {other}"),
        }
        assert!(p.bind_instructions(&[]).is_err());
    }

    #[test]
    fn work_items_resolve_regfile() {
        let mut c = Circuit::new(2);
        c.ry_param(0, ParamId::new(0)).cz(0, 1);
        let p = QtenonCompiler::new(layout()).compile(&c).unwrap();
        let items = p.work_items(&[0.9]).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].1, GateType::Ry);
        assert_eq!(items[0].2, EncodedAngle::from_radians(0.9).code());
        assert_eq!(items[1].1, GateType::Cz);
        assert_eq!(items[1].2, 1); // partner qubit index
    }

    #[test]
    fn gen_instructions_cover_used_entries() {
        let mut c = Circuit::new(8);
        c.rx(2, 0.1).rx(2, 0.2);
        let p = QtenonCompiler::new(layout()).compile(&c).unwrap();
        let gens = p.gen_instructions();
        assert_eq!(gens.len(), 1);
        match gens[0] {
            Instruction::QGen { length, .. } => assert_eq!(length, 2),
            ref other => panic!("expected q_gen, got {other}"),
        }
    }

    #[test]
    fn chunk_overflow_detected() {
        let small = QccLayout::with_geometry(1, 2, 2, 16, 16).unwrap();
        let mut c = Circuit::new(1);
        c.rx(0, 0.1).rx(0, 0.2).rx(0, 0.3);
        assert!(matches!(
            QtenonCompiler::new(small).compile(&c),
            Err(CompileError::ChunkOverflow { qubit: 0, .. })
        ));
    }

    #[test]
    fn wide_circuit_rejected() {
        let mut c = Circuit::new(16);
        c.rx(15, 0.1);
        assert!(matches!(
            QtenonCompiler::new(layout()).compile(&c),
            Err(CompileError::TooManyQubits { .. })
        ));
    }
}
