//! Fleet-scale content-addressed compilation/pulse cache.
//!
//! The paper's dynamic incremental compilation (Section 6.1) removes
//! recompiles *within* one run; at fleet scale most compilation work is
//! redundant *across* jobs, because thousands of queued jobs run
//! near-identical ansätze. The [`CompilationCache`] closes that gap: it
//! is shared by every worker in a `BatchScheduler` pool and maps
//! canonical content keys to immutable compiled artefacts, so a queue of
//! duplicated jobs compiles each distinct circuit once.
//!
//! Three levels are cached:
//!
//! - **programs** — `(circuit structure, QCC layout)` →
//!   [`CompiledProgram`]. The key encodes every operation (gate tag,
//!   operands, literal angle bits or `(param, scale)` bits) plus the
//!   full layout geometry, so equal keys imply equal compiler output.
//! - **pulses** — `(program key, encoded parameter vector)` → the
//!   resolved `(qubit, gate, data)` work-item stream. The parameter
//!   vector enters the key through the same 27-bit encoded register
//!   values that [`crate::ParameterDiff`] compares, so two parameter
//!   vectors share a pulse entry exactly when they are
//!   hardware-indistinguishable.
//! - **bound circuits** — the same pulse key → the parameter-bound
//!   circuit. Binding is a pure per-evaluation substitution, so
//!   duplicated jobs walking the same optimizer trajectory share every
//!   bound circuit too.
//!
//! Determinism rule: a hit must be byte-identical to a cold compile at
//! any pool width. Three properties enforce it. Keys store the *full*
//! canonical bytes and lookups compare them, so a 64-bit shard-hash
//! collision can never alias two circuits. The compiler itself is a pure
//! function of the key, so racing workers that each miss produce
//! identical values and first-writer-wins insertion only ever discards a
//! duplicate. And cached values are immutable behind `Arc`, so sharing
//! cannot mutate.
//!
//! Eviction is per-shard FIFO in insertion order: deterministic given an
//! insertion order, cheap, and a good fit for fleet queues where
//! near-identical jobs arrive near each other.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use qtenon_isa::{GateType, QccLayout, QubitId};
use qtenon_quantum::{Angle, Circuit, Gate};
use qtenon_sim_engine::{Histogram, MetricsRegistry};

use crate::program::{CompiledProgram, QtenonCompiler};
use crate::CompileError;

/// A cached, immutable pulse work-item stream.
pub type PulseSchedule = Arc<Vec<(QubitId, GateType, u32)>>;

/// Number of lock stripes. Power of two so shard selection is a mask.
const SHARDS: usize = 16;

/// Default entry budget per cache level (programs and pulses each).
pub const DEFAULT_CAPACITY: usize = 1024;

/// Key-encoding version; bumped whenever the canonical byte layout
/// changes so stale persisted keys can never alias.
const KEY_VERSION: u8 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a folded over 8-byte words (tail handled bytewise), seeded so
/// pulse hashes can continue from program hashes. Used only for shard
/// selection and hash-table bucketing — equality always compares the
/// full canonical bytes, so hash quality affects speed, never
/// correctness.
fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn gate_tag(gate: &Gate) -> u8 {
    match gate {
        Gate::H => 0,
        Gate::X => 1,
        Gate::Y => 2,
        Gate::Z => 3,
        Gate::S => 4,
        Gate::T => 5,
        Gate::Rx(_) => 6,
        Gate::Ry(_) => 7,
        Gate::Rz(_) => 8,
        Gate::Cx => 9,
        Gate::Cz => 10,
        Gate::Measure => 11,
    }
}

/// Canonical program key: every byte of circuit structure and layout
/// geometry that the compiler's output depends on.
///
/// The encoder is on the hot path of every cached compile (hits
/// included), so each operation is serialised into a fixed stack buffer
/// and appended with one `extend_from_slice`, and the output is sized
/// for the 23-byte worst case up front — a key for a 10k-op circuit
/// must cost far less than compiling it.
fn encode_program_key(circuit: &Circuit, layout: &QccLayout) -> Vec<u8> {
    let ops = circuit.operations();
    // Header: version(1) + n_qubits(4) + six u64 geometry fields(48) +
    // circuit qubits(4) + op count(4). Worst-case op: tag(1) +
    // qubit(4) + q2 flag/value(5) + angle tag(1) + param index(4) +
    // angle bits(8) = 23 bytes.
    let mut out = Vec::with_capacity(61 + ops.len() * 23);
    out.push(KEY_VERSION);
    // Layout geometry: compiled addresses depend on every field.
    push_u32(&mut out, layout.n_qubits());
    push_u64(&mut out, layout.program_entries_per_qubit());
    push_u64(&mut out, layout.pulse_entries_per_qubit());
    push_u64(&mut out, layout.measure_entries());
    push_u64(&mut out, layout.regfile_entries());
    push_u64(&mut out, layout.slt_ways());
    push_u64(&mut out, layout.slt_entries_per_way());
    // Circuit structure, in program order.
    push_u32(&mut out, circuit.n_qubits());
    push_u32(&mut out, ops.len() as u32);
    for op in ops {
        let mut buf = [0u8; 23];
        buf[0] = gate_tag(&op.gate);
        buf[1..5].copy_from_slice(&op.qubit.to_le_bytes());
        let mut n = 6; // buf[5] stays 0 for "no second operand"
        if let Some(q2) = op.qubit2 {
            buf[5] = 1;
            buf[6..10].copy_from_slice(&q2.to_le_bytes());
            n = 10;
        }
        if let Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) = &op.gate {
            match a {
                Angle::Value(v) => {
                    buf[n] = 0;
                    buf[n + 1..n + 9].copy_from_slice(&v.to_bits().to_le_bytes());
                    n += 9;
                }
                Angle::Param { param, scale } => {
                    buf[n] = 1;
                    buf[n + 1..n + 5].copy_from_slice(&param.index().to_le_bytes());
                    buf[n + 5..n + 13].copy_from_slice(&scale.to_bits().to_le_bytes());
                    n += 13;
                }
            }
        }
        out.extend_from_slice(&buf[..n]);
    }
    out
}

/// The per-slot 27-bit register codes for `params` — the variable half
/// of a pulse key. Hash identity implies hardware identity, because two
/// parameter vectors that encode identically drive identical pulses.
fn encode_slot_codes(program: &CompiledProgram, params: &[f64]) -> Result<Vec<u8>, CompileError> {
    if params.len() != program.num_params() {
        return Err(CompileError::ParameterCountMismatch {
            expected: program.num_params(),
            got: params.len(),
        });
    }
    let mut out = Vec::with_capacity(program.slots().len() * 4);
    for slot in program.slots() {
        push_u32(&mut out, slot.encoded_value(params).code());
    }
    Ok(out)
}

/// Interned canonical program key: the full bytes plus their hash,
/// computed once at interning so every probe, shard pick, and pulse-key
/// derivation reuses it instead of re-hashing ~20 bytes per operation.
#[derive(Debug, Clone)]
struct ProgramKey {
    hash: u64,
    bytes: Arc<[u8]>,
}

impl ProgramKey {
    fn new(bytes: Vec<u8>) -> Self {
        let hash = hash_bytes(FNV_OFFSET, &bytes);
        ProgramKey {
            hash,
            bytes: bytes.into(),
        }
    }
}

impl PartialEq for ProgramKey {
    fn eq(&self, other: &Self) -> bool {
        // Full-byte comparison (behind a pointer fast path) keeps hash
        // collisions harmless: they cost a memcmp, never an alias.
        self.hash == other.hash
            && (Arc::ptr_eq(&self.bytes, &other.bytes) || self.bytes == other.bytes)
    }
}

impl Eq for ProgramKey {}

impl std::hash::Hash for ProgramKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Canonical pulse key: the program key plus the encoded parameter
/// codes. The program half is shared by reference, so building one
/// costs O(slots), not O(circuit) — equality still compares every
/// canonical byte of both halves.
#[derive(Debug, Clone)]
struct PulseKey {
    hash: u64,
    program: ProgramKey,
    codes: Arc<[u8]>,
}

/// Domain separator folded between the program hash and the slot codes
/// so a pulse key can never hash like a program key.
const PULSE_DOMAIN: u64 = 0xA5;

impl PulseKey {
    fn new(program: ProgramKey, codes: Vec<u8>) -> Self {
        let hash = hash_bytes(program.hash ^ PULSE_DOMAIN, &codes);
        PulseKey {
            hash,
            program,
            codes: codes.into(),
        }
    }

    /// Approximate footprint charged to the bytes counter.
    fn cost(&self) -> u64 {
        (self.program.bytes.len() + 1 + self.codes.len()) as u64
    }
}

impl PartialEq for PulseKey {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.codes == other.codes && self.program == other.program
    }
}

impl Eq for PulseKey {}

impl std::hash::Hash for PulseKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Shard selection for a cache key: the precomputed content hash.
trait ShardKey {
    fn shard_hash(&self) -> u64;
}

impl ShardKey for ProgramKey {
    fn shard_hash(&self) -> u64 {
        self.hash
    }
}

impl ShardKey for PulseKey {
    fn shard_hash(&self) -> u64 {
        self.hash
    }
}

/// A compiled program handed out by the cache, carrying its canonical
/// key so pulse lookups can reuse it.
#[derive(Debug, Clone)]
pub struct CachedProgram {
    program: Arc<CompiledProgram>,
    /// The source circuit, shared so bound-circuit misses can bind
    /// without the caller re-supplying it.
    source: Arc<Circuit>,
    key: ProgramKey,
    hit: bool,
}

impl CachedProgram {
    /// The shared compiled program.
    pub fn program(&self) -> &Arc<CompiledProgram> {
        &self.program
    }

    /// Whether this lookup was served from the cache.
    pub fn is_hit(&self) -> bool {
        self.hit
    }

    /// The canonical content key (exposed for collision-shape tests).
    pub fn key_bytes(&self) -> &[u8] {
        &self.key.bytes
    }
}

/// A parameter-bound circuit handed out by the cache: the pure result
/// of substituting a hardware-identical parameter vector into the
/// cached program's source circuit.
#[derive(Debug, Clone)]
pub struct CachedBound {
    circuit: Arc<Circuit>,
    hit: bool,
}

impl CachedBound {
    /// The shared bound circuit.
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// Whether this lookup was served from the cache.
    pub fn is_hit(&self) -> bool {
        self.hit
    }
}

/// A pulse work-item stream handed out by the cache.
#[derive(Debug, Clone)]
pub struct CachedPulses {
    items: PulseSchedule,
    hit: bool,
}

impl CachedPulses {
    /// The shared work-item stream.
    pub fn items(&self) -> &PulseSchedule {
        &self.items
    }

    /// Whether this lookup was served from the cache.
    pub fn is_hit(&self) -> bool {
        self.hit
    }
}

impl std::ops::Deref for CachedPulses {
    type Target = [(QubitId, GateType, u32)];
    fn deref(&self) -> &Self::Target {
        &self.items
    }
}

struct Shard<K, V> {
    entries: HashMap<K, V>,
    order: VecDeque<K>,
}

impl<K, V> Shard<K, V> {
    fn new() -> Self {
        Shard {
            entries: HashMap::new(),
            order: VecDeque::new(),
        }
    }
}

struct Level<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    per_shard_capacity: usize,
}

/// What a level insert did, for stats accounting.
enum Inserted<V> {
    /// Our value went in; `evicted` values were displaced.
    Fresh { evicted: u64 },
    /// Another worker won the race; their value is returned.
    Raced(V),
}

impl<K, V> Level<K, V>
where
    K: ShardKey + std::hash::Hash + Eq + Clone,
    V: Clone,
{
    fn new(capacity: usize) -> Self {
        let per_shard_capacity = capacity.div_ceil(SHARDS).max(1);
        Level {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity,
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        &self.shards[(key.shard_hash() as usize) & (SHARDS - 1)]
    }

    fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.entries.get(key).cloned()
    }

    /// First-writer-wins insert: if `key` is already present the
    /// existing value is kept and returned, so every worker converges on
    /// one shared artefact regardless of interleaving.
    fn insert(&self, key: K, value: V) -> Inserted<V> {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if let Some(existing) = shard.entries.get(&key) {
            return Inserted::Raced(existing.clone());
        }
        let mut evicted = 0u64;
        while shard.entries.len() >= self.per_shard_capacity {
            match shard.order.pop_front() {
                Some(oldest) => {
                    shard.entries.remove(&oldest);
                    evicted += 1;
                }
                None => break,
            }
        }
        shard.order.push_back(key.clone());
        shard.entries.insert(key, value);
        Inserted::Fresh { evicted }
    }
}

/// Point-in-time cache statistics, for telemetry export and studies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Program-level hits.
    pub program_hits: u64,
    /// Program-level misses (cold compiles).
    pub program_misses: u64,
    /// Pulse-level hits.
    pub pulse_hits: u64,
    /// Pulse-level misses (cold work-item generation).
    pub pulse_misses: u64,
    /// Bound-circuit hits.
    pub bound_hits: u64,
    /// Bound-circuit misses (cold parameter binds).
    pub bound_misses: u64,
    /// Entries inserted (both levels).
    pub inserts: u64,
    /// Concurrent inserts that lost first-writer-wins.
    pub insert_races: u64,
    /// Entries displaced by FIFO eviction.
    pub evictions: u64,
    /// Approximate bytes currently cached.
    pub bytes: u64,
    /// Wall-clock latency of cache hits, in nanoseconds.
    pub hit_latency_ns: Histogram,
}

impl CacheStats {
    /// Total lookups across all levels.
    pub fn lookups(&self) -> u64 {
        self.program_hits
            + self.program_misses
            + self.pulse_hits
            + self.pulse_misses
            + self.bound_hits
            + self.bound_misses
    }

    /// Hit fraction across all levels; `None` for zero lookups (so
    /// renderers can print a fixed placeholder instead of a NaN).
    pub fn hit_rate(&self) -> Option<f64> {
        let lookups = self.lookups();
        if lookups == 0 {
            None
        } else {
            Some((self.program_hits + self.pulse_hits + self.bound_hits) as f64 / lookups as f64)
        }
    }

    /// One-line human rendering. An idle cache prints a fixed
    /// placeholder — never a NaN or a division by zero.
    pub fn describe(&self) -> String {
        match self.hit_rate() {
            None => "compile cache: idle (0 lookups)".to_string(),
            Some(rate) => format!(
                "compile cache: {}/{} lookups hit ({:.1}%), {} inserts, {} evictions, {} bytes",
                self.program_hits + self.pulse_hits + self.bound_hits,
                self.lookups(),
                rate * 100.0,
                self.inserts,
                self.evictions,
                self.bytes,
            ),
        }
    }

    /// Publishes the stats under `cache.fleet.*`.
    pub fn export(&self, m: &mut MetricsRegistry) {
        m.counter("cache.fleet.program.hits", self.program_hits);
        m.counter("cache.fleet.program.misses", self.program_misses);
        m.counter("cache.fleet.pulse.hits", self.pulse_hits);
        m.counter("cache.fleet.pulse.misses", self.pulse_misses);
        m.counter("cache.fleet.bound.hits", self.bound_hits);
        m.counter("cache.fleet.bound.misses", self.bound_misses);
        m.counter("cache.fleet.inserts", self.inserts);
        m.counter("cache.fleet.insert_races", self.insert_races);
        m.counter("cache.fleet.evictions", self.evictions);
        m.counter("cache.fleet.bytes", self.bytes);
        m.gauge("cache.fleet.hit_rate", self.hit_rate().unwrap_or_default());
        m.histogram("cache.fleet.hit_latency_ns", &self.hit_latency_ns);
    }
}

/// The shared content-addressed compilation/pulse cache.
///
/// # Examples
///
/// ```
/// use qtenon_compiler::CompilationCache;
/// use qtenon_isa::QccLayout;
/// use qtenon_quantum::{Circuit, ParamId};
///
/// let cache = CompilationCache::new(64);
/// let layout = QccLayout::for_qubits(2)?;
/// let mut c = Circuit::new(2);
/// c.ry_param(0, ParamId::new(0)).cz(0, 1).measure_all();
///
/// let cold = cache.compile(layout, &c)?;
/// let hit = cache.compile(layout, &c)?;
/// assert!(!cold.is_hit() && hit.is_hit());
/// assert_eq!(cold.program(), hit.program());
///
/// let items = cache.work_items(&hit, &[0.3])?;
/// assert_eq!(items.items(), cache.work_items(&cold, &[0.3])?.items());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CompilationCache {
    programs: Level<ProgramKey, (Arc<CompiledProgram>, Arc<Circuit>)>,
    pulses: Level<PulseKey, PulseSchedule>,
    bounds: Level<PulseKey, Arc<Circuit>>,
    program_hits: AtomicU64,
    program_misses: AtomicU64,
    pulse_hits: AtomicU64,
    pulse_misses: AtomicU64,
    bound_hits: AtomicU64,
    bound_misses: AtomicU64,
    inserts: AtomicU64,
    insert_races: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
    hit_latency_ns: Mutex<Histogram>,
}

impl std::fmt::Debug for CompilationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompilationCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl CompilationCache {
    /// Creates a cache holding up to `capacity` entries per level.
    pub fn new(capacity: usize) -> Self {
        CompilationCache {
            programs: Level::new(capacity),
            pulses: Level::new(capacity),
            bounds: Level::new(capacity),
            program_hits: AtomicU64::new(0),
            program_misses: AtomicU64::new(0),
            pulse_hits: AtomicU64::new(0),
            pulse_misses: AtomicU64::new(0),
            bound_hits: AtomicU64::new(0),
            bound_misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            insert_races: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            hit_latency_ns: Mutex::new(Histogram::new()),
        }
    }

    /// Creates a cache ready to share across a worker pool.
    pub fn shared(capacity: usize) -> Arc<Self> {
        Arc::new(CompilationCache::new(capacity))
    }

    /// The canonical program key for a circuit under a layout (exposed
    /// for collision-shape tests and per-job attribution).
    pub fn program_key(circuit: &Circuit, layout: &QccLayout) -> Vec<u8> {
        encode_program_key(circuit, layout)
    }

    /// Compiles `circuit` for `layout`, serving from the cache when an
    /// identical compile is already shared.
    ///
    /// # Errors
    ///
    /// Propagates any [`CompileError`] from a cold compile; hits cannot
    /// fail.
    pub fn compile(
        &self,
        layout: QccLayout,
        circuit: &Circuit,
    ) -> Result<CachedProgram, CompileError> {
        let started = Instant::now();
        let key = ProgramKey::new(encode_program_key(circuit, &layout));
        if let Some((program, source)) = self.programs.get(&key) {
            self.program_hits.fetch_add(1, Ordering::Relaxed);
            self.observe_hit(started);
            return Ok(CachedProgram {
                program,
                source,
                key,
                hit: true,
            });
        }
        self.program_misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(QtenonCompiler::new(layout).compile(circuit)?);
        let source = Arc::new(circuit.clone());
        let cost = program_bytes(&compiled) + circuit_bytes(circuit) + key.bytes.len() as u64;
        let value = (Arc::clone(&compiled), Arc::clone(&source));
        let (program, source) = match self.programs.insert(key.clone(), value) {
            Inserted::Fresh { evicted } => {
                self.account_insert(evicted, cost);
                (compiled, source)
            }
            Inserted::Raced(existing) => {
                self.insert_races.fetch_add(1, Ordering::Relaxed);
                existing
            }
        };
        Ok(CachedProgram {
            program,
            source,
            key,
            hit: false,
        })
    }

    /// Resolves the parameter-bound circuit for `params`, serving from
    /// the cache when a hardware-identical parameter vector already
    /// bound it. Binding is a pure function of `(circuit, params)`, so
    /// a hit is byte-identical to a cold bind.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::ParameterCountMismatch`] on a
    /// wrong-length vector.
    pub fn bound_circuit(
        &self,
        cached: &CachedProgram,
        params: &[f64],
    ) -> Result<CachedBound, CompileError> {
        let started = Instant::now();
        let codes = encode_slot_codes(cached.program(), params)?;
        let key = PulseKey::new(cached.key.clone(), codes);
        if let Some(circuit) = self.bounds.get(&key) {
            self.bound_hits.fetch_add(1, Ordering::Relaxed);
            self.observe_hit(started);
            return Ok(CachedBound { circuit, hit: true });
        }
        self.bound_misses.fetch_add(1, Ordering::Relaxed);
        let bound = Arc::new(cached.source.bind(params).map_err(|_| {
            CompileError::ParameterCountMismatch {
                expected: cached.program().num_params(),
                got: params.len(),
            }
        })?);
        let cost = circuit_bytes(&bound) + key.cost();
        let circuit = match self.bounds.insert(key, Arc::clone(&bound)) {
            Inserted::Fresh { evicted } => {
                self.account_insert(evicted, cost);
                bound
            }
            Inserted::Raced(existing) => {
                self.insert_races.fetch_add(1, Ordering::Relaxed);
                existing
            }
        };
        Ok(CachedBound {
            circuit,
            hit: false,
        })
    }

    /// Resolves the pulse work-item stream for `params`, serving from
    /// the cache when a hardware-identical parameter vector already
    /// generated it.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::ParameterCountMismatch`] on a wrong-length
    /// vector, and propagates work-item generation errors on a miss.
    pub fn work_items(
        &self,
        cached: &CachedProgram,
        params: &[f64],
    ) -> Result<CachedPulses, CompileError> {
        let started = Instant::now();
        let codes = encode_slot_codes(cached.program(), params)?;
        let key = PulseKey::new(cached.key.clone(), codes);
        if let Some(items) = self.pulses.get(&key) {
            self.pulse_hits.fetch_add(1, Ordering::Relaxed);
            self.observe_hit(started);
            return Ok(CachedPulses { items, hit: true });
        }
        self.pulse_misses.fetch_add(1, Ordering::Relaxed);
        let generated = Arc::new(cached.program().work_items(params)?);
        let cost = pulse_bytes(&generated) + key.cost();
        let items = match self.pulses.insert(key, Arc::clone(&generated)) {
            Inserted::Fresh { evicted } => {
                self.account_insert(evicted, cost);
                generated
            }
            Inserted::Raced(existing) => {
                self.insert_races.fetch_add(1, Ordering::Relaxed);
                existing
            }
        };
        Ok(CachedPulses { items, hit: false })
    }

    fn account_insert(&self, evicted: u64, cost: u64) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        self.bytes.fetch_add(cost, Ordering::Relaxed);
    }

    fn observe_hit(&self, started: Instant) {
        let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.hit_latency_ns
            .lock()
            .expect("cache histogram poisoned")
            .record(ns);
    }

    /// A consistent-enough snapshot of the counters for telemetry.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            program_hits: self.program_hits.load(Ordering::Relaxed),
            program_misses: self.program_misses.load(Ordering::Relaxed),
            pulse_hits: self.pulse_hits.load(Ordering::Relaxed),
            pulse_misses: self.pulse_misses.load(Ordering::Relaxed),
            bound_hits: self.bound_hits.load(Ordering::Relaxed),
            bound_misses: self.bound_misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            insert_races: self.insert_races.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            hit_latency_ns: self
                .hit_latency_ns
                .lock()
                .expect("cache histogram poisoned")
                .clone(),
        }
    }
}

/// Approximate in-memory footprint of a compiled program: program
/// entries pack to 9-byte records, slots are `(param, scale)` pairs.
fn program_bytes(program: &CompiledProgram) -> u64 {
    32 + program.total_entries() * 9
        + program.slots().len() as u64 * 16
        + program.measured_qubits().len() as u64 * 4
}

/// Approximate in-memory footprint of a pulse work-item stream.
fn pulse_bytes(items: &[(QubitId, GateType, u32)]) -> u64 {
    16 + items.len() as u64 * 9
}

/// Approximate in-memory footprint of a circuit: per-op gate, operands,
/// and angle storage.
fn circuit_bytes(circuit: &Circuit) -> u64 {
    32 + circuit.operations().len() as u64 * 24
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtenon_quantum::ParamId;

    fn layout() -> QccLayout {
        QccLayout::for_qubits(4).unwrap()
    }

    fn ansatz() -> Circuit {
        let mut c = Circuit::new(4);
        c.ry_param(0, ParamId::new(0))
            .rx_param(1, ParamId::new(1))
            .cz(0, 1)
            .measure_all();
        c
    }

    #[test]
    fn cold_then_hit_shares_one_program() {
        let cache = CompilationCache::new(16);
        let cold = cache.compile(layout(), &ansatz()).unwrap();
        let hit = cache.compile(layout(), &ansatz()).unwrap();
        assert!(!cold.is_hit());
        assert!(hit.is_hit());
        assert!(Arc::ptr_eq(cold.program(), hit.program()));
        let stats = cache.stats();
        assert_eq!(stats.program_hits, 1);
        assert_eq!(stats.program_misses, 1);
        assert_eq!(stats.hit_latency_ns.count(), 1);
    }

    #[test]
    fn pulse_level_reuses_hardware_identical_vectors() {
        let cache = CompilationCache::new(16);
        let p = cache.compile(layout(), &ansatz()).unwrap();
        let a = cache.work_items(&p, &[0.5, 0.25]).unwrap();
        // Below 27-bit resolution: encodes identically, must hit.
        let b = cache.work_items(&p, &[0.5 + 1e-12, 0.25]).unwrap();
        assert!(b.is_hit());
        assert!(Arc::ptr_eq(a.items(), b.items()));
        let c = cache.work_items(&p, &[0.9, 0.25]).unwrap();
        assert!(!c.is_hit());
        assert!(!Arc::ptr_eq(a.items(), c.items()));
        let stats = cache.stats();
        assert_eq!(stats.pulse_hits, 1);
        assert_eq!(stats.pulse_misses, 2);
    }

    #[test]
    fn wrong_length_vectors_never_touch_the_pulse_cache() {
        let cache = CompilationCache::new(16);
        let p = cache.compile(layout(), &ansatz()).unwrap();
        assert!(cache.work_items(&p, &[0.5]).is_err());
        assert!(cache.work_items(&p, &[0.5, 0.25, 0.125]).is_err());
        assert_eq!(cache.stats().pulse_misses, 0);
    }

    #[test]
    fn same_structure_different_params_do_not_collide() {
        let cache = CompilationCache::new(16);
        let p = cache.compile(layout(), &ansatz()).unwrap();
        let a = cache.work_items(&p, &[0.5, 0.25]).unwrap();
        let b = cache.work_items(&p, &[0.25, 0.5]).unwrap();
        assert_ne!(a.items(), b.items());
    }

    #[test]
    fn same_params_different_layout_do_not_collide() {
        let wide = QccLayout::for_qubits(8).unwrap();
        let key_a = CompilationCache::program_key(&ansatz(), &layout());
        let key_b = CompilationCache::program_key(&ansatz(), &wide);
        assert_ne!(key_a, key_b);
    }

    #[test]
    fn literal_and_parameterised_angles_do_not_collide() {
        let mut lit = Circuit::new(2);
        lit.ry(0, 0.5);
        let mut par = Circuit::new(2);
        par.ry_param(0, ParamId::new(0));
        let l = QccLayout::for_qubits(2).unwrap();
        assert_ne!(
            CompilationCache::program_key(&lit, &l),
            CompilationCache::program_key(&par, &l)
        );
    }

    #[test]
    fn fifo_eviction_is_bounded_and_counted() {
        let cache = CompilationCache::new(1);
        // Distinct single-qubit circuits with different literal angles
        // all land somewhere; with 1-entry shards insertions past the
        // first occupant of a shard must evict.
        for i in 0..64 {
            let mut c = Circuit::new(1);
            c.rx(0, i as f64 * 0.1);
            cache
                .compile(QccLayout::for_qubits(1).unwrap(), &c)
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.program_misses, 64);
        assert!(stats.evictions > 0, "1-entry shards never evicted");
    }

    #[test]
    fn empty_cache_stats_render_without_nan() {
        let stats = CompilationCache::new(4).stats();
        assert_eq!(stats.lookups(), 0);
        assert_eq!(stats.hit_rate(), None);
        assert_eq!(stats.describe(), "compile cache: idle (0 lookups)");
        let mut m = MetricsRegistry::new();
        stats.export(&mut m);
        match m.get("cache.fleet.hit_rate") {
            Some(qtenon_sim_engine::MetricValue::Gauge(v)) => assert_eq!(*v, 0.0),
            other => panic!("missing hit_rate gauge: {other:?}"),
        }
    }
}
