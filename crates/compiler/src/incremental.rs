//! Dynamic incremental compilation: minimal update streams between
//! iterations (Section 6.1).
//!
//! Between consecutive VQA iterations only some parameters move. The
//! [`ParameterDiff`] engine compares the *encoded* register values under
//! the old and new parameter vectors and emits one `q_update` per slot
//! whose hardware value actually changed — parameters that moved by less
//! than the 27-bit angle resolution generate no traffic at all. This is
//! what drops recompile overhead from the baseline's 1–100 ms to
//! effectively the cost of a handful of register writes (Table 1).

use qtenon_isa::Instruction;

use crate::program::CompiledProgram;
use crate::CompileError;

/// The incremental-compilation diff between two parameter vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParameterDiff {
    /// `(regfile index, new encoded value)` per changed slot.
    changed: Vec<(u32, u32)>,
    total_slots: usize,
}

impl ParameterDiff {
    /// Computes the diff for `program` between `old` and `new` parameter
    /// vectors.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::ParameterCountMismatch`] if either vector
    /// differs in length from what the program requires. Excess
    /// parameters are rejected too: they would be silently ignored here
    /// but still feed content-addressed cache keys, so a longer vector
    /// must never alias a shorter one.
    pub fn between(
        program: &CompiledProgram,
        old: &[f64],
        new: &[f64],
    ) -> Result<Self, CompileError> {
        let n = program.num_params();
        for v in [old, new] {
            if v.len() != n {
                return Err(CompileError::ParameterCountMismatch {
                    expected: n,
                    got: v.len(),
                });
            }
        }
        let changed = program
            .slots()
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let before = slot.encoded_value(old);
                let after = slot.encoded_value(new);
                (before != after).then_some((i as u32, after.code()))
            })
            .collect();
        Ok(ParameterDiff {
            changed,
            total_slots: program.slots().len(),
        })
    }

    /// Number of slots whose hardware value changed.
    pub fn changed_slots(&self) -> usize {
        self.changed.len()
    }

    /// Total slots in the program.
    pub fn total_slots(&self) -> usize {
        self.total_slots
    }

    /// Fraction of the program's parameter state left untouched — the
    /// "quantum locality" the paper exploits.
    pub fn reuse_fraction(&self) -> f64 {
        if self.total_slots == 0 {
            1.0
        } else {
            1.0 - self.changed.len() as f64 / self.total_slots as f64
        }
    }

    /// The minimal `q_update` stream applying this diff.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::SlotOutOfRange`] if a diffed slot does not
    /// fit the program's register file — possible when the diff was
    /// computed against a different (larger) program than the one it is
    /// applied to.
    pub fn update_instructions(
        &self,
        program: &CompiledProgram,
    ) -> Result<Vec<Instruction>, CompileError> {
        let capacity = program.layout().regfile_entries();
        self.changed
            .iter()
            .map(|&(idx, value)| {
                let qaddr = program.layout().regfile_entry(idx as u64).map_err(|_| {
                    CompileError::SlotOutOfRange {
                        slot: idx as usize,
                        capacity,
                    }
                })?;
                Ok(Instruction::QUpdate { qaddr, value })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::QtenonCompiler;
    use qtenon_isa::QccLayout;
    use qtenon_quantum::{Circuit, ParamId};

    fn two_param_program() -> CompiledProgram {
        let layout = QccLayout::for_qubits(4).unwrap();
        let mut c = Circuit::new(4);
        c.rx_param(0, ParamId::new(0))
            .rx_param(1, ParamId::new(0)) // shares slot 0
            .ry_param(2, ParamId::new(1));
        QtenonCompiler::new(layout).compile(&c).unwrap()
    }

    #[test]
    fn only_changed_parameters_update() {
        let p = two_param_program();
        let diff = ParameterDiff::between(&p, &[1.0, 2.0], &[1.0, 2.5]).unwrap();
        assert_eq!(diff.changed_slots(), 1);
        assert_eq!(diff.total_slots(), 2);
        assert!((diff.reuse_fraction() - 0.5).abs() < 1e-12);
        let updates = diff.update_instructions(&p).unwrap();
        assert_eq!(updates.len(), 1);
    }

    #[test]
    fn identical_vectors_produce_no_traffic() {
        let p = two_param_program();
        let diff = ParameterDiff::between(&p, &[1.0, 2.0], &[1.0, 2.0]).unwrap();
        assert_eq!(diff.changed_slots(), 0);
        assert_eq!(diff.reuse_fraction(), 1.0);
        assert!(diff.update_instructions(&p).unwrap().is_empty());
    }

    #[test]
    fn sub_resolution_changes_are_free() {
        // A change below the 27-bit angle resolution encodes identically.
        let p = two_param_program();
        let diff = ParameterDiff::between(&p, &[1.0, 2.0], &[1.0 + 1e-12, 2.0]).unwrap();
        assert_eq!(diff.changed_slots(), 0);
    }

    #[test]
    fn all_parameters_changing_updates_all_slots() {
        let p = two_param_program();
        let diff = ParameterDiff::between(&p, &[1.0, 2.0], &[1.5, 2.5]).unwrap();
        assert_eq!(diff.changed_slots(), 2);
        assert_eq!(diff.reuse_fraction(), 0.0);
    }

    #[test]
    fn update_targets_the_right_regfile_entries() {
        let p = two_param_program();
        let diff = ParameterDiff::between(&p, &[1.0, 2.0], &[9.0, 2.0]).unwrap();
        let updates = diff.update_instructions(&p).unwrap();
        match updates[0] {
            Instruction::QUpdate { qaddr, .. } => {
                assert_eq!(qaddr, p.layout().regfile_entry(0).unwrap());
            }
            ref other => panic!("expected q_update, got {other}"),
        }
    }

    #[test]
    fn short_vectors_rejected() {
        let p = two_param_program();
        assert!(ParameterDiff::between(&p, &[1.0], &[1.0, 2.0]).is_err());
        assert!(ParameterDiff::between(&p, &[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn long_vectors_rejected_exactly() {
        // Regression: excess parameters used to be silently ignored,
        // which would let [1.0, 2.0] and [1.0, 2.0, 9.0] alias the same
        // compiled state (and the same cache key).
        let p = two_param_program();
        let err = ParameterDiff::between(&p, &[1.0, 2.0, 3.0], &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            CompileError::ParameterCountMismatch {
                expected: 2,
                got: 3
            }
        );
        let err = ParameterDiff::between(&p, &[1.0, 2.0], &[1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(
            err,
            CompileError::ParameterCountMismatch {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn parameterless_program_has_full_reuse() {
        let layout = QccLayout::for_qubits(2).unwrap();
        let mut c = Circuit::new(2);
        c.rx(0, 1.0).measure_all();
        let p = QtenonCompiler::new(layout).compile(&c).unwrap();
        let diff = ParameterDiff::between(&p, &[], &[]).unwrap();
        assert_eq!(diff.reuse_fraction(), 1.0);
    }
}
