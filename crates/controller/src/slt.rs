//! The Skip Lookup Table and its QSpace-backed workflow (Fig. 7).
//!
//! The SLT is what makes incremental execution cheap: before generating a
//! control pulse for a `(gate type, parameter)` pair, the pipeline looks
//! the pair up in a per-qubit cache of previously computed pulses. A hit
//! returns the cached pulse's QAddress and skips the 1000-cycle PGU
//! computation entirely — this is the source of Table 5's 55.7 %–98.9 %
//! computation-requirement reductions.
//!
//! Each qubit owns an SLT of 2 ways × 128 entries (Table 2). The 7-bit set
//! index concatenates 3 truncated type bits with 4 leading data bits; each
//! entry holds a 20-bit tag, the pulse QAddress, a valid bit, and a 5-bit
//! saturating use count. Replacement is Least-Count: invalid ways first,
//! otherwise the way with the smallest count, which is written back to
//! QSpace. On an SLT miss the controller consults QSpace: a QSpace hit
//! reuses the old allocation, a QSpace miss allocates a fresh pulse slot.

use qtenon_isa::{GateType, QAddress, QccLayout, QubitId};
use qtenon_mem::QSpace;
use qtenon_sim_engine::{FaultInjector, FaultSite, MetricsRegistry};
use serde::{Deserialize, Serialize};

use crate::error::ControllerError;

/// Saturation limit of the 5-bit use counter.
pub const MAX_COUNT: u8 = 31;

/// Ways per set (Table 2).
pub const WAYS: usize = 2;

/// Sets per qubit (Table 2).
pub const SETS: usize = 128;

/// The lookup key derived from a program entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SltKey {
    /// 7-bit set index: 3 truncated type bits ++ 4 leading data bits.
    pub index: u8,
    /// 20-bit tag: the parameter quantized to tag resolution.
    pub tag: u32,
}

impl SltKey {
    /// Builds the key for a gate with a raw 27-bit data field.
    pub fn for_gate(gate: GateType, data27: u32) -> Self {
        let type_bits = gate.slt_type_bits();
        let data_bits = (data27 >> 23) & 0xf;
        SltKey {
            index: ((type_bits << 4) | data_bits) as u8 & 0x7f,
            tag: data27 >> 7,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct SltEntry {
    tag: u32,
    qaddr: QAddress,
    valid: bool,
    count: u8,
}

impl SltEntry {
    const INVALID: SltEntry = SltEntry {
        tag: 0,
        qaddr: QAddress::new_unchecked(0),
        valid: false,
        count: 0,
    };
}

/// How a pulse request was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PulseResolution {
    /// The SLT held the pulse: no PGU work, no memory traffic.
    SltHit(QAddress),
    /// The SLT missed but QSpace knew the parameter: the old allocation is
    /// reused, still skipping PGU work, at the cost of a QSpace read.
    QSpaceHit(QAddress),
    /// Never seen: a fresh pulse slot was allocated and the PGU must run.
    Allocated(QAddress),
}

impl PulseResolution {
    /// The pulse address regardless of path.
    pub fn qaddr(&self) -> QAddress {
        match *self {
            PulseResolution::SltHit(a)
            | PulseResolution::QSpaceHit(a)
            | PulseResolution::Allocated(a) => a,
        }
    }

    /// Whether the PGU must compute a pulse.
    pub fn needs_generation(&self) -> bool {
        matches!(self, PulseResolution::Allocated(_))
    }
}

/// Counters describing SLT behaviour over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SltStats {
    /// Total lookups.
    pub lookups: u64,
    /// SLT hits.
    pub hits: u64,
    /// QSpace hits (SLT misses resolved without generation).
    pub qspace_hits: u64,
    /// Fresh allocations (PGU work required).
    pub allocations: u64,
    /// Valid entries evicted (written back to QSpace).
    pub evictions: u64,
    /// Entries invalidated by a detected parity error (injected fault);
    /// the lookup then degrades to the QSpace/recompute path.
    pub parity_invalidations: u64,
}

impl SltStats {
    /// Fraction of lookups that avoided pulse generation.
    pub fn skip_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            (self.hits + self.qspace_hits) as f64 / self.lookups as f64
        }
    }
}

/// All per-qubit SLTs plus the QSpace backing store and pulse allocator.
///
/// # Examples
///
/// ```
/// use qtenon_controller::SltController;
/// use qtenon_isa::{EncodedAngle, GateType, QccLayout, QubitId};
///
/// let layout = QccLayout::for_qubits(4)?;
/// let mut slt = SltController::new(layout);
/// let angle = EncodedAngle::from_radians(1.0);
/// let first = slt.resolve(QubitId::new(0), GateType::Rx, angle.code())?;
/// assert!(first.needs_generation());
/// let again = slt.resolve(QubitId::new(0), GateType::Rx, angle.code())?;
/// assert!(!again.needs_generation()); // cached
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SltController {
    layout: QccLayout,
    /// `tables[qubit][set][way]`.
    tables: Vec<[[SltEntry; WAYS]; SETS]>,
    qspace: QSpace,
    /// Next free pulse entry per qubit (wraps when the chunk fills; older
    /// pulses are overwritten, which is sound because QSpace/SLT entries
    /// are a cache, not ground truth).
    next_pulse: Vec<u64>,
    stats: SltStats,
}

impl SltController {
    /// Creates empty SLTs for every qubit in the layout.
    pub fn new(layout: QccLayout) -> Self {
        let n = layout.n_qubits() as usize;
        SltController {
            layout,
            tables: vec![[[SltEntry::INVALID; WAYS]; SETS]; n],
            qspace: QSpace::new(layout.n_qubits()),
            next_pulse: vec![0; n],
            stats: SltStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> SltStats {
        self.stats
    }

    /// The QSpace backing store (for traffic inspection).
    pub fn qspace(&self) -> &QSpace {
        &self.qspace
    }

    /// Rejects qubits outside the layout with a typed error so malformed
    /// programs degrade instead of aborting a fleet run.
    fn check_qubit(&self, qubit: QubitId) -> Result<(), ControllerError> {
        let n_qubits = self.layout.n_qubits();
        if qubit.index() >= n_qubits {
            return Err(ControllerError::QubitOutOfRange {
                qubit: qubit.index(),
                n_qubits,
            });
        }
        Ok(())
    }

    /// Resolves a pulse request for `(qubit, gate, data27)` through the
    /// Fig. 7 workflow.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::QubitOutOfRange`] if `qubit` is outside
    /// the layout, and [`ControllerError::PulseSlotOutOfRange`] if the
    /// allocator and layout geometry disagree. Rejected requests are not
    /// counted as lookups.
    pub fn resolve(
        &mut self,
        qubit: QubitId,
        gate: GateType,
        data27: u32,
    ) -> Result<PulseResolution, ControllerError> {
        self.check_qubit(qubit)?;
        let key = SltKey::for_gate(gate, data27);
        self.stats.lookups += 1;
        let q = qubit.index() as usize;
        let set = &mut self.tables[q][key.index as usize];

        // ❶ Compare tags across both ways.
        for way in set.iter_mut() {
            if way.valid && way.tag == key.tag {
                way.count = way.count.saturating_add(1).min(MAX_COUNT);
                self.stats.hits += 1;
                return Ok(PulseResolution::SltHit(way.qaddr));
            }
        }

        // ❷ Least-Count replacement: invalid ways first, else min count.
        // `WAYS` is a nonzero constant, so the fallback arm is inert — it
        // exists to keep this a total function with no panic path.
        let victim = (0..WAYS)
            .min_by_key(|&w| {
                let e = &set[w];
                if e.valid {
                    (1, e.count)
                } else {
                    (0, 0)
                }
            })
            .unwrap_or(0);
        if set[victim].valid {
            // Write back the evicted mapping to QSpace.
            self.stats.evictions += 1;
            self.qspace
                .store(qubit.index(), set[victim].tag, set[victim].qaddr);
        }

        // ❸ Consult QSpace for the incoming tag.
        let (qaddr, resolution) = match self.qspace.lookup(qubit.index(), key.tag) {
            Some(entry) => {
                self.stats.qspace_hits += 1;
                (entry.qaddr, PulseResolution::QSpaceHit(entry.qaddr))
            }
            None => {
                let slot = self.next_pulse[q];
                self.next_pulse[q] = (slot + 1) % self.layout.pulse_entries_per_qubit();
                let qaddr = self.layout.pulse_entry(qubit, slot).map_err(|_| {
                    ControllerError::PulseSlotOutOfRange {
                        qubit: qubit.index(),
                        slot,
                    }
                })?;
                self.stats.allocations += 1;
                (qaddr, PulseResolution::Allocated(qaddr))
            }
        };

        // ❹ Update the SLT entry to reflect the current state.
        set[victim] = SltEntry {
            tag: key.tag,
            qaddr,
            valid: true,
            count: 1,
        };
        Ok(resolution)
    }

    /// Like [`SltController::resolve`], with a per-lookup parity check
    /// drawn from `faults`. A detected bit flip on the matching entry
    /// invalidates that way, so the lookup degrades to the QSpace lookup
    /// or a full PGU recomputation — trading the skip speedup for
    /// correctness instead of serving a corrupted pulse address.
    ///
    /// # Errors
    ///
    /// Same contract as [`SltController::resolve`]; a rejected request
    /// draws no fault, so RNG streams stay aligned with the plain path.
    pub fn resolve_resilient(
        &mut self,
        qubit: QubitId,
        gate: GateType,
        data27: u32,
        faults: &mut FaultInjector,
    ) -> Result<PulseResolution, ControllerError> {
        self.check_qubit(qubit)?;
        // One draw per lookup (not per hit) keeps the site's RNG stream
        // aligned across fault rates.
        if faults.bernoulli(FaultSite::SltBitFlip) {
            let key = SltKey::for_gate(gate, data27);
            let q = qubit.index() as usize;
            let set = &mut self.tables[q][key.index as usize];
            if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == key.tag) {
                way.valid = false;
                self.stats.parity_invalidations += 1;
            }
        }
        self.resolve(qubit, gate, data27)
    }

    /// Registers SLT and QSpace statistics under `prefix`
    /// (e.g. `controller.slt`).
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        let s = self.stats;
        m.counter(&format!("{prefix}.lookups"), s.lookups);
        m.counter(&format!("{prefix}.hits"), s.hits);
        m.counter(&format!("{prefix}.qspace_hits"), s.qspace_hits);
        m.counter(&format!("{prefix}.allocations"), s.allocations);
        m.counter(&format!("{prefix}.evictions"), s.evictions);
        // Only present under fault injection, so fault-free metric
        // snapshots stay identical to the fault-unaware model's.
        if s.parity_invalidations > 0 {
            m.counter(
                &format!("{prefix}.parity_invalidations"),
                s.parity_invalidations,
            );
        }
        m.gauge(&format!("{prefix}.skip_rate"), s.skip_rate());
        m.counter(&format!("{prefix}.qspace.reads"), self.qspace.reads());
        m.counter(&format!("{prefix}.qspace.writes"), self.qspace.writes());
    }

    /// Forgets all cached state (fresh run).
    pub fn reset(&mut self) {
        for t in &mut self.tables {
            *t = [[SltEntry::INVALID; WAYS]; SETS];
        }
        self.qspace.reset();
        for n in &mut self.next_pulse {
            *n = 0;
        }
        self.stats = SltStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtenon_isa::EncodedAngle;

    fn controller(n: u32) -> SltController {
        SltController::new(QccLayout::for_qubits(n).unwrap())
    }

    fn code(theta: f64) -> u32 {
        EncodedAngle::from_radians(theta).code()
    }

    #[test]
    fn first_use_allocates_second_hits() {
        let mut slt = controller(2);
        let r1 = slt
            .resolve(QubitId::new(0), GateType::Rx, code(1.0))
            .unwrap();
        assert!(matches!(r1, PulseResolution::Allocated(_)));
        let r2 = slt
            .resolve(QubitId::new(0), GateType::Rx, code(1.0))
            .unwrap();
        assert!(matches!(r2, PulseResolution::SltHit(_)));
        assert_eq!(r1.qaddr(), r2.qaddr());
        assert_eq!(slt.stats().hits, 1);
        assert_eq!(slt.stats().allocations, 1);
    }

    #[test]
    fn per_qubit_isolation() {
        let mut slt = controller(2);
        let a = slt
            .resolve(QubitId::new(0), GateType::Rx, code(1.0))
            .unwrap();
        let b = slt
            .resolve(QubitId::new(1), GateType::Rx, code(1.0))
            .unwrap();
        // Same parameter on a different qubit is a separate pulse.
        assert!(b.needs_generation());
        assert_ne!(a.qaddr(), b.qaddr());
    }

    #[test]
    fn distinct_gate_types_do_not_collide() {
        let mut slt = controller(1);
        let rx = slt
            .resolve(QubitId::new(0), GateType::Rx, code(1.0))
            .unwrap();
        let ry = slt
            .resolve(QubitId::new(0), GateType::Ry, code(1.0))
            .unwrap();
        assert!(rx.needs_generation());
        assert!(ry.needs_generation());
        assert_ne!(rx.qaddr(), ry.qaddr());
    }

    #[test]
    fn nearby_angles_share_tags() {
        // Angles within tag resolution share a pulse — quantization reuse.
        let mut slt = controller(1);
        let a = slt
            .resolve(QubitId::new(0), GateType::Rz, code(1.0))
            .unwrap();
        let b = slt
            .resolve(QubitId::new(0), GateType::Rz, code(1.0 + 1e-8))
            .unwrap();
        assert!(!b.needs_generation());
        assert_eq!(a.qaddr(), b.qaddr());
    }

    #[test]
    fn eviction_writes_back_and_qspace_restores() {
        let mut slt = controller(1);
        let q = QubitId::new(0);
        // Three distinct tags in the same set evict the least-counted one.
        // Same type and same leading 4 data bits, different tags: craft
        // codes that share bits 26..23 but differ in bits 22..7.
        let base = 0b1010 << 23;
        let c1 = base | (1 << 7);
        let c2 = base | (2 << 7);
        let c3 = base | (3 << 7);
        let r1 = slt.resolve(q, GateType::Rx, c1).unwrap();
        // Bump c1's count so c2 is the least-counted victim later.
        slt.resolve(q, GateType::Rx, c1).unwrap();
        let _r2 = slt.resolve(q, GateType::Rx, c2).unwrap();
        let _r3 = slt.resolve(q, GateType::Rx, c3).unwrap(); // evicts c2 (count 1)
        assert_eq!(slt.stats().evictions, 1);
        // c1 must still be cached.
        assert!(!slt.resolve(q, GateType::Rx, c1).unwrap().needs_generation());
        assert_eq!(
            slt.resolve(q, GateType::Rx, c1).unwrap().qaddr(),
            r1.qaddr()
        );
        // c2 now misses the SLT but hits QSpace: no regeneration.
        let back = slt.resolve(q, GateType::Rx, c2).unwrap();
        assert!(matches!(back, PulseResolution::QSpaceHit(_)));
    }

    #[test]
    fn least_count_prefers_invalid_ways() {
        let mut slt = controller(1);
        let q = QubitId::new(0);
        let base = 0b0001 << 23;
        slt.resolve(q, GateType::Rx, base | (1 << 7)).unwrap();
        // Second distinct tag should fill the invalid way, evicting nothing.
        slt.resolve(q, GateType::Rx, base | (2 << 7)).unwrap();
        assert_eq!(slt.stats().evictions, 0);
    }

    #[test]
    fn skip_rate_reflects_reuse() {
        let mut slt = controller(1);
        let q = QubitId::new(0);
        for _ in 0..9 {
            slt.resolve(q, GateType::Ry, code(0.5)).unwrap();
        }
        // 1 allocation + 8 hits.
        let s = slt.stats();
        assert_eq!(s.lookups, 9);
        assert!((s.skip_rate() - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn count_saturates_at_31() {
        let mut slt = controller(1);
        let q = QubitId::new(0);
        for _ in 0..100 {
            slt.resolve(q, GateType::Rx, code(2.0)).unwrap();
        }
        let key = SltKey::for_gate(GateType::Rx, code(2.0));
        let set = &slt.tables[0][key.index as usize];
        let entry = set.iter().find(|e| e.valid && e.tag == key.tag).unwrap();
        assert_eq!(entry.count, MAX_COUNT);
    }

    #[test]
    fn allocator_wraps_within_pulse_chunk() {
        let layout = QccLayout::with_geometry(1, 16, 4, 16, 16).unwrap();
        let mut slt = SltController::new(layout);
        let q = QubitId::new(0);
        let mut addrs = Vec::new();
        for i in 0..6u32 {
            // Distinct tags forcing fresh allocations.
            let r = slt.resolve(q, GateType::Rx, (i + 1) << 7).unwrap();
            if r.needs_generation() {
                addrs.push(r.qaddr().raw());
            }
        }
        // Only 4 pulse slots exist: the 5th allocation reuses slot 0.
        let base = layout.pulse_entry(q, 0).unwrap().raw();
        assert_eq!(addrs[0], base);
        assert_eq!(addrs[4], base);
    }

    #[test]
    fn reset_clears_everything() {
        let mut slt = controller(1);
        slt.resolve(QubitId::new(0), GateType::Rx, code(1.0))
            .unwrap();
        slt.reset();
        assert_eq!(slt.stats(), SltStats::default());
        assert!(slt
            .resolve(QubitId::new(0), GateType::Rx, code(1.0))
            .unwrap()
            .needs_generation());
    }

    #[test]
    fn parity_poison_degrades_to_recompute_without_wrong_data() {
        use qtenon_sim_engine::{FaultInjector, FaultPlan, FaultSite};
        let plan = FaultPlan::default()
            .with_rate(FaultSite::SltBitFlip, 0.999_999)
            .with_seed(13);
        let mut inj = FaultInjector::new(plan);
        let mut slt = controller(1);
        let q = QubitId::new(0);
        // Warm the entry through the fault-free path.
        let first = slt.resolve(q, GateType::Rx, code(1.0)).unwrap();
        assert!(first.needs_generation());
        // Near-certain parity error on the re-lookup: the hit is refused
        // and the pulse is recomputed rather than served corrupted.
        let degraded = slt
            .resolve_resilient(q, GateType::Rx, code(1.0), &mut inj)
            .unwrap();
        assert!(!matches!(degraded, PulseResolution::SltHit(_)));
        assert_eq!(slt.stats().parity_invalidations, 1);
        // The warm path is restored afterwards (fault-free lookup hits).
        let healed = slt.resolve(q, GateType::Rx, code(1.0)).unwrap();
        assert!(matches!(healed, PulseResolution::SltHit(_)));
    }

    #[test]
    fn zero_rate_resilient_resolve_matches_plain() {
        use qtenon_sim_engine::{FaultInjector, FaultPlan};
        let mut inj = FaultInjector::new(FaultPlan::default());
        let mut a = controller(1);
        let mut b = controller(1);
        for i in 0..50u32 {
            let ra = a
                .resolve(QubitId::new(0), GateType::Ry, (i % 7 + 1) << 7)
                .unwrap();
            let rb = b
                .resolve_resilient(QubitId::new(0), GateType::Ry, (i % 7 + 1) << 7, &mut inj)
                .unwrap();
            assert_eq!(ra, rb);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn out_of_range_qubit_is_a_typed_error_not_a_panic() {
        use qtenon_sim_engine::{FaultInjector, FaultPlan};
        let mut slt = controller(2);
        let err = slt
            .resolve(QubitId::new(7), GateType::Rx, code(1.0))
            .unwrap_err();
        assert_eq!(
            err,
            ControllerError::QubitOutOfRange {
                qubit: 7,
                n_qubits: 2
            }
        );
        let mut inj = FaultInjector::new(FaultPlan::default());
        let err = slt
            .resolve_resilient(QubitId::new(7), GateType::Rx, code(1.0), &mut inj)
            .unwrap_err();
        assert!(matches!(err, ControllerError::QubitOutOfRange { .. }));
        // Rejected requests leave the stats untouched.
        assert_eq!(slt.stats(), SltStats::default());
    }

    #[test]
    fn key_bit_slicing() {
        let key = SltKey::for_gate(GateType::Rz, 0b1111u32 << 23);
        assert_eq!(key.index & 0xf, 0b1111); // low nibble carries the top 4 data bits
                                             // Index fits 7 bits and tag fits 20 bits for any input.
        for data in [0u32, 1, (1 << 27) - 1, 0x555_5555] {
            let k = SltKey::for_gate(GateType::Cz, data);
            assert!(k.index < 128);
            assert!(k.tag < (1 << 20));
        }
    }
}
