//! The soft memory barrier (Sections 5.2 and 6.2).
//!
//! Fine-grained synchronisation replaces FENCE: the controller tracks
//! which host addresses its PUT requests have already reached the system
//! bus for, and the CPU queries that state through the RoCC interface in a
//! single non-blocking cycle before touching a synchronised address.

use std::collections::BTreeMap;

use qtenon_sim_engine::{MetricsRegistry, SimTime};

/// The memory barrier: an interval map from host-address ranges to the
/// simulation time their write requests were issued on the bus.
///
/// # Examples
///
/// ```
/// use qtenon_controller::MemoryBarrier;
/// use qtenon_sim_engine::{SimDuration, SimTime};
///
/// let mut barrier = MemoryBarrier::new();
/// let t = SimTime::ZERO + SimDuration::from_ns(40);
/// barrier.mark_synced(0x1000, 64, t);
/// assert_eq!(barrier.synced_at(0x1020), Some(t));
/// assert_eq!(barrier.synced_at(0x2000), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryBarrier {
    /// start → (end, time synced). Ranges are kept non-overlapping.
    ranges: BTreeMap<u64, (u64, SimTime)>,
    queries: u64,
}

impl MemoryBarrier {
    /// Creates an empty barrier (nothing synchronised).
    pub fn new() -> Self {
        MemoryBarrier::default()
    }

    /// Records that the write covering `[addr, addr + bytes)` was issued
    /// on the system bus at time `when`.
    pub fn mark_synced(&mut self, addr: u64, bytes: u64, when: SimTime) {
        if bytes == 0 {
            return;
        }
        let mut start = addr;
        let mut end = addr + bytes;
        let mut when = when;
        // Merge with any overlapping or adjacent existing ranges,
        // keeping the *latest* sync time for the merged region.
        let overlapping: Vec<u64> = self
            .ranges
            .range(..=end)
            .filter(|(&s, &(e, _))| e >= start && s <= end)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let Some((e, t)) = self.ranges.remove(&s) else {
                continue;
            };
            start = start.min(s);
            end = end.max(e);
            when = when.max(t);
        }
        self.ranges.insert(start, (end, when));
    }

    /// Non-blocking query: the time `addr` became synchronised, or `None`
    /// if its write has not yet been issued. Costs one host cycle via the
    /// RoCC interface.
    pub fn synced_at(&mut self, addr: u64) -> Option<SimTime> {
        self.queries += 1;
        self.ranges
            .range(..=addr)
            .next_back()
            .filter(|(_, &(end, _))| addr < end)
            .map(|(_, &(_, t))| t)
    }

    /// Whether `addr` is synchronised (ignoring when).
    pub fn is_synced(&mut self, addr: u64) -> bool {
        self.synced_at(addr).is_some()
    }

    /// Number of barrier queries performed (each costs one cycle).
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Registers barrier statistics under `prefix`
    /// (e.g. `controller.barrier`).
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.counter(&format!("{prefix}.queries"), self.queries);
        m.gauge(&format!("{prefix}.ranges"), self.ranges.len() as f64);
    }

    /// Clears all synchronisation state (new iteration/region reuse).
    pub fn reset(&mut self) {
        self.ranges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtenon_sim_engine::SimDuration;

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn unsynced_by_default() {
        let mut b = MemoryBarrier::new();
        assert!(!b.is_synced(0));
        assert_eq!(b.queries(), 1);
    }

    #[test]
    fn range_boundaries_half_open() {
        let mut b = MemoryBarrier::new();
        b.mark_synced(0x100, 0x40, at(5));
        assert!(!b.is_synced(0xff));
        assert!(b.is_synced(0x100));
        assert!(b.is_synced(0x13f));
        assert!(!b.is_synced(0x140));
    }

    #[test]
    fn merges_adjacent_ranges() {
        let mut b = MemoryBarrier::new();
        b.mark_synced(0x0, 0x20, at(1));
        b.mark_synced(0x20, 0x20, at(2));
        assert_eq!(b.synced_at(0x10), Some(at(2))); // merged, latest time
        assert_eq!(b.synced_at(0x3f), Some(at(2)));
    }

    #[test]
    fn overlapping_ranges_keep_latest_time() {
        let mut b = MemoryBarrier::new();
        b.mark_synced(0x0, 0x100, at(10));
        b.mark_synced(0x80, 0x100, at(3));
        // Overlap merged; the merged region reports the later of the two
        // issue times (conservative for consumers).
        assert_eq!(b.synced_at(0x0), Some(at(10)));
        assert_eq!(b.synced_at(0x170), Some(at(10)));
    }

    #[test]
    fn zero_length_is_noop() {
        let mut b = MemoryBarrier::new();
        b.mark_synced(0x100, 0, at(1));
        assert!(!b.is_synced(0x100));
    }

    #[test]
    fn reset_clears() {
        let mut b = MemoryBarrier::new();
        b.mark_synced(0, 64, at(1));
        b.reset();
        assert!(!b.is_synced(0));
    }

    #[test]
    fn many_disjoint_ranges() {
        let mut b = MemoryBarrier::new();
        for i in 0..100u64 {
            b.mark_synced(i * 128, 64, at(i));
        }
        assert_eq!(b.synced_at(50 * 128 + 10), Some(at(50)));
        assert!(!b.is_synced(50 * 128 + 64));
    }
}
