//! SerDes and Analog-Digital Interface bandwidth model (data path ❹).
//!
//! Each qubit drives two 16-bit 2 GHz DACs, demanding 64 bit/ns
//! (8 GB/s) per qubit. A 640-bit `.pulse` entry is split into ten 64-bit
//! buffers and serialised at the DAC rate, so one entry streams in 10 ns
//! per qubit. The interface itself adds a fixed 100 ns latency per
//! direction (Section 7.1's baseline uses the same constant).

use qtenon_sim_engine::SimDuration;
use serde::{Deserialize, Serialize};

/// The ADI/SerDes timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdiModel {
    /// Fixed interface latency per direction.
    pub interface_latency: SimDuration,
    /// Per-qubit output bandwidth in bits per nanosecond.
    pub bits_per_ns_per_qubit: u64,
    /// Width of one pulse entry in bits.
    pub pulse_entry_bits: u64,
}

impl Default for AdiModel {
    fn default() -> Self {
        AdiModel {
            interface_latency: SimDuration::from_ns(100),
            bits_per_ns_per_qubit: 64, // 2 DACs × 16 bit × 2 GHz
            pulse_entry_bits: 640,
        }
    }
}

impl AdiModel {
    /// Time to stream one pulse entry to one qubit's DACs.
    pub fn entry_stream_time(&self) -> SimDuration {
        SimDuration::from_ns(self.pulse_entry_bits / self.bits_per_ns_per_qubit)
    }

    /// Time to stream `entries` pulse entries to one qubit (entries for
    /// *different* qubits stream in parallel on their own DAC pairs).
    pub fn stream_time(&self, entries: u64) -> SimDuration {
        self.interface_latency + self.entry_stream_time() * entries
    }

    /// Latency for one measurement result to cross back from the chip.
    pub fn readout_latency(&self) -> SimDuration {
        self.interface_latency
    }

    /// Aggregate output bandwidth for `n_qubits` in bytes per second.
    pub fn total_bandwidth_bytes_per_sec(&self, n_qubits: u32) -> u64 {
        // bits/ns → bytes/s: ×1e9 / 8.
        self.bits_per_ns_per_qubit * n_qubits as u64 * 1_000_000_000 / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_streams_in_10ns() {
        let adi = AdiModel::default();
        assert_eq!(adi.entry_stream_time(), SimDuration::from_ns(10));
    }

    #[test]
    fn per_qubit_bandwidth_is_8_gb_per_sec() {
        let adi = AdiModel::default();
        assert_eq!(adi.total_bandwidth_bytes_per_sec(1), 8_000_000_000);
        assert_eq!(adi.total_bandwidth_bytes_per_sec(64), 512_000_000_000);
    }

    #[test]
    fn stream_time_includes_interface_latency() {
        let adi = AdiModel::default();
        assert_eq!(adi.stream_time(0), SimDuration::from_ns(100));
        assert_eq!(adi.stream_time(5), SimDuration::from_ns(150));
    }

    #[test]
    fn readout_uses_interface_latency() {
        let adi = AdiModel::default();
        assert_eq!(adi.readout_latency(), SimDuration::from_ns(100));
    }
}
