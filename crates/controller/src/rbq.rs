//! The Reorder Buffer Queue (Fig. 5).
//!
//! The system bus returns responses out of order. Each request carries a
//! unique 5-bit tag; the RBQ holds 32 entries (one per tag) and realigns
//! responses: a FIFO of issued tags decides which response queue to pop
//! next, so consumers always observe issue order.

use std::collections::VecDeque;

use qtenon_sim_engine::MetricsRegistry;

/// Number of unique tags (5-bit tag space).
pub const TAG_COUNT: usize = 32;

/// A tag naming one outstanding bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(u8);

impl Tag {
    /// The raw 5-bit tag value.
    pub fn value(self) -> u8 {
        self.0
    }
}

/// The reorder buffer realigning out-of-order bus responses.
///
/// Generic over the response payload so both read data and write
/// acknowledgements can flow through it.
///
/// # Examples
///
/// ```
/// use qtenon_controller::ReorderBufferQueue;
///
/// let mut rbq = ReorderBufferQueue::<&str>::new();
/// let t1 = rbq.issue().unwrap();
/// let t2 = rbq.issue().unwrap();
/// rbq.complete(t2, "second"); // arrives first…
/// rbq.complete(t1, "first");
/// assert_eq!(rbq.pop_in_order(), Some("first")); // …but pops in issue order
/// assert_eq!(rbq.pop_in_order(), Some("second"));
/// ```
#[derive(Debug)]
pub struct ReorderBufferQueue<T> {
    /// Response slot per tag (`None` while the response is outstanding).
    slots: Vec<Option<T>>,
    /// Whether each tag is currently allocated.
    allocated: [bool; TAG_COUNT],
    /// Tags in issue order, waiting to be popped.
    order: VecDeque<Tag>,
    /// Free tags.
    free: VecDeque<Tag>,
    /// Total tags ever issued.
    issued: u64,
    /// High-water mark of outstanding transactions.
    peak_outstanding: usize,
}

impl<T> ReorderBufferQueue<T> {
    /// Creates an empty RBQ with all 32 tags free.
    pub fn new() -> Self {
        ReorderBufferQueue {
            slots: (0..TAG_COUNT).map(|_| None).collect(),
            allocated: [false; TAG_COUNT],
            order: VecDeque::new(),
            free: (0..TAG_COUNT as u8).map(Tag).collect(),
            issued: 0,
            peak_outstanding: 0,
        }
    }

    /// Allocates a tag for a new request, or `None` if all 32 tags are
    /// outstanding (the bus must stall until one frees).
    pub fn issue(&mut self) -> Option<Tag> {
        let tag = self.free.pop_front()?;
        self.allocated[tag.0 as usize] = true;
        self.order.push_back(tag);
        self.issued += 1;
        self.peak_outstanding = self.peak_outstanding.max(self.order.len());
        Some(tag)
    }

    /// Delivers the response for `tag` (out-of-order arrival).
    ///
    /// # Panics
    ///
    /// Panics if `tag` is not outstanding or already completed.
    pub fn complete(&mut self, tag: Tag, payload: T) {
        assert!(
            self.allocated[tag.0 as usize],
            "completing unissued tag {}",
            tag.0
        );
        let slot = &mut self.slots[tag.0 as usize];
        assert!(slot.is_none(), "tag {} completed twice", tag.0);
        *slot = Some(payload);
    }

    /// Pops the next response *in issue order*, if it has arrived.
    pub fn pop_in_order(&mut self) -> Option<T> {
        let &tag = self.order.front()?;
        let payload = self.slots[tag.0 as usize].take()?;
        self.order.pop_front();
        self.allocated[tag.0 as usize] = false;
        self.free.push_back(tag);
        Some(payload)
    }

    /// Number of outstanding (issued, unpopped) transactions.
    pub fn outstanding(&self) -> usize {
        self.order.len()
    }

    /// Whether a new request can be issued right now.
    pub fn has_free_tag(&self) -> bool {
        !self.free.is_empty()
    }

    /// Total tags ever issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// High-water mark of outstanding transactions.
    pub fn peak_outstanding(&self) -> usize {
        self.peak_outstanding
    }

    /// Registers RBQ statistics under `prefix` (e.g. `controller.rbq`).
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.counter(&format!("{prefix}.issued"), self.issued);
        m.gauge(
            &format!("{prefix}.peak_outstanding"),
            self.peak_outstanding as f64,
        );
    }
}

impl<T> Default for ReorderBufferQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realigns_reversed_completions() {
        let mut rbq = ReorderBufferQueue::new();
        let tags: Vec<_> = (0..8).map(|_| rbq.issue().unwrap()).collect();
        for (i, &tag) in tags.iter().enumerate().rev() {
            rbq.complete(tag, i);
        }
        for i in 0..8 {
            assert_eq!(rbq.pop_in_order(), Some(i));
        }
        assert_eq!(rbq.pop_in_order(), None);
    }

    #[test]
    fn head_of_line_blocks_until_arrival() {
        let mut rbq = ReorderBufferQueue::new();
        let t1 = rbq.issue().unwrap();
        let t2 = rbq.issue().unwrap();
        rbq.complete(t2, "b");
        // t1 hasn't arrived: nothing pops even though t2 is ready.
        assert_eq!(rbq.pop_in_order(), None);
        rbq.complete(t1, "a");
        assert_eq!(rbq.pop_in_order(), Some("a"));
        assert_eq!(rbq.pop_in_order(), Some("b"));
    }

    #[test]
    fn tags_exhaust_at_32_and_recycle() {
        let mut rbq = ReorderBufferQueue::new();
        let tags: Vec<_> = (0..TAG_COUNT).map(|_| rbq.issue().unwrap()).collect();
        assert!(rbq.issue().is_none());
        assert!(!rbq.has_free_tag());
        rbq.complete(tags[0], 0u32);
        assert!(rbq.pop_in_order().is_some());
        // A tag freed by popping becomes issuable again.
        assert!(rbq.issue().is_some());
    }

    #[test]
    fn outstanding_tracks_lifecycle() {
        let mut rbq = ReorderBufferQueue::new();
        assert_eq!(rbq.outstanding(), 0);
        let t = rbq.issue().unwrap();
        assert_eq!(rbq.outstanding(), 1);
        rbq.complete(t, ());
        assert_eq!(rbq.outstanding(), 1); // completed but not popped
        rbq.pop_in_order();
        assert_eq!(rbq.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let mut rbq = ReorderBufferQueue::new();
        let t = rbq.issue().unwrap();
        rbq.complete(t, 1);
        rbq.complete(t, 2);
    }

    #[test]
    fn randomised_order_realigns() {
        // Deterministic pseudo-shuffle of completion order.
        let mut rbq = ReorderBufferQueue::new();
        let tags: Vec<_> = (0..TAG_COUNT).map(|_| rbq.issue().unwrap()).collect();
        let mut order: Vec<usize> = (0..TAG_COUNT).collect();
        // Simple LCG-driven Fisher-Yates.
        let mut state = 12345u64;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for &i in &order {
            rbq.complete(tags[i], i);
        }
        for i in 0..TAG_COUNT {
            assert_eq!(rbq.pop_in_order(), Some(i));
        }
    }
}
