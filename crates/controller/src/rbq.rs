//! The Reorder Buffer Queue (Fig. 5).
//!
//! The system bus returns responses out of order. Each request carries a
//! unique 5-bit tag; the RBQ holds 32 entries (one per tag) and realigns
//! responses: a FIFO of issued tags decides which response queue to pop
//! next, so consumers always observe issue order.
//!
//! Tags can get *stuck* — a response lost to a fault never arrives, and
//! the tag would leak forever. A watchdog ([`ReorderBufferQueue::
//! reclaim_stuck`]) sweeps tags whose responses are overdue back into the
//! free pool; a late completion for a reclaimed tag then surfaces as a
//! typed [`ControllerError`] instead of silently corrupting a recycled
//! tag's slot.

use std::collections::VecDeque;

use qtenon_sim_engine::{MetricsRegistry, SimDuration, SimTime};

use crate::error::ControllerError;

/// Number of unique tags (5-bit tag space).
pub const TAG_COUNT: usize = 32;

/// A tag naming one outstanding bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(u8);

impl Tag {
    /// The raw 5-bit tag value.
    pub fn value(self) -> u8 {
        self.0
    }
}

/// The reorder buffer realigning out-of-order bus responses.
///
/// Generic over the response payload so both read data and write
/// acknowledgements can flow through it.
///
/// # Examples
///
/// ```
/// use qtenon_controller::ReorderBufferQueue;
///
/// let mut rbq = ReorderBufferQueue::<&str>::new();
/// let t1 = rbq.issue().unwrap();
/// let t2 = rbq.issue().unwrap();
/// rbq.complete(t2, "second").unwrap(); // arrives first…
/// rbq.complete(t1, "first").unwrap();
/// assert_eq!(rbq.pop_in_order(), Some("first")); // …but pops in issue order
/// assert_eq!(rbq.pop_in_order(), Some("second"));
/// ```
#[derive(Debug)]
pub struct ReorderBufferQueue<T> {
    /// Response slot per tag (`None` while the response is outstanding).
    slots: Vec<Option<T>>,
    /// Whether each tag is currently allocated.
    allocated: [bool; TAG_COUNT],
    /// When each allocated tag was issued (for the watchdog).
    issued_at: [Option<SimTime>; TAG_COUNT],
    /// Tags in issue order, waiting to be popped.
    order: VecDeque<Tag>,
    /// Free tags.
    free: VecDeque<Tag>,
    /// Total tags ever issued.
    issued: u64,
    /// High-water mark of outstanding transactions.
    peak_outstanding: usize,
    /// Tags reclaimed by the watchdog.
    reclaimed: u64,
}

impl<T> ReorderBufferQueue<T> {
    /// Creates an empty RBQ with all 32 tags free.
    pub fn new() -> Self {
        ReorderBufferQueue {
            slots: (0..TAG_COUNT).map(|_| None).collect(),
            allocated: [false; TAG_COUNT],
            issued_at: [None; TAG_COUNT],
            order: VecDeque::new(),
            free: (0..TAG_COUNT as u8).map(Tag).collect(),
            issued: 0,
            peak_outstanding: 0,
            reclaimed: 0,
        }
    }

    /// Allocates a tag for a new request, or `None` if all 32 tags are
    /// outstanding (the bus must stall until one frees).
    pub fn issue(&mut self) -> Option<Tag> {
        self.issue_at(SimTime::ZERO)
    }

    /// Like [`ReorderBufferQueue::issue`], recording the issue time so
    /// the watchdog can spot overdue responses.
    pub fn issue_at(&mut self, now: SimTime) -> Option<Tag> {
        let tag = self.free.pop_front()?;
        self.allocated[tag.0 as usize] = true;
        self.issued_at[tag.0 as usize] = Some(now);
        self.order.push_back(tag);
        self.issued += 1;
        self.peak_outstanding = self.peak_outstanding.max(self.order.len());
        Some(tag)
    }

    /// Delivers the response for `tag` (out-of-order arrival).
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::UnissuedTag`] when `tag` is not
    /// outstanding (typically a late completion for a watchdog-reclaimed
    /// tag) and [`ControllerError::DoubleCompletion`] when the tag already
    /// has its response.
    pub fn complete(&mut self, tag: Tag, payload: T) -> Result<(), ControllerError> {
        if !self.allocated[tag.0 as usize] {
            return Err(ControllerError::UnissuedTag { tag: tag.0 });
        }
        let slot = &mut self.slots[tag.0 as usize];
        if slot.is_some() {
            return Err(ControllerError::DoubleCompletion { tag: tag.0 });
        }
        *slot = Some(payload);
        Ok(())
    }

    /// Pops the next response *in issue order*, if it has arrived.
    pub fn pop_in_order(&mut self) -> Option<T> {
        let &tag = self.order.front()?;
        let payload = self.slots[tag.0 as usize].take()?;
        self.order.pop_front();
        self.allocated[tag.0 as usize] = false;
        self.issued_at[tag.0 as usize] = None;
        self.free.push_back(tag);
        Some(payload)
    }

    /// Watchdog sweep: frees every tag that was issued at least `timeout`
    /// before `now` and never received its response, returning how many
    /// were reclaimed. Reclaimed tags leave the issue-order FIFO, so a
    /// stuck head no longer blocks completed younger responses forever.
    pub fn reclaim_stuck(&mut self, now: SimTime, timeout: SimDuration) -> usize {
        let mut reclaimed = 0;
        let mut kept = VecDeque::with_capacity(self.order.len());
        while let Some(tag) = self.order.pop_front() {
            let i = tag.0 as usize;
            let overdue = self.slots[i].is_none()
                && self.issued_at[i].is_some_and(|t| now.saturating_since(t) >= timeout);
            if overdue {
                self.allocated[i] = false;
                self.issued_at[i] = None;
                self.free.push_back(tag);
                reclaimed += 1;
            } else {
                kept.push_back(tag);
            }
        }
        self.order = kept;
        self.reclaimed += reclaimed as u64;
        reclaimed
    }

    /// Number of outstanding (issued, unpopped) transactions.
    pub fn outstanding(&self) -> usize {
        self.order.len()
    }

    /// Whether a new request can be issued right now.
    pub fn has_free_tag(&self) -> bool {
        !self.free.is_empty()
    }

    /// Total tags ever issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// High-water mark of outstanding transactions.
    pub fn peak_outstanding(&self) -> usize {
        self.peak_outstanding
    }

    /// Total tags reclaimed by the watchdog.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// Registers RBQ statistics under `prefix` (e.g. `controller.rbq`).
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.counter(&format!("{prefix}.issued"), self.issued);
        m.gauge(
            &format!("{prefix}.peak_outstanding"),
            self.peak_outstanding as f64,
        );
    }
}

impl<T> Default for ReorderBufferQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realigns_reversed_completions() {
        let mut rbq = ReorderBufferQueue::new();
        let tags: Vec<_> = (0..8).map(|_| rbq.issue().unwrap()).collect();
        for (i, &tag) in tags.iter().enumerate().rev() {
            rbq.complete(tag, i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rbq.pop_in_order(), Some(i));
        }
        assert_eq!(rbq.pop_in_order(), None);
    }

    #[test]
    fn head_of_line_blocks_until_arrival() {
        let mut rbq = ReorderBufferQueue::new();
        let t1 = rbq.issue().unwrap();
        let t2 = rbq.issue().unwrap();
        rbq.complete(t2, "b").unwrap();
        // t1 hasn't arrived: nothing pops even though t2 is ready.
        assert_eq!(rbq.pop_in_order(), None);
        rbq.complete(t1, "a").unwrap();
        assert_eq!(rbq.pop_in_order(), Some("a"));
        assert_eq!(rbq.pop_in_order(), Some("b"));
    }

    #[test]
    fn tags_exhaust_at_32_and_recycle() {
        let mut rbq = ReorderBufferQueue::new();
        let tags: Vec<_> = (0..TAG_COUNT).map(|_| rbq.issue().unwrap()).collect();
        assert!(rbq.issue().is_none());
        assert!(!rbq.has_free_tag());
        rbq.complete(tags[0], 0u32).unwrap();
        assert!(rbq.pop_in_order().is_some());
        // A tag freed by popping becomes issuable again.
        assert!(rbq.issue().is_some());
    }

    #[test]
    fn outstanding_tracks_lifecycle() {
        let mut rbq = ReorderBufferQueue::new();
        assert_eq!(rbq.outstanding(), 0);
        let t = rbq.issue().unwrap();
        assert_eq!(rbq.outstanding(), 1);
        rbq.complete(t, ()).unwrap();
        assert_eq!(rbq.outstanding(), 1); // completed but not popped
        rbq.pop_in_order();
        assert_eq!(rbq.outstanding(), 0);
    }

    #[test]
    fn double_completion_is_a_typed_error() {
        let mut rbq = ReorderBufferQueue::new();
        let t = rbq.issue().unwrap();
        rbq.complete(t, 1).unwrap();
        assert_eq!(
            rbq.complete(t, 2),
            Err(ControllerError::DoubleCompletion { tag: t.value() })
        );
    }

    #[test]
    fn watchdog_reclaims_overdue_tags_only() {
        let t0 = SimTime::ZERO;
        let mut rbq = ReorderBufferQueue::new();
        let old = rbq.issue_at(t0).unwrap();
        let young = rbq.issue_at(t0 + SimDuration::from_us(9)).unwrap();
        let n = rbq.reclaim_stuck(t0 + SimDuration::from_us(10), SimDuration::from_us(10));
        assert_eq!(n, 1);
        assert_eq!(rbq.reclaimed(), 1);
        assert_eq!(rbq.outstanding(), 1);
        // The reclaimed tag is free again; a late completion errors.
        assert_eq!(
            rbq.complete(old, 1u32),
            Err(ControllerError::UnissuedTag { tag: old.value() })
        );
        // The young tag still works normally.
        rbq.complete(young, 2).unwrap();
        assert_eq!(rbq.pop_in_order(), Some(2));
    }

    #[test]
    fn watchdog_unblocks_completed_younger_responses() {
        let t0 = SimTime::ZERO;
        let mut rbq = ReorderBufferQueue::new();
        let _stuck = rbq.issue_at(t0).unwrap();
        let ok = rbq.issue_at(t0).unwrap();
        rbq.complete(ok, "data").unwrap();
        // Head-of-line: the stuck elder blocks the completed younger.
        assert_eq!(rbq.pop_in_order(), None);
        rbq.reclaim_stuck(t0 + SimDuration::from_us(20), SimDuration::from_us(10));
        // reclaim frees BOTH if the young one is also overdue — but the
        // young one has its payload, so it is not overdue and now pops.
        assert_eq!(rbq.pop_in_order(), Some("data"));
    }

    #[test]
    fn randomised_order_realigns() {
        // Deterministic pseudo-shuffle of completion order.
        let mut rbq = ReorderBufferQueue::new();
        let tags: Vec<_> = (0..TAG_COUNT).map(|_| rbq.issue().unwrap()).collect();
        let mut order: Vec<usize> = (0..TAG_COUNT).collect();
        // Simple LCG-driven Fisher-Yates.
        let mut state = 12345u64;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for &i in &order {
            rbq.complete(tags[i], i).unwrap();
        }
        for i in 0..TAG_COUNT {
            assert_eq!(rbq.pop_in_order(), Some(i));
        }
    }
}
