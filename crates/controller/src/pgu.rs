//! The pulse-generation-unit pool (Fig. 6, stage 3).
//!
//! Qtenon configures eight PGUs, each treated as a black box with an
//! enforced latency of 1000 cycles (Section 7.1, matching realistic pulse
//! computation times). A priority encoder dispatches each request to the
//! lowest-numbered free unit; when all are busy, stages 1–2 stall.

use qtenon_sim_engine::{
    ClockDomain, FaultInjector, FaultSite, Histogram, MetricsRegistry, SimDuration, SimTime,
};
use serde::{Deserialize, Serialize};

use crate::error::ControllerError;

/// Configuration of the PGU pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PguConfig {
    /// Number of units (Table 4: 8).
    pub units: usize,
    /// Black-box latency per pulse in clock cycles (Section 7.1: 1000).
    pub latency_cycles: u64,
    /// The clock those cycles are counted in.
    pub clock: ClockDomain,
}

impl Default for PguConfig {
    fn default() -> Self {
        PguConfig {
            units: 8,
            latency_cycles: 1000,
            clock: ClockDomain::from_ghz(1.0),
        }
    }
}

/// A completed dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// Which unit took the job (priority-encoder order).
    pub unit: usize,
    /// When computation started.
    pub start: SimTime,
    /// When the pulse is ready for writeback.
    pub done: SimTime,
}

/// The PGU pool.
///
/// # Examples
///
/// ```
/// use qtenon_controller::pgu::{PguConfig, PguPool};
/// use qtenon_sim_engine::SimTime;
///
/// let mut pool = PguPool::new(PguConfig::default()).unwrap();
/// let d = pool.dispatch(SimTime::ZERO);
/// assert_eq!(d.unit, 0);
/// assert_eq!((d.done - d.start).as_us(), 1.0); // 1000 cycles @ 1 GHz
/// ```
#[derive(Debug, Clone)]
pub struct PguPool {
    config: PguConfig,
    busy_until: Vec<SimTime>,
    dispatched: u64,
    /// Request-to-start wait of each dispatch, in nanoseconds (zero when
    /// a unit was free immediately).
    wait: Histogram,
    /// Injected stalls observed (extra busy cycles).
    stalls: u64,
    /// Re-dispatches after injected bad-pulse failures.
    redispatches: u64,
}

impl PguPool {
    /// Creates an all-idle pool.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::NoPguUnits`] if `config.units` is zero.
    pub fn new(config: PguConfig) -> Result<Self, ControllerError> {
        if config.units == 0 {
            return Err(ControllerError::NoPguUnits);
        }
        Ok(PguPool {
            config,
            busy_until: vec![SimTime::ZERO; config.units],
            dispatched: 0,
            wait: Histogram::new(),
            stalls: 0,
            redispatches: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> PguConfig {
        self.config
    }

    /// The latency of one pulse computation.
    pub fn pulse_latency(&self) -> SimDuration {
        self.config.clock.cycles(self.config.latency_cycles)
    }

    /// The lowest-numbered unit free at `now`, if any (priority encoder).
    pub fn free_unit_at(&self, now: SimTime) -> Option<usize> {
        self.busy_until.iter().position(|&t| t <= now)
    }

    /// The earliest time any unit frees up.
    pub fn earliest_free(&self) -> SimTime {
        // The pool is constructed with at least one unit.
        self.busy_until
            .iter()
            .copied()
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Dispatches one pulse computation requested at `now`: the job starts
    /// immediately if a unit is free, otherwise as soon as the earliest
    /// unit frees (the stall the pipeline observes).
    pub fn dispatch(&mut self, now: SimTime) -> Dispatch {
        let (unit, start) = match self.free_unit_at(now) {
            Some(unit) => (unit, now),
            None => {
                let start = self.earliest_free();
                (self.free_unit_at(start).unwrap_or(0), start)
            }
        };
        let done = start + self.pulse_latency();
        self.busy_until[unit] = done;
        self.dispatched += 1;
        self.wait
            .record(start.saturating_since(now).as_ps() / 1_000);
        Dispatch { unit, start, done }
    }

    /// Dispatches under fault injection: a stall fault holds the unit for
    /// the plan's extra cycles, and each bad-pulse failure forces a
    /// re-dispatch after an exponential backoff.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::PguRetriesExhausted`] when the drawn
    /// failure count meets the plan's `max_attempts` budget.
    pub fn dispatch_resilient(
        &mut self,
        now: SimTime,
        faults: &mut FaultInjector,
    ) -> Result<Dispatch, ControllerError> {
        let stalled = faults.bernoulli(FaultSite::PguStall);
        let failures = faults.geometric_failures(FaultSite::PguFail);
        let plan = *faults.plan();
        let budget = plan.max_attempts.max(1);
        if failures >= budget {
            return Err(ControllerError::PguRetriesExhausted { attempts: budget });
        }
        let mut d = self.dispatch(now);
        if stalled {
            let penalty = self.config.clock.cycles(plan.pgu_stall_cycles);
            d.done = d.done + penalty;
            self.busy_until[d.unit] = self.busy_until[d.unit].max(d.done);
            self.stalls += 1;
        }
        for attempt in 1..=failures {
            self.redispatches += 1;
            let retry_at = d.done + plan.backoff(attempt);
            d = self.dispatch(retry_at);
        }
        Ok(d)
    }

    /// Total pulses dispatched.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Per-dispatch wait distribution in nanoseconds.
    pub fn wait(&self) -> &Histogram {
        &self.wait
    }

    /// Injected stalls observed so far.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Re-dispatches forced by injected bad-pulse failures.
    pub fn redispatches(&self) -> u64 {
        self.redispatches
    }

    /// Registers pool statistics under `prefix` (e.g. `controller.pgu`).
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.gauge(&format!("{prefix}.units"), self.config.units as f64);
        m.counter(&format!("{prefix}.dispatched"), self.dispatched);
        m.histogram(&format!("{prefix}.wait_ns"), &self.wait);
    }

    /// Returns all units to idle at time zero.
    pub fn reset(&mut self) {
        self.busy_until.fill(SimTime::ZERO);
        self.dispatched = 0;
        self.wait.reset();
        self.stalls = 0;
        self.redispatches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn priority_encoder_picks_lowest_free() {
        let mut pool = PguPool::new(PguConfig::default()).unwrap();
        assert_eq!(pool.dispatch(SimTime::ZERO).unit, 0);
        assert_eq!(pool.dispatch(SimTime::ZERO).unit, 1);
        assert_eq!(pool.dispatch(SimTime::ZERO).unit, 2);
    }

    #[test]
    fn eight_jobs_run_in_parallel_ninth_stalls() {
        let mut pool = PguPool::new(PguConfig::default()).unwrap();
        for i in 0..8 {
            let d = pool.dispatch(SimTime::ZERO);
            assert_eq!(d.unit, i);
            assert_eq!(d.start, SimTime::ZERO);
        }
        let ninth = pool.dispatch(SimTime::ZERO);
        assert_eq!(ninth.start, at(1000)); // waits for unit 0
        assert_eq!(ninth.unit, 0);
        assert_eq!(ninth.done, at(2000));
    }

    #[test]
    fn unit_frees_after_latency() {
        let mut pool = PguPool::new(PguConfig::default()).unwrap();
        pool.dispatch(SimTime::ZERO);
        assert_eq!(pool.free_unit_at(SimTime::ZERO), Some(1));
        assert_eq!(pool.free_unit_at(at(1000)), Some(0));
    }

    #[test]
    fn throughput_matches_units_times_latency() {
        let mut pool = PguPool::new(PguConfig::default()).unwrap();
        let mut last_done = SimTime::ZERO;
        for _ in 0..80 {
            last_done = pool.dispatch(SimTime::ZERO).done;
        }
        // 80 jobs over 8 units = 10 sequential rounds of 1 µs.
        assert_eq!(last_done, at(10_000));
        assert_eq!(pool.dispatched(), 80);
    }

    #[test]
    fn custom_latency_and_reset() {
        let mut pool = PguPool::new(PguConfig {
            units: 1,
            latency_cycles: 10,
            clock: ClockDomain::from_ghz(1.0),
        })
        .unwrap();
        let d = pool.dispatch(SimTime::ZERO);
        assert_eq!(d.done, at(10));
        pool.reset();
        assert_eq!(pool.dispatch(SimTime::ZERO).start, SimTime::ZERO);
    }

    #[test]
    fn zero_units_is_a_typed_error() {
        let err = PguPool::new(PguConfig {
            units: 0,
            ..PguConfig::default()
        })
        .unwrap_err();
        assert_eq!(err, ControllerError::NoPguUnits);
    }

    #[test]
    fn injected_stall_extends_completion() {
        use qtenon_sim_engine::{FaultInjector, FaultPlan, FaultSite};
        let plan = FaultPlan::default()
            .with_rate(FaultSite::PguStall, 0.999_999)
            .with_seed(5);
        let mut inj = FaultInjector::new(plan);
        let mut pool = PguPool::new(PguConfig::default()).unwrap();
        let d = pool.dispatch_resilient(SimTime::ZERO, &mut inj).unwrap();
        // 1000 nominal cycles + 500 stall cycles at 1 GHz.
        assert_eq!(d.done, at(1500));
        assert_eq!(pool.stalls(), 1);
    }

    #[test]
    fn injected_failures_force_redispatch_or_typed_error() {
        use qtenon_sim_engine::{FaultInjector, FaultPlan, FaultSite};
        let plan = FaultPlan::default()
            .with_rate(FaultSite::PguFail, 0.5)
            .with_seed(21);
        let mut inj = FaultInjector::new(plan);
        let mut pool = PguPool::new(PguConfig::default()).unwrap();
        let mut saw_redispatch = false;
        for _ in 0..100 {
            match pool.dispatch_resilient(SimTime::ZERO, &mut inj) {
                Ok(_) => {}
                Err(ControllerError::PguRetriesExhausted { attempts }) => {
                    assert_eq!(attempts, plan.max_attempts);
                }
                Err(other) => panic!("unexpected error {other}"),
            }
            if pool.redispatches() > 0 {
                saw_redispatch = true;
            }
        }
        assert!(saw_redispatch, "0.5 failure rate never forced a redispatch");
    }
}
