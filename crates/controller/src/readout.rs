//! The measurement data processor (Fig. 2's ❺, integrated on-controller
//! in Qtenon).
//!
//! Superconducting readout returns an analog IQ point per qubit per shot;
//! a data processor classifies it into a bit ("state determination")
//! before anything reaches the `.measure` segment. This module models
//! that unit: a matched-filter integrator producing an IQ point from the
//! qubit's true state plus Gaussian noise, and a linear discriminator
//! with a calibrated threshold. Classification fidelity is a function of
//! the IQ separation-to-noise ratio, which is how real readout error
//! arises (the `quantum::noise` readout channel is the aggregate view of
//! this unit's mistakes).

use qtenon_sim_engine::{ClockDomain, FaultPlan, SimDuration};
use serde::{Deserialize, Serialize};

/// An integrated IQ point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IqPoint {
    /// In-phase component.
    pub i: f64,
    /// Quadrature component.
    pub q: f64,
}

/// The readout discriminator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadoutProcessor {
    /// IQ centroid for |0⟩.
    pub center0: IqPoint,
    /// IQ centroid for |1⟩.
    pub center1: IqPoint,
    /// Standard deviation of the integrated noise (same both axes).
    pub sigma: f64,
    /// Cycles needed to integrate and classify one shot.
    pub latency_cycles: u64,
    /// Clock the unit runs at.
    pub clock: ClockDomain,
}

impl Default for ReadoutProcessor {
    fn default() -> Self {
        ReadoutProcessor {
            center0: IqPoint { i: -1.0, q: 0.0 },
            center1: IqPoint { i: 1.0, q: 0.0 },
            sigma: 0.35,
            // Integration a few hundred ns at the 200 MHz SRAM clock.
            latency_cycles: 60,
            clock: ClockDomain::from_mhz(200.0),
        }
    }
}

impl ReadoutProcessor {
    /// Classification latency per shot.
    pub fn latency(&self) -> SimDuration {
        self.clock.cycles(self.latency_cycles)
    }

    /// The distance between centroids over noise — the discrimination
    /// SNR.
    pub fn separation_snr(&self) -> f64 {
        let di = self.center1.i - self.center0.i;
        let dq = self.center1.q - self.center0.q;
        (di * di + dq * dq).sqrt() / self.sigma
    }

    /// Synthesises the integrated IQ point for a qubit that is truly in
    /// `state`, using two unit-normal noise draws.
    pub fn integrate(&self, state: bool, noise_i: f64, noise_q: f64) -> IqPoint {
        let c = if state { self.center1 } else { self.center0 };
        IqPoint {
            i: c.i + self.sigma * noise_i,
            q: c.q + self.sigma * noise_q,
        }
    }

    /// Classifies an IQ point: nearest centroid along the separation
    /// axis (the matched-filter decision rule).
    pub fn classify(&self, point: IqPoint) -> bool {
        let di = self.center1.i - self.center0.i;
        let dq = self.center1.q - self.center0.q;
        // Project onto the separation axis; threshold at the midpoint.
        let proj = (point.i - (self.center0.i + self.center1.i) / 2.0) * di
            + (point.q - (self.center0.q + self.center1.q) / 2.0) * dq;
        proj > 0.0
    }

    /// The theoretical assignment error rate for this SNR:
    /// `Q(SNR/2)` where `Q` is the Gaussian tail function.
    pub fn expected_error_rate(&self) -> f64 {
        q_function(self.separation_snr() / 2.0)
    }

    /// Total modelled cost of `timeouts` consecutive readout timeouts
    /// under `plan`: each re-arm repeats the integration/classification
    /// latency, pays the plan's fixed re-arm penalty, and backs off
    /// exponentially before the next attempt.
    pub fn retry_penalty(&self, timeouts: u32, plan: &FaultPlan) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for attempt in 1..=timeouts {
            total = total + self.latency() + plan.readout_penalty() + plan.backoff(attempt);
        }
        total
    }
}

/// Gaussian tail probability `Q(x) = P(N(0,1) > x)` via the Abramowitz &
/// Stegun complementary-error-function approximation (max error ~1.5e-7).
fn q_function(x: f64) -> f64 {
    if x < 0.0 {
        return 1.0 - q_function(-x);
    }
    let t = 1.0 / (1.0 + 0.2316419 * x);
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-x * x / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    pdf * poly
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian(rng: &mut StdRng) -> f64 {
        // Box-Muller.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn noiseless_points_classify_exactly() {
        let r = ReadoutProcessor::default();
        assert!(!r.classify(r.center0));
        assert!(r.classify(r.center1));
    }

    #[test]
    fn latency_is_sub_microsecond() {
        let r = ReadoutProcessor::default();
        assert_eq!(r.latency(), SimDuration::from_ns(300));
    }

    #[test]
    fn error_rate_matches_theory() {
        let r = ReadoutProcessor::default();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 50_000;
        let mut errors = 0;
        for t in 0..trials {
            let state = t % 2 == 0;
            let point = r.integrate(state, gaussian(&mut rng), gaussian(&mut rng));
            if r.classify(point) != state {
                errors += 1;
            }
        }
        let measured = errors as f64 / trials as f64;
        let predicted = r.expected_error_rate();
        assert!(
            (measured - predicted).abs() < 0.005,
            "measured {measured}, predicted {predicted}"
        );
    }

    #[test]
    fn higher_snr_means_fewer_errors() {
        let base = ReadoutProcessor::default();
        let better = ReadoutProcessor {
            sigma: 0.15,
            ..base
        };
        assert!(better.separation_snr() > base.separation_snr());
        assert!(better.expected_error_rate() < base.expected_error_rate());
    }

    #[test]
    fn classification_only_depends_on_separation_axis() {
        let r = ReadoutProcessor::default();
        // Orthogonal (quadrature) offsets do not change the decision.
        assert!(r.classify(IqPoint { i: 0.6, q: 5.0 }));
        assert!(!r.classify(IqPoint { i: -0.6, q: -5.0 }));
    }

    #[test]
    fn retry_penalty_grows_with_timeouts() {
        let r = ReadoutProcessor::default();
        let plan = FaultPlan::default();
        assert_eq!(r.retry_penalty(0, &plan), SimDuration::ZERO);
        // One re-arm: 300 ns latency + 300 ns penalty + 50 ns backoff.
        assert_eq!(r.retry_penalty(1, &plan), SimDuration::from_ns(650));
        assert!(r.retry_penalty(3, &plan) > r.retry_penalty(1, &plan) * 2);
    }

    #[test]
    fn q_function_sanity() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-6);
        assert!(q_function(3.0) < 0.002);
        assert!((q_function(-1.0) + q_function(1.0) - 1.0).abs() < 1e-6);
    }
}
