//! Typed errors for structural controller failures.
//!
//! Injected faults and structural surprises (misrouted tags, exhausted
//! retry budgets, empty lanes) must surface as values the system layer can
//! react to — degrade, retry elsewhere, or report — never as panics that
//! abort a simulation mid-run.

/// A structural failure inside the controller models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerError {
    /// An RBQ completion arrived for a tag that is not outstanding (e.g.
    /// the watchdog already reclaimed it).
    UnissuedTag {
        /// The raw 5-bit tag value.
        tag: u8,
    },
    /// An RBQ tag was completed twice.
    DoubleCompletion {
        /// The raw 5-bit tag value.
        tag: u8,
    },
    /// A WBQ operation named a lane outside the configured lane count.
    LaneOutOfRange {
        /// The offending lane index.
        lane: usize,
        /// The number of configured lanes.
        lanes: usize,
    },
    /// A WBQ pop was issued for a lane with no buffered data.
    EmptyLane {
        /// The offending lane index.
        lane: usize,
    },
    /// A PGU pool was configured with zero units.
    NoPguUnits,
    /// A bus transaction kept failing after exhausting its retry budget.
    BusRetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A PGU dispatch kept producing bad pulses past the retry budget.
    PguRetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A readout kept timing out past the retry budget.
    ReadoutRetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A pulse request named a qubit outside the configured layout
    /// (malformed program or config).
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: u32,
        /// The number of qubits in the layout.
        n_qubits: u32,
    },
    /// The pulse allocator produced a slot the layout rejected — the
    /// layout geometry and the allocator disagree (malformed config).
    PulseSlotOutOfRange {
        /// The owning qubit index.
        qubit: u32,
        /// The rejected slot.
        slot: u64,
    },
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerError::UnissuedTag { tag } => {
                write!(f, "completion for unissued RBQ tag {tag}")
            }
            ControllerError::DoubleCompletion { tag } => {
                write!(f, "RBQ tag {tag} completed twice")
            }
            ControllerError::LaneOutOfRange { lane, lanes } => {
                write!(f, "WBQ lane {lane} out of range (have {lanes})")
            }
            ControllerError::EmptyLane { lane } => {
                write!(f, "WBQ pop from empty lane {lane}")
            }
            ControllerError::NoPguUnits => write!(f, "PGU pool configured with zero units"),
            ControllerError::BusRetriesExhausted { attempts } => {
                write!(f, "bus transaction failed after {attempts} attempts")
            }
            ControllerError::PguRetriesExhausted { attempts } => {
                write!(f, "PGU dispatch failed after {attempts} attempts")
            }
            ControllerError::ReadoutRetriesExhausted { attempts } => {
                write!(f, "readout timed out after {attempts} attempts")
            }
            ControllerError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit {qubit} outside layout of {n_qubits} qubits")
            }
            ControllerError::PulseSlotOutOfRange { qubit, slot } => {
                write!(f, "pulse slot {slot} rejected by layout for qubit {qubit}")
            }
        }
    }
}

impl std::error::Error for ControllerError {}
