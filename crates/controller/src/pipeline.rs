//! The four-stage pulse-computation pipeline (Fig. 6).
//!
//! Stage 1 reads the circuit definition from the Program Index Buffer;
//! stage 2 decodes it (fetching the parameter from the register file when
//! `reg_flag` is set) and consults the SLT; stage 3 dispatches cache-miss
//! entries to a free PGU via the priority encoder, stalling stages 1–2
//! when all PGUs are busy; stage 4 arbitrates writeback of finished pulses
//! into the `.pulse` segment and is decoupled from the stall by a
//! ready-valid interface.

use qtenon_isa::{GateType, QAddress, QccLayout, QubitId};
use qtenon_sim_engine::{
    ClockDomain, FaultInjector, Histogram, MetricsRegistry, SimDuration, SimTime,
};
use serde::{Deserialize, Serialize};

use crate::error::ControllerError;
use crate::pgu::{PguConfig, PguPool};
use crate::slt::{PulseResolution, SltController, SltStats};

/// Pipeline clocking and PGU parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Clock driving stages 1/2/4.
    pub clock: ClockDomain,
    /// The PGU pool behind stage 3.
    pub pgu: PguConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            clock: ClockDomain::from_ghz(1.0),
            pgu: PguConfig::default(),
        }
    }
}

/// One entry flowing through the pipeline: a gate whose pulse must be
/// located or generated. The `data27` field is already regfile-resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// Owning qubit.
    pub qubit: QubitId,
    /// Gate kind.
    pub gate: GateType,
    /// Resolved 27-bit parameter/partner field.
    pub data27: u32,
}

/// The pulse address each work item resolved to, in input order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedPulse {
    /// The pulse's address in the `.pulse` segment.
    pub qaddr: QAddress,
    /// Whether a PGU computed it fresh this run.
    pub generated: bool,
}

/// Timing and cache statistics for one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Wall time from first fetch to last writeback.
    pub total_time: SimDuration,
    /// Entries processed.
    pub entries: u64,
    /// Pulses actually computed by PGUs.
    pub generated: u64,
    /// Time stages 1–2 spent stalled on busy PGUs.
    pub stall_time: SimDuration,
    /// Time from `start` until stages 1–2 handed off the last entry
    /// (fetch + decode/SLT occupancy, stalls included).
    #[serde(default)]
    pub front_time: SimDuration,
    /// Total PGU busy time summed across dispatches (overlapping units
    /// accumulate, so this can exceed `total_time`).
    #[serde(default)]
    pub pgu_busy: SimDuration,
    /// SLT statistics delta for this run.
    pub slt: SltStats,
}

impl PipelineReport {
    /// Fraction of entries that skipped generation.
    pub fn skip_fraction(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            1.0 - self.generated as f64 / self.entries as f64
        }
    }
}

/// The pipeline: SLT + PGU pool + stage timing.
///
/// # Examples
///
/// ```
/// use qtenon_controller::pipeline::{PipelineConfig, PulsePipeline, WorkItem};
/// use qtenon_isa::{EncodedAngle, GateType, QccLayout, QubitId};
/// use qtenon_sim_engine::SimTime;
///
/// let layout = QccLayout::for_qubits(4)?;
/// let mut pipe = PulsePipeline::new(PipelineConfig::default(), layout)?;
/// let item = WorkItem {
///     qubit: QubitId::new(0),
///     gate: GateType::Rx,
///     data27: EncodedAngle::from_radians(0.5).code(),
/// };
/// let (report, _) = pipe.process(SimTime::ZERO, &[item, item])?;
/// assert_eq!(report.generated, 1); // second occurrence hits the SLT
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PulsePipeline {
    config: PipelineConfig,
    slt: SltController,
    pgus: PguPool,
    /// Cumulative entries processed across runs.
    total_entries: u64,
    /// Cumulative pulses generated across runs.
    total_generated: u64,
    /// Cumulative stall time across runs.
    total_stall: SimDuration,
    /// Wall time of each `process` call, in nanoseconds.
    run_latency: Histogram,
}

impl PulsePipeline {
    /// Creates an idle pipeline for a cache layout.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::NoPguUnits`] if the PGU pool is
    /// configured with zero units.
    pub fn new(config: PipelineConfig, layout: QccLayout) -> Result<Self, ControllerError> {
        Ok(PulsePipeline {
            config,
            slt: SltController::new(layout),
            pgus: PguPool::new(config.pgu)?,
            total_entries: 0,
            total_generated: 0,
            total_stall: SimDuration::ZERO,
            run_latency: Histogram::new(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Cumulative SLT statistics across runs.
    pub fn slt_stats(&self) -> SltStats {
        self.slt.stats()
    }

    /// Processes `items` starting at `start`, returning the run report and
    /// each item's resolved pulse address in order.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::QubitOutOfRange`] when a work item names
    /// a qubit outside the layout (malformed program or config) — the run
    /// degrades into a typed error instead of aborting the process.
    pub fn process(
        &mut self,
        start: SimTime,
        items: &[WorkItem],
    ) -> Result<(PipelineReport, Vec<ResolvedPulse>), ControllerError> {
        self.process_with_faults(start, items, None)
    }

    /// Processes `items` under fault injection: SLT lookups run their
    /// parity check and PGU dispatches draw stall/failure faults, with
    /// retries and degradation costed into the report's timing.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::PguRetriesExhausted`] when a dispatch
    /// burns through the plan's retry budget, plus everything
    /// [`PulsePipeline::process`] can return.
    pub fn process_resilient(
        &mut self,
        start: SimTime,
        items: &[WorkItem],
        faults: &mut FaultInjector,
    ) -> Result<(PipelineReport, Vec<ResolvedPulse>), ControllerError> {
        self.process_with_faults(start, items, Some(faults))
    }

    fn process_with_faults(
        &mut self,
        start: SimTime,
        items: &[WorkItem],
        mut faults: Option<&mut FaultInjector>,
    ) -> Result<(PipelineReport, Vec<ResolvedPulse>), ControllerError> {
        let cycle = self.config.clock.period();
        let slt_before = self.slt.stats();
        let mut resolved = Vec::with_capacity(items.len());
        let mut generated = 0u64;
        let mut stall_time = SimDuration::ZERO;
        let mut pgu_busy = SimDuration::ZERO;
        // Time the front of the pipeline (stages 1–2) hands the current
        // entry to stage 3: advances one cycle per entry, plus stalls.
        let mut front = start;
        // Latest completion across all entries (stage 4 writebacks).
        let mut last_complete = start;

        for item in items {
            if item.gate == GateType::Idle {
                // Idle entries occupy a fetch slot but produce nothing.
                front += cycle;
                resolved.push(ResolvedPulse {
                    qaddr: QAddress::new_unchecked(0),
                    generated: false,
                });
                continue;
            }
            // Stages 1–2: fetch + decode/SLT, one cycle each, pipelined at
            // one entry per cycle; `front` models the initiation interval.
            front += cycle;
            let decode_done = front + cycle;
            let resolution = match faults.as_deref_mut() {
                Some(f) => self
                    .slt
                    .resolve_resilient(item.qubit, item.gate, item.data27, f)?,
                None => self.slt.resolve(item.qubit, item.gate, item.data27)?,
            };
            let (complete, was_generated) = match resolution {
                PulseResolution::SltHit(qaddr) | PulseResolution::QSpaceHit(qaddr) => {
                    // No PGU work: the QAddress link writes back next cycle.
                    let done = decode_done + cycle;
                    resolved.push(ResolvedPulse {
                        qaddr,
                        generated: false,
                    });
                    (done, false)
                }
                PulseResolution::Allocated(qaddr) => {
                    // Stage 3: dispatch, stalling the front if all busy.
                    let dispatch = match faults.as_deref_mut() {
                        Some(f) => self.pgus.dispatch_resilient(decode_done, f)?,
                        None => self.pgus.dispatch(decode_done),
                    };
                    if dispatch.start > decode_done {
                        let stall = dispatch.start - decode_done;
                        stall_time += stall;
                        front += stall; // stages 1–2 stall with us
                    }
                    pgu_busy += dispatch.done.saturating_since(dispatch.start);
                    // Stage 4: arbiter + writeback, one cycle.
                    let done = dispatch.done + cycle;
                    resolved.push(ResolvedPulse {
                        qaddr,
                        generated: true,
                    });
                    (done, true)
                }
            };
            if was_generated {
                generated += 1;
            }
            last_complete = last_complete.max(complete);
        }

        let slt_after = self.slt.stats();
        let report = PipelineReport {
            total_time: last_complete.saturating_since(start),
            entries: items.len() as u64,
            generated,
            stall_time,
            front_time: front.saturating_since(start),
            pgu_busy,
            slt: SltStats {
                lookups: slt_after.lookups - slt_before.lookups,
                hits: slt_after.hits - slt_before.hits,
                qspace_hits: slt_after.qspace_hits - slt_before.qspace_hits,
                allocations: slt_after.allocations - slt_before.allocations,
                evictions: slt_after.evictions - slt_before.evictions,
                parity_invalidations: slt_after.parity_invalidations
                    - slt_before.parity_invalidations,
            },
        };
        self.total_entries += report.entries;
        self.total_generated += report.generated;
        self.total_stall += report.stall_time;
        self.run_latency.record(report.total_time.as_ps() / 1_000);
        Ok((report, resolved))
    }

    /// Injected PGU stalls observed so far.
    pub fn pgu_stalls(&self) -> u64 {
        self.pgus.stalls()
    }

    /// PGU re-dispatches forced by injected bad-pulse failures.
    pub fn pgu_redispatches(&self) -> u64 {
        self.pgus.redispatches()
    }

    /// Registers pipeline, SLT, and PGU statistics under `prefix`
    /// (e.g. `controller`), yielding `controller.pipeline.*`,
    /// `controller.slt.*`, and `controller.pgu.*`.
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.counter(&format!("{prefix}.pipeline.entries"), self.total_entries);
        m.counter(
            &format!("{prefix}.pipeline.generated"),
            self.total_generated,
        );
        m.gauge(
            &format!("{prefix}.pipeline.stall_ns"),
            self.total_stall.as_ns(),
        );
        m.histogram(
            &format!("{prefix}.pipeline.run_latency_ns"),
            &self.run_latency,
        );
        self.slt.export_metrics(m, &format!("{prefix}.slt"));
        self.pgus.export_metrics(m, &format!("{prefix}.pgu"));
    }

    /// Clears SLT/QSpace contents and PGU occupancy (cold restart; the
    /// baseline recompile-from-scratch behaviour).
    pub fn reset(&mut self) {
        self.slt.reset();
        self.pgus.reset();
        self.total_entries = 0;
        self.total_generated = 0;
        self.total_stall = SimDuration::ZERO;
        self.run_latency.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtenon_isa::EncodedAngle;

    fn pipeline() -> PulsePipeline {
        PulsePipeline::new(PipelineConfig::default(), QccLayout::for_qubits(8).unwrap()).unwrap()
    }

    fn rx(q: u32, theta: f64) -> WorkItem {
        WorkItem {
            qubit: QubitId::new(q),
            gate: GateType::Rx,
            data27: EncodedAngle::from_radians(theta).code(),
        }
    }

    #[test]
    fn single_item_takes_pipeline_plus_pgu_latency() {
        let mut p = pipeline();
        let (report, resolved) = p.process(SimTime::ZERO, &[rx(0, 1.0)]).unwrap();
        // fetch (1) + decode (1) + PGU (1000) + writeback (1) cycles.
        assert_eq!(report.total_time, SimDuration::from_ns(1003));
        assert_eq!(report.generated, 1);
        assert!(resolved[0].generated);
    }

    #[test]
    fn repeated_parameter_is_skipped() {
        let mut p = pipeline();
        let items = [rx(0, 1.0), rx(0, 1.0), rx(0, 1.0)];
        let (report, resolved) = p.process(SimTime::ZERO, &items).unwrap();
        assert_eq!(report.generated, 1);
        assert_eq!(report.slt.hits, 2);
        assert_eq!(resolved[0].qaddr, resolved[1].qaddr);
        assert!(!resolved[2].generated);
        assert!((report.skip_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn warm_second_run_is_fast() {
        let mut p = pipeline();
        let items: Vec<WorkItem> = (0..8).map(|q| rx(q, 0.7)).collect();
        let (cold, _) = p.process(SimTime::ZERO, &items).unwrap();
        let (warm, _) = p.process(SimTime::ZERO, &items).unwrap();
        assert_eq!(warm.generated, 0);
        assert!(warm.total_time < cold.total_time / 10);
    }

    #[test]
    fn eight_pgus_absorb_eight_misses_without_stall() {
        let mut p = pipeline();
        let items: Vec<WorkItem> = (0..8).map(|q| rx(q, 0.1)).collect();
        let (report, _) = p.process(SimTime::ZERO, &items).unwrap();
        assert_eq!(report.stall_time, SimDuration::ZERO);
        // Entries enter one per cycle; last enters at cycle 8, finishes
        // ~1002 cycles later.
        assert_eq!(report.total_time, SimDuration::from_ns(8 + 1002));
    }

    #[test]
    fn ninth_distinct_pulse_stalls_the_front() {
        let mut p = pipeline();
        // Nine distinct parameters on one qubit: the ninth waits for PGU 0.
        let items: Vec<WorkItem> = (0..9).map(|i| rx(0, 0.1 + 0.2 * i as f64)).collect();
        let (report, _) = p.process(SimTime::ZERO, &items).unwrap();
        assert!(report.stall_time > SimDuration::ZERO);
        assert_eq!(report.generated, 9);
    }

    #[test]
    fn idle_entries_produce_nothing() {
        let mut p = pipeline();
        let items = [WorkItem {
            qubit: QubitId::new(0),
            gate: GateType::Idle,
            data27: 0,
        }];
        let (report, resolved) = p.process(SimTime::ZERO, &items).unwrap();
        assert_eq!(report.generated, 0);
        assert_eq!(report.slt.lookups, 0);
        assert!(!resolved[0].generated);
    }

    #[test]
    fn measurement_pulses_cache_like_gates() {
        let mut p = pipeline();
        let m = WorkItem {
            qubit: QubitId::new(0),
            gate: GateType::Measure,
            data27: 0,
        };
        let (r1, _) = p.process(SimTime::ZERO, &[m]).unwrap();
        let (r2, _) = p.process(SimTime::ZERO, &[m]).unwrap();
        assert_eq!(r1.generated, 1);
        assert_eq!(r2.generated, 0);
    }

    #[test]
    fn reset_forces_regeneration() {
        let mut p = pipeline();
        p.process(SimTime::ZERO, &[rx(0, 1.0)]).unwrap();
        p.reset();
        let (report, _) = p.process(SimTime::ZERO, &[rx(0, 1.0)]).unwrap();
        assert_eq!(report.generated, 1);
    }

    #[test]
    fn resilient_process_with_zero_rates_matches_plain() {
        use qtenon_sim_engine::{FaultInjector, FaultPlan};
        let mut inj = FaultInjector::new(FaultPlan::default());
        let mut a = pipeline();
        let mut b = pipeline();
        let items: Vec<WorkItem> = (0..12).map(|i| rx(i % 4, (i % 3) as f64 * 0.4)).collect();
        let (ra, pa) = a.process(SimTime::ZERO, &items).unwrap();
        let (rb, pb) = b
            .process_resilient(SimTime::ZERO, &items, &mut inj)
            .unwrap();
        assert_eq!(ra, rb);
        assert_eq!(pa, pb);
    }

    #[test]
    fn parity_faults_force_regeneration_with_longer_runtime() {
        use qtenon_sim_engine::{FaultInjector, FaultPlan, FaultSite};
        let plan = FaultPlan::default()
            .with_rate(FaultSite::SltBitFlip, 0.8)
            .with_seed(17);
        let mut inj = FaultInjector::new(plan);
        let mut p = pipeline();
        let items = vec![rx(0, 1.0); 20];
        p.process(SimTime::ZERO, &items).unwrap(); // warm
        let mut clean = pipeline();
        clean.process(SimTime::ZERO, &items).unwrap(); // warm
        let (faulty, _) = p
            .process_resilient(SimTime::ZERO, &items, &mut inj)
            .unwrap();
        let (warm, _) = clean.process(SimTime::ZERO, &items).unwrap();
        assert!(faulty.slt.parity_invalidations > 0);
        assert!(faulty.generated + faulty.slt.qspace_hits > 0);
        assert!(
            faulty.total_time > warm.total_time,
            "degraded run must pay for recomputation"
        );
    }

    #[test]
    fn out_of_range_qubit_degrades_to_typed_error() {
        let mut p = pipeline();
        // The layout has 8 qubits; qubit 12 is a malformed program, not a
        // reason to abort the process.
        let err = p.process(SimTime::ZERO, &[rx(12, 1.0)]).unwrap_err();
        assert_eq!(
            err,
            ControllerError::QubitOutOfRange {
                qubit: 12,
                n_qubits: 8
            }
        );
        // The pipeline stays usable for well-formed work afterwards.
        let (report, _) = p.process(SimTime::ZERO, &[rx(0, 1.0)]).unwrap();
        assert_eq!(report.generated, 1);
    }

    #[test]
    fn report_attributes_front_and_pgu_time() {
        let mut p = pipeline();
        let (report, _) = p.process(SimTime::ZERO, &[rx(0, 1.0)]).unwrap();
        // One entry occupies the front for one initiation cycle and the
        // PGU for its full generation latency.
        assert_eq!(report.front_time, SimDuration::from_ns(1));
        assert_eq!(report.pgu_busy, SimDuration::from_ns(1000));
        // A stalled run charges the stall to the front as well.
        let mut q = pipeline();
        let items: Vec<WorkItem> = (0..9).map(|i| rx(0, 0.1 + 0.2 * i as f64)).collect();
        let (stalled, _) = q.process(SimTime::ZERO, &items).unwrap();
        assert!(stalled.front_time >= SimDuration::from_ns(9) + stalled.stall_time);
        assert_eq!(stalled.pgu_busy, SimDuration::from_ns(9 * 1000));
    }

    #[test]
    fn report_counts_are_consistent() {
        let mut p = pipeline();
        let items: Vec<WorkItem> = (0..20).map(|i| rx(i % 4, (i % 5) as f64 * 0.3)).collect();
        let (report, resolved) = p.process(SimTime::ZERO, &items).unwrap();
        assert_eq!(report.entries, 20);
        assert_eq!(
            report.generated,
            resolved.iter().filter(|r| r.generated).count() as u64
        );
        assert_eq!(
            report.slt.lookups,
            report.slt.hits + report.slt.qspace_hits + report.slt.allocations
        );
    }
}
